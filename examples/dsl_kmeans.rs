//! The full paper pipeline on a program *written in the language*:
//! parse the Figure-3 kmeans program, extract its tunable schema
//! (training information), register the host helper functions, and
//! autotune it — sub-algorithm choice, `k`, and `for_enough`
//! iterations all discovered automatically.
//!
//! Run with: `cargo run --release --example dsl_kmeans`

use petabricks::config::AccuracyBins;
use petabricks::lang::interp::Value;
use petabricks::lang::{parse_program, DslTransform};
use petabricks::runtime::{CostModel, TransformRunner};
use petabricks::tuner::{Autotuner, TunerOptions};
use rand::Rng;
use std::collections::HashMap;

/// The kmeans program of Figure 3, in this reproduction's grammar.
/// `Points[2, n]`: row 0 = x coordinates, row 1 = y coordinates.
const KMEANS: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 64
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        // Rule 1: random points as initial centroids.
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }

        // Rule 2: kmeans++ style initialization (host helper).
        to (Centroids c) from (Points p) {
            CenterPlus(c, p);
        }

        // Rule 3: Lloyd iteration, count chosen by the autotuner.
        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                let change = AssignClusters(a, p, c);
                if (change == 0) { return; }
                NewClusterLocations(c, p, a);
            }
        }
    }

    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) {
            acc = sqrt(2 * len(a) / SumClusterDistanceSquared(a, p));
        }
    }
"#;

fn arr2(v: &Value) -> (&Vec<f64>, usize) {
    match v {
        Value::Arr2 { data, cols, .. } => (data, *cols),
        _ => panic!("expected a 2-D array"),
    }
}

fn main() {
    let program = parse_program(KMEANS).expect("the Figure-3 program parses");
    let mut dsl = DslTransform::compile(
        program,
        "kmeans",
        Box::new(|n, rng| {
            // The paper's generator: sqrt(n) centres, unit-normal spread.
            let n = n.max(4) as usize;
            let k = (n as f64).sqrt().round() as usize;
            let centres: Vec<(f64, f64)> = (0..k)
                .map(|_| (rng.gen_range(-250.0..250.0), rng.gen_range(-250.0..250.0)))
                .collect();
            let mut data = vec![0.0; 2 * n];
            for i in 0..n {
                let (cx, cy) = centres[i % k];
                data[i] = cx + rng.gen_range(-1.0..1.0);
                data[n + i] = cy + rng.gen_range(-1.0..1.0);
            }
            let mut inputs = HashMap::new();
            inputs.insert(
                "Points".to_string(),
                Value::Arr2 {
                    rows: 2,
                    cols: n,
                    data,
                },
            );
            inputs
        }),
    )
    .expect("the program is well-formed");

    register_host_helpers(&mut dsl);

    let runner = TransformRunner::new(dsl, CostModel::Virtual);
    println!("extracted tunables (the training information):");
    for (_, tunable) in runner.schema().iter() {
        println!("  {:<16} {:?}", tunable.name(), tunable.kind());
    }

    let bins = AccuracyBins::new(vec![0.1, 0.4]);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(64, 5))
        .tune()
        .expect("targets reachable");

    println!("\ntuned kmeans (from the DSL program):");
    let schema = runner.schema();
    for entry in tuned.entries() {
        println!(
            "  accuracy {:>4}: k = {:>2}, init rule = {}, for_enough iters = {:>3} (observed {:.3})",
            entry.target,
            entry.config.int(schema, "k").unwrap(),
            entry.config.choice(schema, "rule_Centroids", 64).unwrap(),
            entry.config.int(schema, "for_enough_0").unwrap(),
            entry.observed_accuracy,
        );
    }
}

/// The helper algorithms referenced by the DSL program, supplied by
/// the host exactly as PetaBricks linked external C++ helpers.
fn register_host_helpers(dsl: &mut DslTransform) {
    // CenterPlus(c, p): kmeans++-ish spread initialization.
    dsl.register_host_fn(
        "CenterPlus",
        Box::new(|centroids, rest| {
            let (p, n) = arr2(&rest[0]);
            if let Value::Arr2 { data, cols, .. } = centroids {
                let k = *cols;
                for i in 0..k {
                    // Deterministic stride seeding spreads the centres.
                    let src = i * n.max(1) / k.max(1);
                    data[i] = p[src];
                    data[k + i] = p[n + src];
                }
            }
            Ok(Value::Num(0.0))
        }),
    );
    // AssignClusters(a, p, c): nearest-centroid assignment, returns the
    // number of changed labels.
    dsl.register_host_fn(
        "AssignClusters",
        Box::new(|assignments, rest| {
            let (p, n) = arr2(&rest[0]);
            let (c, k) = arr2(&rest[1]);
            let mut changed = 0.0;
            if let Value::Arr1(a) = assignments {
                for i in 0..n {
                    let (x, y) = (p[i], p[n + i]);
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for j in 0..k {
                        let dx = x - c[j];
                        let dy = y - c[k + j];
                        let d = dx * dx + dy * dy;
                        if d < best_d {
                            best_d = d;
                            best = j;
                        }
                    }
                    if a[i] != best as f64 {
                        a[i] = best as f64;
                        changed += 1.0;
                    }
                }
            }
            Ok(Value::Num(changed))
        }),
    );
    // NewClusterLocations(c, p, a): move centroids to their means.
    dsl.register_host_fn(
        "NewClusterLocations",
        Box::new(|centroids, rest| {
            let (p, n) = arr2(&rest[0]);
            let a = match &rest[1] {
                Value::Arr1(a) => a,
                _ => return Err("assignments must be 1-D".into()),
            };
            if let Value::Arr2 { data, cols, .. } = centroids {
                let k = *cols;
                let mut sx = vec![0.0; k];
                let mut sy = vec![0.0; k];
                let mut count = vec![0.0; k];
                for i in 0..n {
                    let j = (a[i] as usize).min(k - 1);
                    sx[j] += p[i];
                    sy[j] += p[n + i];
                    count[j] += 1.0;
                }
                for j in 0..k {
                    if count[j] > 0.0 {
                        data[j] = sx[j] / count[j];
                        data[k + j] = sy[j] / count[j];
                    }
                }
            }
            Ok(Value::Num(0.0))
        }),
    );
    // SumClusterDistanceSquared(a, p): the metric's helper.
    dsl.register_host_fn(
        "SumClusterDistanceSquared",
        Box::new(|assignments, rest| {
            let a = match assignments {
                Value::Arr1(a) => a.clone(),
                _ => return Err("assignments must be 1-D".into()),
            };
            let (p, n) = arr2(&rest[0]);
            // Recompute centroids from the labels, then sum distances.
            let k = a.iter().fold(0usize, |m, &v| m.max(v as usize)) + 1;
            let mut sx = vec![0.0; k];
            let mut sy = vec![0.0; k];
            let mut count = vec![0.0; k];
            for i in 0..n {
                let j = a[i] as usize;
                sx[j] += p[i];
                sy[j] += p[n + i];
                count[j] += 1.0;
            }
            let mut ssd = 0.0;
            for i in 0..n {
                let j = a[i] as usize;
                if count[j] > 0.0 {
                    let dx = p[i] - sx[j] / count[j];
                    let dy = p[n + i] - sy[j] / count[j];
                    ssd += dx * dx + dy * dy;
                }
            }
            Ok(Value::Num(ssd.max(f64::MIN_POSITIVE)))
        }),
    );
}
