//! Tunes the 2D Poisson multigrid benchmark (§6.1.5) and prints the
//! cycle shape the tuner discovered for each accuracy level — a 2D
//! cousin of the Fig. 8 Helmholtz diagrams.
//!
//! Run with: `cargo run --release --example multigrid_poisson`

use petabricks::benchmarks::Poisson2d;
use petabricks::config::AccuracyBins;
use petabricks::runtime::{CostModel, TraceNode, TransformRunner, TrialRunner};
use petabricks::tuner::{Autotuner, TunerOptions};

fn render(node: &TraceNode, depth: usize) {
    if !node.label.is_empty() {
        let relax = node.points.iter().filter(|p| *p == "relax").count();
        let mut marks = "•".repeat(relax);
        if node.points.iter().any(|p| p == "direct") {
            marks.push_str(" direct");
        }
        println!("{}{} {}", "  ".repeat(depth), node.label, marks);
    }
    for child in &node.children {
        render(child, depth + usize::from(!node.label.is_empty()));
    }
}

fn main() {
    let runner = TransformRunner::new(Poisson2d, CostModel::Virtual);
    // Accuracy = orders of magnitude of residual reduction.
    let bins = AccuracyBins::new(vec![1.0, 5.0, 9.0]);
    let mut options = TunerOptions::fast_preset(31, 3);
    options.rounds_per_size = 4;
    let tuned = Autotuner::new(&runner, bins, options)
        .tune()
        .expect("all residual reductions are reachable");

    for entry in tuned.entries() {
        let (outcome, trace) = runner.run_traced(&entry.config, 31, 99);
        println!(
            "\n=== target 10^{:.0} reduction: achieved {:.2} orders at cost {:.2e} ===",
            entry.target, outcome.accuracy, outcome.virtual_cost
        );
        render(&trace, 0);
    }
}
