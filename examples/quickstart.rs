//! Quickstart: define a variable-accuracy transform, tune it for two
//! accuracy targets, and execute the tuned configurations.
//!
//! Run with: `cargo run --example quickstart`

use petabricks::config::{AccuracyBins, Schema};
use petabricks::runtime::{CostModel, ExecCtx, Transform, TransformRunner};
use petabricks::tuner::{Autotuner, TunerOptions};
use rand::rngs::SmallRng;
use rand::Rng;

/// Approximates π by a Leibniz-style series: more terms cost more and
/// are more accurate — the simplest possible accuracy/time trade-off.
struct PiSeries;

impl Transform for PiSeries {
    type Input = ();
    type Output = f64;

    fn name(&self) -> &str {
        "pi_series"
    }

    fn schema(&self) -> Schema {
        let mut schema = Schema::new("pi_series");
        // The tuner decides how many terms each accuracy level needs.
        schema.add_accuracy_variable("terms", 1, 1 << 20);
        schema
    }

    fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}

    fn execute(&self, _input: &(), ctx: &mut ExecCtx<'_>) -> f64 {
        let terms = ctx.param("terms").expect("declared in schema");
        let mut sum = 0.0;
        for k in 0..terms {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sum += sign / (2.0 * k as f64 + 1.0);
        }
        ctx.charge(terms as f64); // deterministic cost = work done
        let _ = ctx.rng().gen::<f64>(); // rngs are available too
        4.0 * sum
    }

    fn accuracy(&self, _input: &(), output: &f64) -> f64 {
        // Digits of agreement with π.
        let err = (output - std::f64::consts::PI).abs();
        if err == 0.0 {
            16.0
        } else {
            -err.log10()
        }
    }
}

fn main() {
    let runner = TransformRunner::new(PiSeries, CostModel::Virtual);

    // Ask for two accuracy levels: ~2 digits and ~5 digits of π.
    let bins = AccuracyBins::new(vec![2.0, 5.0]);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(8, 42))
        .tune()
        .expect("both targets are reachable");

    println!("tuned configurations per accuracy bin:");
    for entry in tuned.entries() {
        let terms = entry.config.int(runner.schema(), "terms").unwrap();
        println!(
            "  target {:>4} digits -> {:>7} terms (observed {:.2} digits, cost {:.0})",
            entry.target, terms, entry.observed_accuracy, entry.observed_time
        );
    }

    // Runtime lookup: "give me at least 3 digits as cheaply as possible".
    let entry = tuned.entry_meeting(3.0).expect("trained high enough");
    let schema = runner.schema();
    let mut ctx = ExecCtx::new(schema, &entry.config, 1, 0);
    let pi = PiSeries.execute(&(), &mut ctx);
    println!(
        "requested >= 3 digits, got {pi} (cost {})",
        ctx.virtual_cost()
    );
}
