//! Tunes the Bin Packing benchmark (§6.1.1) and shows how the winning
//! algorithm changes with the required accuracy — the phenomenon
//! behind Fig. 7.
//!
//! Run with: `cargo run --release --example binpacking_tuning`

use petabricks::benchmarks::binpacking::{accuracy_to_ratio, ratio_to_accuracy, ALGORITHM_NAMES};
use petabricks::benchmarks::BinPacking;
use petabricks::config::AccuracyBins;
use petabricks::runtime::{CostModel, TransformRunner};
use petabricks::tuner::{Autotuner, TunerOptions};

fn main() {
    let runner = TransformRunner::new(BinPacking, CostModel::Virtual);

    // Require packings within 1.4x, 1.1x, and 1.02x of optimal.
    let ratios = [1.4, 1.1, 1.02];
    let bins = AccuracyBins::new(ratios.iter().map(|&r| ratio_to_accuracy(r)).collect());

    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(2048, 7))
        .tune()
        .expect("all three ratios are reachable");

    let schema = runner.schema();
    println!("winning bin-packing algorithm per required packing quality:");
    for entry in tuned.entries() {
        let algorithm = entry.config.choice(schema, "algorithm", 2048).unwrap();
        println!(
            "  bins/OPT <= {:.2}: {:<28} (observed ratio {:.3}, cost {:.0})",
            accuracy_to_ratio(entry.target),
            ALGORITHM_NAMES[algorithm],
            accuracy_to_ratio(entry.observed_accuracy),
            entry.observed_time,
        );
    }

    // The same tuned program serves arbitrary runtime requests.
    let request = ratio_to_accuracy(1.2);
    let entry = tuned.entry_meeting(request).unwrap();
    let algorithm = entry.config.choice(schema, "algorithm", 2048).unwrap();
    println!(
        "\na caller demanding bins/OPT <= 1.20 is served by the {:.2}-ratio bin ({})",
        accuracy_to_ratio(entry.target),
        ALGORITHM_NAMES[algorithm],
    );
}
