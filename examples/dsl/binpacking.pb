// Bin packing with an algorithmic choice per placement strategy:
// next-fit (open a new bin when the current one overflows unit
// capacity) or round-robin spreading. Also the shape mix the
// `ChunkFacts` tests pin: Sizes/Bins infer `arr1`, Used stays a
// scalar.

transform binpack
accuracy_metric binpackacc
from Sizes[n]
to Bins[n], Used
{
    to (Bins b, Used u) from (Sizes s) {
        u = 1;
        let fill = 0;
        for (i in 0 .. len(s)) {
            either {
                if (fill + s[i] > 1) {
                    u = u + 1;
                    fill = 0;
                }
                b[i] = u - 1;
                fill = fill + s[i];
            } or {
                b[i] = i % u;
            }
        }
    }
}

transform binpackacc
from Bins[n], Used, Sizes[n]
to Accuracy
{
    to (Accuracy acc) from (Bins b, Used u, Sizes s) {
        acc = len(s) / max(u, 1);
    }
}
