// The Figure-3 kmeans program (conf_cgo_AnselWCOEA11 §3): a
// two-producer choice site over Centroids (`rule_Centroids`), `rand`
// in rule bodies, 2-D indexing, and an accuracy-variable-sized
// intermediate. Same program text as the differential suite pins
// bit-identical across interpreter and VM.

transform kmeans
accuracy_metric kmeansaccuracy
accuracy_variable k 1 64
from Points[2, n]
through Centroids[2, k]
to Assignments[n]
{
    to (Centroids c) from (Points p) {
        for (i in 0 .. cols(c)) {
            let src = floor(rand(0, cols(p)));
            c[0, i] = p[0, src];
            c[1, i] = p[1, src];
        }
    }
    to (Centroids c) from (Points p) {
        for (i in 0 .. cols(c)) {
            let src = i * cols(p) / cols(c);
            c[0, i] = p[0, src];
            c[1, i] = p[1, src];
        }
    }
    to (Assignments a) from (Points p, Centroids c) {
        for_enough {
            for (i in 0 .. len(a)) {
                a[i] = i % cols(c);
            }
        }
    }
}

transform kmeansaccuracy
from Assignments[n], Points[2, n]
to Accuracy
{
    to (Accuracy acc) from (Assignments a, Points p) {
        acc = 1;
    }
}
