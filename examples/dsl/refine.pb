// Iterative refinement (§3.2): a `for_enough` loop wrapping an
// `either…or` choice over scalar data — the smallest program
// exercising both variable-accuracy constructs.

transform refine
accuracy_metric refineacc
from In[n]
to Err, Work
{
    to (Err e, Work w) from (In a) {
        e = 1;
        for_enough {
            either {
                e = e / 2;
                w = w + 1;
            } or {
                e = e / 4;
                w = w + 10;
            }
        }
    }
}

transform refineacc
from Err, In[n]
to Accuracy
{
    to (Accuracy acc) from (Err e, In a) {
        acc = 0 - log(e) / log(10);
    }
}
