//! Tunes the image-compression benchmark (§6.1.4) and shows the
//! eigensolver choice and retained rank per accuracy level, plus a
//! `verify_accuracy`-style runtime-checked execution (§3.3).
//!
//! Run with: `cargo run --release --example image_compression`

use petabricks::benchmarks::imagecompr::SOLVER_NAMES;
use petabricks::benchmarks::ImageCompression;
use petabricks::config::AccuracyBins;
use petabricks::runtime::guarantee::run_verified;
use petabricks::runtime::{CostModel, TransformRunner};
use petabricks::tuner::{Autotuner, TunerOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let runner = TransformRunner::new(ImageCompression, CostModel::Virtual);
    // Accuracy = log10(rms(A) / rms(A - A_k)).
    let bins = AccuracyBins::new(vec![0.3, 0.8, 1.5]);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(32, 9))
        .tune()
        .expect("targets reachable");

    let schema = runner.schema();
    println!("tuned image compression (n = 32 training):");
    for entry in tuned.entries() {
        let k = entry.config.int(schema, "rank_k").unwrap();
        let solver = entry.config.choice(schema, "eigensolver", 32).unwrap();
        println!(
            "  target {:>4}: rank k = {:>3}, eigensolver = {:<18} (observed {:.2}, cost {:.2e})",
            entry.target, k, SOLVER_NAMES[solver], entry.observed_accuracy, entry.observed_time,
        );
    }

    // Hard guarantee via runtime checking: compress a fresh image and
    // verify the reconstruction meets 0.5 orders, escalating if not.
    let mut rng = SmallRng::seed_from_u64(123);
    let image = petabricks::linalg::Matrix::random_uniform(32, 32, &mut rng);
    let run =
        run_verified(&runner, &tuned, &image, 32, 0.5, 2, 7).expect("a trained bin covers 0.5");
    println!(
        "\nruntime-checked compression: accuracy {:.2} with bin {} after {} attempt(s), rank {}",
        run.accuracy,
        run.bin_used,
        run.attempts,
        run.output.rank()
    );
}
