//! Tuned programs: the autotuner's output artifact.
//!
//! Training produces, for each accuracy bin, the fastest configuration
//! that meets the bin's target (§5.5.4). A [`TunedProgram`] stores those
//! per-bin configurations plus the observed statistics, and supports the
//! runtime lookup described in §4.2: "If a user wishes to call a
//! transform with an unknown accuracy level, we support dynamically
//! looking up the correct bin that will obtain a requested accuracy."

use pb_config::{AccuracyBins, Config};
use serde::{Deserialize, Serialize};

/// The trained configuration for one accuracy bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedEntry {
    /// The bin's accuracy target.
    pub target: f64,
    /// The winning configuration for this bin.
    pub config: Config,
    /// Mean accuracy observed during training.
    pub observed_accuracy: f64,
    /// Mean cost observed during training (per the tuner's cost model).
    pub observed_time: f64,
}

/// A fully trained variable-accuracy program: one configuration per
/// accuracy bin.
///
/// # Examples
///
/// ```
/// use pb_config::{AccuracyBins, Schema};
/// use pb_runtime::{TunedEntry, TunedProgram};
///
/// let mut schema = Schema::new("demo");
/// schema.add_accuracy_variable("iters", 1, 100);
/// let bins = AccuracyBins::new(vec![0.5, 0.9]);
/// let entries = vec![
///     TunedEntry { target: 0.5, config: schema.default_config(),
///                  observed_accuracy: 0.6, observed_time: 1.0 },
///     TunedEntry { target: 0.9, config: schema.default_config(),
///                  observed_accuracy: 0.95, observed_time: 3.0 },
/// ];
/// let tuned = TunedProgram::new("demo", bins, entries);
/// // A request for accuracy 0.7 is served by the 0.9 bin.
/// assert_eq!(tuned.entry_meeting(0.7).unwrap().target, 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedProgram {
    transform: String,
    bins: AccuracyBins,
    entries: Vec<TunedEntry>,
}

impl TunedProgram {
    /// Assembles a tuned program.
    ///
    /// # Panics
    ///
    /// Panics if the entries do not line up one-to-one (same order) with
    /// the bins' targets.
    pub fn new(transform: impl Into<String>, bins: AccuracyBins, entries: Vec<TunedEntry>) -> Self {
        assert_eq!(
            bins.len(),
            entries.len(),
            "one tuned entry is required per accuracy bin"
        );
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(
                entry.target,
                bins.target(i),
                "entry {i} target does not match its bin"
            );
        }
        TunedProgram {
            transform: transform.into(),
            bins,
            entries,
        }
    }

    /// Name of the transform this program was trained for.
    pub fn transform(&self) -> &str {
        &self.transform
    }

    /// The accuracy bins the program was trained over.
    pub fn bins(&self) -> &AccuracyBins {
        &self.bins
    }

    /// All per-bin entries, in ascending accuracy-target order.
    pub fn entries(&self) -> &[TunedEntry] {
        &self.entries
    }

    /// The entry for bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn entry(&self, index: usize) -> &TunedEntry {
        &self.entries[index]
    }

    /// The cheapest entry whose bin target meets `required` accuracy, or
    /// `None` if the program was not trained that high.
    pub fn entry_meeting(&self, required: f64) -> Option<&TunedEntry> {
        let idx = self.bins.bin_meeting(required)?;
        Some(&self.entries[idx])
    }

    /// The index of the cheapest bin meeting `required`, for callers
    /// that need to escalate to higher bins on verification failure.
    pub fn bin_meeting(&self, required: f64) -> Option<usize> {
        self.bins.bin_meeting(required)
    }

    /// Serializes the program to a JSON config-file body.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("TunedProgram serialization cannot fail")
    }

    /// Parses a tuned program from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Writes the program to a config file on disk — the paper's
    /// "choice configuration file" artifact, consumed directly by the
    /// output binary on later runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a program from a config file written by
    /// [`TunedProgram::save_to`].
    ///
    /// # Errors
    ///
    /// Returns I/O errors, or `InvalidData` for malformed JSON.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Schema;

    fn demo_program() -> TunedProgram {
        let mut schema = Schema::new("demo");
        schema.add_accuracy_variable("iters", 1, 100);
        let bins = AccuracyBins::new(vec![0.2, 0.5, 0.9]);
        let entries = bins
            .targets()
            .iter()
            .map(|&t| TunedEntry {
                target: t,
                config: schema.default_config(),
                observed_accuracy: t,
                observed_time: 1.0,
            })
            .collect();
        TunedProgram::new("demo", bins, entries)
    }

    #[test]
    fn entry_meeting_selects_cheapest_sufficient_bin() {
        let p = demo_program();
        assert_eq!(p.entry_meeting(0.1).unwrap().target, 0.2);
        assert_eq!(p.entry_meeting(0.2).unwrap().target, 0.2);
        assert_eq!(p.entry_meeting(0.3).unwrap().target, 0.5);
        assert_eq!(p.entry_meeting(0.9).unwrap().target, 0.9);
        assert!(p.entry_meeting(0.95).is_none());
    }

    #[test]
    fn json_round_trip() {
        let p = demo_program();
        let back = TunedProgram::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn save_and_load_config_file() {
        let p = demo_program();
        let dir = std::env::temp_dir().join(format!("pb_tuned_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.cfg.json");
        p.save_to(&path).unwrap();
        let back = TunedProgram::load_from(&path).unwrap();
        assert_eq!(p, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_from_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("pb_tuned_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.cfg.json");
        std::fs::write(&path, "not json").unwrap();
        let err = TunedProgram::load_from(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "one tuned entry is required per accuracy bin")]
    fn mismatched_entry_count_rejected() {
        let bins = AccuracyBins::new(vec![0.5, 0.9]);
        TunedProgram::new("x", bins, vec![]);
    }

    #[test]
    #[should_panic(expected = "does not match its bin")]
    fn mismatched_targets_rejected() {
        let mut schema = Schema::new("x");
        schema.add_accuracy_variable("v", 1, 2);
        let bins = AccuracyBins::new(vec![0.5]);
        let entries = vec![TunedEntry {
            target: 0.7,
            config: schema.default_config(),
            observed_accuracy: 0.7,
            observed_time: 1.0,
        }];
        TunedProgram::new("x", bins, entries);
    }
}
