//! A persistent, shard-aware work-stealing thread pool.
//!
//! The paper's runtime executes rule applications on "a parallel work
//! stealing scheduler" whose sequential/parallel switch-over points are
//! exposed to the autotuner (§5.2). This module is that scheduler's
//! equivalent: a lazily initialized global [`Pool`] of worker threads
//! fed through `crossbeam`-style injectors, with per-worker deques
//! that refill in batches and steal from each other when dry.
//!
//! Design points:
//!
//! * **Persistent workers.** Threads are spawned once (on first use)
//!   and parked between batches, replacing the fresh
//!   `crossbeam::thread::scope` spawns the old `parallel_map` paid on
//!   every call. The hardware thread count is queried once and cached.
//! * **Sharded injectors with locality-preferring stealing.** The pool
//!   is partitioned into `PB_POOL_SHARDS` shards (default 1 — exactly
//!   the old single-injector behaviour). Each shard owns an injector;
//!   thread slots are partitioned contiguously across shards, and
//!   batch submission routes contiguous chunk ranges to their home
//!   shard's injector. An idle thread looks for work in locality
//!   order: its own shard's injector (batch-refilling its deque), then
//!   own-shard peers' deques, then remote injectors and remote deques
//!   — work-conservation beats locality once the home shard is dry.
//!   Every job is tagged with its home shard at routing, and per-shard
//!   counters attribute each executed job as local (run by a
//!   home-shard thread) or remote (drained by a cross-shard thief).
//!   Sharding changes only *where* a job runs, never *what* it
//!   computes, so results are bit-identical at any shard count. A
//!   shard boundary is the future process boundary for distributed
//!   evaluation.
//! * **Caller participation.** [`Pool::run_indexed`] blocks until the
//!   batch completes, but the calling thread executes queued tasks
//!   while it waits. This both uses the caller as an extra worker and
//!   makes nested batches (a pool task that itself calls
//!   `run_indexed`) deadlock-free: the inner caller drains work
//!   instead of sleeping while holding a worker slot.
//! * **Depth-aware admission.** A batch submitted from *inside* a pool
//!   task (nested `parallel_map` in a batched trial, say) runs inline
//!   on the submitting thread instead of re-enqueueing: the outer
//!   batch already occupies every worker, so re-splitting nested work
//!   only adds queue churn and oversubscription on small machines.
//!   This holds at every shard count.
//! * **Panic propagation.** A panicking task aborts its batch's
//!   remaining tasks (best effort), and the panic payload is re-thrown
//!   on the calling thread once the batch has drained, mirroring the
//!   behaviour of scoped threads.
//!
//! The pool runs *tasks*, not futures: closures over an index range.
//! Data-parallel helpers ([`crate::parallel::parallel_map`]) are built
//! on top and keep the tunable `sequential_cutoff` semantics the
//! autotuner relies on.

#![deny(unsafe_op_in_unsafe_fn)]

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use pb_trace::{Event, EventKind};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

thread_local! {
    /// How many pool tasks are currently executing on this thread
    /// (a worker running a job, or a blocked submitter helping).
    /// Batches submitted at depth >= 1 run inline — see
    /// [`Pool::run_indexed`].
    static TASK_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Increments the thread's task depth for its lifetime (panic-safe:
/// the decrement runs during unwinding too, so a panicking task does
/// not poison the thread's depth).
struct DepthGuard;

impl DepthGuard {
    fn enter() -> DepthGuard {
        TASK_DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        TASK_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// How many pool tasks are executing on the current thread right now
/// (0 outside the pool). Exposed so schedulers and tests can observe
/// the depth-aware admission policy.
pub fn current_task_depth() -> usize {
    TASK_DEPTH.with(Cell::get)
}

/// One schedulable unit: a contiguous index range of some batch.
struct Job {
    /// The batch this job belongs to. The submitting thread keeps the
    /// `BatchState` alive until every job of the batch has finished
    /// (it blocks in [`Pool::run_indexed`]), so the pointer is valid
    /// for the job's whole lifetime.
    batch: *const BatchState,
    start: usize,
    end: usize,
    /// The shard whose injector this job was routed to at submission —
    /// the job's locality affinity, fixed even if the job is later
    /// stolen across a shard boundary (or the shard count changes).
    home: usize,
}

// SAFETY: `Job` moves raw `BatchState` pointers between threads. The
// state outlives the job (see `Job::batch`) and all of its fields are
// `Sync` (atomics, mutexes, and a `Sync` task closure).
unsafe impl Send for Job {}

/// Shared bookkeeping for one `run_indexed` call.
struct BatchState {
    /// The task closure, as a raw wide pointer so `BatchState` can be
    /// stored behind `'static` jobs. Valid while the submitter blocks.
    task: *const (dyn Fn(usize) + Sync),
    /// Jobs not yet finished.
    remaining: AtomicUsize,
    /// Set by the first panicking job; later jobs in the batch
    /// early-exit instead of doing work whose result will be thrown
    /// away by the propagated panic.
    poisoned: AtomicBool,
    /// The first panic payload, re-thrown on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Signals the submitter when `remaining` reaches zero.
    done_lock: Mutex<()>,
    done: Condvar,
    /// Trace sequence of the batch's `pool_batch` span, or 0 when the
    /// batch is untraced. Jobs key their `pool_job`/`pool_steal`
    /// events under it so the merged log nests them deterministically.
    trace_seq: u64,
}

// SAFETY: see the field docs — the raw pointers are only dereferenced
// while the submitting thread (which owns the referents) blocks.
unsafe impl Send for BatchState {}
unsafe impl Sync for BatchState {}

impl BatchState {
    fn execute(&self, start: usize, end: usize) {
        if !self.poisoned.load(Ordering::Relaxed) {
            let job_start = if self.trace_seq != 0 {
                pb_trace::now_ns()
            } else {
                0
            };
            let _depth = DepthGuard::enter();
            // SAFETY: the submitter keeps the closure alive until the
            // batch completes (it blocks in `run_indexed`).
            let task = unsafe { &*self.task };
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    if self.poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    task(i);
                }
            }));
            if let Err(payload) = result {
                self.poisoned.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if self.trace_seq != 0 {
                pb_trace::record(Event::span(
                    EventKind::PoolJob,
                    self.trace_seq,
                    start as u64,
                    job_start,
                    [start as u64, end as u64, 0, 0],
                ));
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock().expect("done lock poisoned");
            self.done.notify_all();
        }
    }
}

/// The shard a thread slot belongs to: slots `0..threads` (slot 0 is
/// the submitting caller, slots `1..` the workers) partition
/// contiguously across `shards` shards. With `shards == threads` every
/// slot is its own shard (per-slot injectors); with `shards == 1` all
/// slots share one shard — the pre-sharding topology.
fn shard_of_slot(slot: usize, shards: usize, threads: usize) -> usize {
    debug_assert!(slot < threads && shards >= 1 && shards <= threads);
    slot * shards / threads
}

/// Per-shard scheduling counters (relaxed atomics; jobs are
/// chunk-sized, so one relaxed increment per executed job is noise
/// next to the work the job carries).
#[derive(Default)]
struct ShardCounters {
    /// Jobs (chunks) routed to this shard's injector at submission.
    dispatched: AtomicU64,
    /// Jobs executed by this shard's threads that were routed to this
    /// shard (locality preserved).
    local_jobs: AtomicU64,
    /// Jobs executed by this shard's threads that were routed to a
    /// *different* shard — cross-shard steals, counted per job.
    remote_jobs: AtomicU64,
}

/// A snapshot of one shard's scheduling counters, cumulative since the
/// pool was created (see [`Pool::shard_stats`]). Executed jobs are
/// attributed to the shard whose thread *ran* them, split by whether
/// the job's home shard matched — so across shards,
/// `Σ local_jobs + Σ remote_jobs` equals the jobs executed, and the
/// remote share measures how much work leaked across shard boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index in `0..Pool::shards()`.
    pub shard: usize,
    /// Thread slots currently assigned to this shard (including the
    /// caller slot for shard 0).
    pub threads: usize,
    /// Jobs routed to this shard's injector at submission.
    pub dispatched: u64,
    /// Jobs this shard's threads ran that were homed here.
    pub local_jobs: u64,
    /// Jobs this shard's threads ran that were homed elsewhere
    /// (cross-shard steals, per job).
    pub remote_jobs: u64,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One injector per *potential* shard (allocated up to the thread
    /// budget so the active shard count can change without
    /// reallocation; inactive injectors just sit empty).
    injectors: Vec<Injector<Job>>,
    stealers: Vec<Stealer<Job>>,
    /// Active shard count in `[1, threads]`. Routing of *new* batches
    /// and the steal order read it; a change never strands queued jobs
    /// because idle threads scan every injector before sleeping.
    shards: AtomicUsize,
    /// Thread budget (including the caller slot) — fixed at creation.
    threads: usize,
    shard_counters: Vec<ShardCounters>,
    /// Sleeping workers wait here; submitters notify on new work.
    sleep_lock: Mutex<()>,
    wake: Condvar,
    /// Set by [`Pool::drop`]; workers exit once the queues drain.
    shutdown: AtomicBool,
}

/// Polls one injector until it yields a job or reports empty,
/// batch-refilling `local` when the thread has a deque (home *and*
/// remote injectors: once a thread is reduced to cross-shard stealing
/// its own shard is dry, and work-conservation beats locality — the
/// per-job home tags keep the locality accounting exact either way).
fn poll_injector(injector: &Injector<Job>, local: Option<&Worker<Job>>) -> Option<Job> {
    loop {
        let stolen = match local {
            Some(worker) => injector.steal_batch_and_pop(worker),
            None => injector.steal(),
        };
        match stolen {
            Steal::Success(job) => return Some(job),
            Steal::Retry => continue,
            Steal::Empty => return None,
        }
    }
}

impl Shared {
    /// Takes one job in locality order for the thread at `slot`: own
    /// shard's injector first, then own-shard peers' deques, then —
    /// only once the home shard is dry — remote injectors and remote
    /// deques (each injector poll batch-refills `local` when present).
    fn find_job(&self, local: Option<&Worker<Job>>, slot: usize) -> Option<Job> {
        let shards = self.shards.load(Ordering::Relaxed);
        let home = shard_of_slot(slot, shards, self.threads);
        if let Some(job) = poll_injector(&self.injectors[home], local) {
            return Some(job);
        }
        for (peer, stealer) in self.stealers.iter().enumerate() {
            let peer_slot = peer + 1;
            if peer_slot == slot || shard_of_slot(peer_slot, shards, self.threads) != home {
                continue;
            }
            if let Steal::Success(job) = stealer.steal() {
                self.trace_steal(false, &job);
                return Some(job);
            }
        }
        // Remote shards: scan *every* other injector — including
        // indices beyond the active shard count — so a shard-count
        // change mid-flight can never strand queued jobs.
        for (idx, injector) in self.injectors.iter().enumerate() {
            if idx == home {
                continue;
            }
            if let Some(job) = poll_injector(injector, local) {
                self.trace_steal(true, &job);
                return Some(job);
            }
        }
        for (peer, stealer) in self.stealers.iter().enumerate() {
            let peer_slot = peer + 1;
            if peer_slot == slot || shard_of_slot(peer_slot, shards, self.threads) == home {
                continue;
            }
            if let Steal::Success(job) = stealer.steal() {
                self.trace_steal(true, &job);
                return Some(job);
            }
        }
        None
    }

    /// When the batch is traced, records a `pool_steal` instant whose
    /// `c` payload carries the acquisition's locality (0 = an
    /// own-shard peer's deque, 1 = cross-shard).
    fn trace_steal(&self, remote: bool, job: &Job) {
        // SAFETY: the batch state outlives its jobs (the submitter
        // blocks until the batch drains).
        let seq = unsafe { (*job.batch).trace_seq };
        if seq != 0 {
            pb_trace::record(Event::instant(
                EventKind::PoolSteal,
                seq,
                job.start as u64,
                [job.start as u64, job.end as u64, remote as u64, 0],
            ));
        }
    }

    /// Executes one job on the thread at `slot`, attributing it to the
    /// executing thread's shard as local (the job's home) or remote
    /// (drained cross-shard).
    fn run_job(&self, job: &Job, slot: usize) {
        let shards = self.shards.load(Ordering::Relaxed);
        let here = shard_of_slot(slot, shards, self.threads);
        let counters = &self.shard_counters[here];
        if job.home == here {
            counters.local_jobs.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.remote_jobs.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: every job's batch state is alive (its submitter
        // blocks in `run_indexed` until the batch completes).
        unsafe { (*job.batch).execute(job.start, job.end) };
    }

    fn injectors_empty(&self) -> bool {
        self.injectors.iter().all(|i| i.is_empty())
    }
}

/// Cumulative **top-level** batch counters for one pool: how many
/// batches were dispatched to the queues vs run inline, how many
/// tasks they carried, the widest batch seen, and — aggregated across
/// shards — how many jobs ran on their home shard vs leaked across a
/// shard boundary. Relaxed atomics; the batch counters are updated
/// once per top-level submission — batches submitted from *inside* a
/// pool task (nested parallelism running under the depth-aware
/// admission policy) are deliberately not counted, so worker threads
/// never touch those shared cache lines from their inner loops. The
/// locality counters are updated once per executed job (chunk), which
/// is coarse enough to be free and rich enough for the throughput
/// benches to report how well sharding keeps work local.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolBatchStats {
    /// Batches fanned out across the worker queues.
    pub dispatched: u64,
    /// Batches run inline on the submitting thread (nested submission,
    /// single-thread budget, or a single-task batch).
    pub inline: u64,
    /// Total tasks across all batches.
    pub tasks: u64,
    /// Largest single batch (tasks).
    pub max_batch: u64,
    /// Queued jobs executed by a thread of their home shard (summed
    /// over shards).
    pub local_jobs: u64,
    /// Queued jobs executed cross-shard — remote steals, per job
    /// (summed over shards; always 0 at one shard).
    pub remote_jobs: u64,
}

impl PoolBatchStats {
    /// The traffic between an `earlier` snapshot of the same pool's
    /// stats and this one: counter fields subtract; `max_batch` — a
    /// running maximum, from which a windowed maximum is not
    /// recoverable — reports the new high-water mark if it rose during
    /// the window and 0 otherwise.
    pub fn delta_since(&self, earlier: &PoolBatchStats) -> PoolBatchStats {
        PoolBatchStats {
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            inline: self.inline.saturating_sub(earlier.inline),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            max_batch: if self.max_batch > earlier.max_batch {
                self.max_batch
            } else {
                0
            },
            local_jobs: self.local_jobs.saturating_sub(earlier.local_jobs),
            remote_jobs: self.remote_jobs.saturating_sub(earlier.remote_jobs),
        }
    }

    /// Folds another delta into this one (`max_batch` takes the max).
    pub fn absorb(&mut self, other: &PoolBatchStats) {
        self.dispatched += other.dispatched;
        self.inline += other.inline;
        self.tasks += other.tasks;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.local_jobs += other.local_jobs;
        self.remote_jobs += other.remote_jobs;
    }
}

/// A work-stealing thread pool (see the module docs).
pub struct Pool {
    shared: Arc<Shared>,
    /// Cached hardware thread budget (including the calling thread).
    threads: usize,
    dispatched: AtomicU64,
    inline: AtomicU64,
    tasks: AtomicU64,
    max_batch: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("shards", &self.shards())
            .finish()
    }
}

/// The environment variable overriding the global pool's thread count
/// (useful for determinism tests on small machines and for pinning CI).
pub const THREADS_ENV: &str = "PB_POOL_THREADS";

/// The environment variable setting the global pool's initial shard
/// count (default 1 — the pre-sharding single-injector topology).
/// Values are clamped to `[1, threads]`; see [`Pool::set_shards`].
pub const SHARDS_ENV: &str = "PB_POOL_SHARDS";

static GLOBAL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The lazily initialized process-wide pool.
    ///
    /// Sized to `std::thread::available_parallelism()` unless the
    /// `PB_POOL_THREADS` environment variable overrides it, and
    /// sharded per `PB_POOL_SHARDS` (default 1). The first caller
    /// fixes the thread budget for the life of the process; the shard
    /// count stays adjustable via [`Pool::set_shards`].
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| {
            let threads = std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            let shards = std::env::var(SHARDS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1);
            Pool::with_config(threads, shards)
        })
    }

    /// Creates a single-shard pool with an explicit thread budget of
    /// `threads` (counting the submitting thread: `threads - 1`
    /// workers are spawned, and `threads < 2` means "run everything
    /// inline").
    pub fn with_threads(threads: usize) -> Pool {
        Pool::with_config(threads, 1)
    }

    /// Creates a pool with an explicit thread budget and shard count.
    /// The shard count is clamped to `[1, threads]` — asking for more
    /// shards than threads degenerates to one injector per thread
    /// slot, never to empty shards.
    pub fn with_config(threads: usize, shards: usize) -> Pool {
        let threads = threads.max(1);
        let shards = shards.clamp(1, threads);
        let workers: Vec<Worker<Job>> = (1..threads).map(|_| Worker::new_fifo()).collect();
        let shared = Arc::new(Shared {
            injectors: (0..threads).map(|_| Injector::new()).collect(),
            stealers: workers.iter().map(Worker::stealer).collect(),
            shards: AtomicUsize::new(shards),
            threads,
            shard_counters: (0..threads).map(|_| ShardCounters::default()).collect(),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
        });
        for (index, worker) in workers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let slot = index + 1;
            std::thread::Builder::new()
                .name("pb-pool-worker".into())
                .spawn(move || worker_loop(&shared, worker, slot))
                .expect("failed to spawn pool worker");
        }
        Pool {
            shared,
            threads,
            dispatched: AtomicU64::new(0),
            inline: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// The pool's thread budget (cached; no syscall per query).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The active shard count (in `[1, threads]`).
    pub fn shards(&self) -> usize {
        self.shared.shards.load(Ordering::Relaxed)
    }

    /// Sets the active shard count, clamped to `[1, threads]`, and
    /// returns the effective value. Affects the routing of batches
    /// submitted *after* the call and the steal order of idle threads;
    /// jobs already queued are never stranded (idle threads scan every
    /// injector). Sharding is pure scheduling — outcomes are
    /// bit-identical at any shard count — so this is safe to call at
    /// any time; tests and benches use it to sweep shard counts on the
    /// process-wide pool, whose thread budget is fixed at first use.
    pub fn set_shards(&self, shards: usize) -> usize {
        let shards = shards.clamp(1, self.threads);
        self.shared.shards.store(shards, Ordering::Relaxed);
        shards
    }

    /// Cumulative batch counters since the pool was created (job
    /// locality counters aggregated across shards).
    pub fn batch_stats(&self) -> PoolBatchStats {
        let mut local_jobs = 0;
        let mut remote_jobs = 0;
        for counters in &self.shared.shard_counters {
            local_jobs += counters.local_jobs.load(Ordering::Relaxed);
            remote_jobs += counters.remote_jobs.load(Ordering::Relaxed);
        }
        PoolBatchStats {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            local_jobs,
            remote_jobs,
        }
    }

    /// Per-shard scheduling counters for the *active* shards,
    /// cumulative since the pool was created. If the shard count
    /// changed over the pool's lifetime, counters accumulated under
    /// the old topology stay attributed to their shard indices.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let shards = self.shards();
        (0..shards)
            .map(|shard| {
                let slots = (0..self.threads)
                    .filter(|&s| shard_of_slot(s, shards, self.threads) == shard)
                    .count();
                let counters = &self.shared.shard_counters[shard];
                ShardStats {
                    shard,
                    threads: slots,
                    dispatched: counters.dispatched.load(Ordering::Relaxed),
                    local_jobs: counters.local_jobs.load(Ordering::Relaxed),
                    remote_jobs: counters.remote_jobs.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Counts one top-level batch of `count` tasks against the stats.
    /// Also called by [`crate::parallel::parallel_gen`] for top-level
    /// batches its cutoff short-circuits before they reach the pool,
    /// so the counters see all top-level batch traffic, not just what
    /// dispatched.
    pub(crate) fn count_batch(&self, count: usize, dispatched: bool) {
        if dispatched {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inline.fetch_add(1, Ordering::Relaxed);
        }
        self.tasks.fetch_add(count as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(count as u64, Ordering::Relaxed);
    }

    /// Runs `task(i)` for every `i` in `0..count` and blocks until all
    /// calls complete. Calls may run concurrently and in any order;
    /// the caller's thread participates.
    ///
    /// The batch is split into contiguous chunks and chunk `c` of `C`
    /// is routed to shard `c * shards / C` — a contiguous per-shard
    /// partition of the index space, so a shard is a span of the
    /// submitted order (for the tuner: a span of candidate-index
    /// order). Callers that merge results by index are therefore
    /// bit-identical at any shard count.
    ///
    /// # Panics
    ///
    /// If any `task(i)` panics, the first panic payload is re-thrown
    /// here after the batch drains (remaining tasks are skipped on a
    /// best-effort basis).
    pub fn run_indexed<F>(&self, count: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        // Depth-aware admission: a batch submitted from *inside* a pool
        // task runs inline on the submitting thread instead of
        // re-enqueueing. The outer batch has already fanned out across
        // the pool, so splitting nested batches again only adds queue
        // traffic and oversubscribes small machines; inline execution
        // keeps exactly one task per worker. (Results are unchanged —
        // `run_indexed` makes no ordering promises either way.)
        if current_task_depth() >= 1 {
            // Not counted in the batch stats: nested submissions come
            // from worker inner loops, where shared-atomic updates
            // would ping-pong cache lines across the pool.
            // Inline execution still counts as running pool tasks, so
            // further nesting observes (and keeps) the right depth.
            let _depth = DepthGuard::enter();
            for i in 0..count {
                task(i);
            }
            return;
        }
        let tracing = pb_trace::enabled();
        let (trace_seq, batch_start) = if tracing {
            (pb_trace::next_seq(), pb_trace::now_ns())
        } else {
            (0, 0)
        };
        // Top-level degenerate batches run inline *without* marking
        // task depth: their tasks occupy no worker, so parallelism
        // nested inside them should still fan out across the idle pool.
        if self.threads < 2 || count == 1 {
            self.count_batch(count, false);
            for i in 0..count {
                task(i);
            }
            if tracing {
                pb_trace::record(Event::span(
                    EventKind::PoolBatch,
                    trace_seq,
                    0,
                    batch_start,
                    [count as u64, 1, 0, 0],
                ));
            }
            return;
        }
        self.count_batch(count, true);

        // Split into more chunks than threads so idle workers can
        // steal from long-running ones.
        let chunks = count.min(self.threads * 4);
        let chunk_len = count.div_ceil(chunks);
        let chunks = count.div_ceil(chunk_len);

        let task_obj: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: the transmute only erases the wide reference's
        // lifetime so jobs can carry it through the 'static queues
        // (same pointee type, same vtable). Sound because this
        // function does not return until every job of the batch has
        // executed, so the borrow outlives every dereference.
        let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_obj) };
        let state = BatchState {
            task: task_ptr,
            remaining: AtomicUsize::new(chunks),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            trace_seq,
        };

        // Route contiguous chunk ranges to their home shard's
        // injector; own-shard threads drain them first (locality),
        // remote threads only once their shard is dry.
        let shards = self.shared.shards.load(Ordering::Relaxed);
        let mut start = 0;
        let mut chunk = 0;
        while start < count {
            let end = (start + chunk_len).min(count);
            let shard = chunk * shards / chunks;
            self.shared.shard_counters[shard]
                .dispatched
                .fetch_add(1, Ordering::Relaxed);
            self.shared.injectors[shard].push(Job {
                batch: &state,
                start,
                end,
                home: shard,
            });
            start = end;
            chunk += 1;
        }
        {
            let _guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
            self.shared.wake.notify_all();
        }

        // Help: execute queued jobs (ours or anyone's) while waiting.
        // The caller occupies slot 0, so it drains shard 0 first.
        while state.remaining.load(Ordering::Acquire) != 0 {
            match self.shared.find_job(None, 0) {
                Some(job) => self.shared.run_job(&job, 0),
                None => {
                    let guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
                    // Re-check under the lock: a worker may have
                    // finished the last job before we locked.
                    if state.remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    drop(guard);
                    let guard = state.done_lock.lock().expect("done lock poisoned");
                    if state.remaining.load(Ordering::Acquire) != 0 {
                        // Timed wait: our remaining jobs might be
                        // *queued* (not running) if workers raced to
                        // sleep; wake up periodically to help.
                        let _ = state
                            .done
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("done condvar poisoned");
                    }
                }
            }
        }

        if tracing {
            pb_trace::record(Event::span(
                EventKind::PoolBatch,
                trace_seq,
                0,
                batch_start,
                [count as u64, chunks as u64, 1, shards as u64],
            ));
        }

        let payload = state.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    /// Signals workers to drain and exit, so non-global pools (tests,
    /// ad-hoc instances) do not leak threads. The process-wide pool
    /// from [`Pool::global`] lives in a static and is never dropped.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
        self.shared.wake.notify_all();
    }
}

fn worker_loop(shared: &Shared, local: Worker<Job>, slot: usize) {
    loop {
        if let Some(job) = local.pop().or_else(|| shared.find_job(Some(&local), slot)) {
            shared.run_job(&job, slot);
            continue;
        }
        // Drain-then-exit: only stop once no work is reachable, so a
        // dropped pool still completes any in-flight batch.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.sleep_lock.lock().expect("sleep lock poisoned");
        if shared.injectors_empty() {
            // Timed wait so a notify racing ahead of this lock cannot
            // strand a worker while jobs sit queued.
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("wake condvar poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::thread::ThreadId;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = Pool::with_threads(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sharded_batches_run_every_index_exactly_once() {
        // Sweep the shard counts the determinism suite uses, both via
        // construction and via `set_shards` on a live pool (the path
        // the in-process sweep takes on the global pool).
        for shards in [1, 2, 4] {
            let pool = Pool::with_config(4, shards);
            assert_eq!(pool.shards(), shards);
            let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
            pool.run_indexed(1000, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        let pool = Pool::with_threads(4);
        for shards in [2, 4, 1] {
            assert_eq!(pool.set_shards(shards), shards);
            let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
            pool.run_indexed(500, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn shard_count_clamps_to_the_thread_budget() {
        // More shards than threads degenerates to per-slot injectors;
        // zero means "unsharded".
        let pool = Pool::with_config(4, 64);
        assert_eq!(pool.shards(), 4);
        let pool = Pool::with_config(4, 0);
        assert_eq!(pool.shards(), 1);
        assert_eq!(pool.set_shards(100), 4);
        assert_eq!(pool.set_shards(0), 1);
        let single = Pool::with_config(1, 8);
        assert_eq!(single.shards(), 1);
    }

    #[test]
    fn shards_equal_threads_degenerates_to_per_slot_injectors() {
        let pool = Pool::with_config(4, 4);
        let stats = pool.shard_stats();
        assert_eq!(stats.len(), 4);
        assert!(
            stats.iter().all(|s| s.threads == 1),
            "every slot its own shard: {stats:?}"
        );
        // 64 tasks on 4 threads split into 16 chunks; chunk c routes
        // to shard c*4/16, i.e. exactly 4 chunks per shard.
        pool.run_indexed(64, |_| {});
        let stats = pool.shard_stats();
        assert!(stats.iter().all(|s| s.dispatched == 4), "{stats:?}");
    }

    #[test]
    fn submission_routes_contiguous_chunk_spans_to_shards() {
        // With 2 shards the first half of the chunk range must land on
        // shard 0 and the second on shard 1 (the contiguous per-shard
        // sub-batch partition the evaluator's merge order relies on).
        let pool = Pool::with_config(4, 2);
        pool.run_indexed(64, |_| {});
        let stats = pool.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].dispatched, 8, "{stats:?}");
        assert_eq!(stats[1].dispatched, 8, "{stats:?}");
        // Slots 0..4 partition contiguously: {0,1} and {2,3}.
        assert_eq!(stats[0].threads, 2);
        assert_eq!(stats[1].threads, 2);
    }

    #[test]
    fn set_shards_reroutes_future_batches_without_stranding_jobs() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(64, |_| {});
        assert_eq!(pool.shard_stats().len(), 1);
        pool.set_shards(4);
        let count = AtomicU64::new(0);
        pool.run_indexed(64, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
        let stats = pool.shard_stats();
        assert_eq!(stats.len(), 4);
        // The rerouted batch spread across the new shards (the first
        // 64-task batch's 16 chunks all sit on shard 0's counter).
        assert_eq!(stats[0].dispatched, 16 + 4, "{stats:?}");
        assert!(stats[1..].iter().all(|s| s.dispatched == 4), "{stats:?}");
    }

    #[test]
    fn batch_stats_aggregate_shard_locality_counters() {
        let pool = Pool::with_config(4, 2);
        // Uneven work per task forces cross-shard stealing; whatever
        // mix of local and remote execution the schedule produces, the
        // aggregate view must equal the per-shard sum — and every
        // dispatched job must be accounted exactly once.
        pool.run_indexed(256, |i| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        let agg = pool.batch_stats();
        let per_shard = pool.shard_stats();
        let local: u64 = per_shard.iter().map(|s| s.local_jobs).sum();
        let remote: u64 = per_shard.iter().map(|s| s.remote_jobs).sum();
        let dispatched: u64 = per_shard.iter().map(|s| s.dispatched).sum();
        assert_eq!(agg.local_jobs, local);
        assert_eq!(agg.remote_jobs, remote);
        assert_eq!(
            local + remote,
            dispatched,
            "every queued job runs exactly once: {per_shard:?}"
        );
    }

    #[test]
    fn single_thread_budget_runs_inline() {
        let pool = Pool::with_threads(1);
        let caller = std::thread::current().id();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(64, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen.contains(&caller));
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let pool = Pool::with_threads(4);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(256, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Enough work per task that workers wake before it's over.
            std::thread::sleep(Duration::from_micros(200));
        });
        // Even on a single-core host the 3 workers plus the caller
        // timeshare; requiring >= 2 distinct threads keeps the test
        // robust while still proving jobs leave the calling thread.
        assert!(seen.into_inner().unwrap().len() >= 2);
    }

    #[test]
    fn sharded_work_still_spreads_across_threads() {
        // Remote stealing must keep a 2-shard pool fully utilized even
        // when one shard's half of the batch is much heavier.
        let pool = Pool::with_config(4, 2);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(256, |i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            if i < 128 {
                // Shard 0's span is the slow half.
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        assert!(seen.into_inner().unwrap().len() >= 2);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = Pool::with_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(100, |i| {
                if i == 37 {
                    panic!("task 37 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 37 exploded");
        // The pool survives a panicked batch.
        let count = AtomicU64::new(0);
        pool.run_indexed(10, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = Pool::with_threads(3);
        let count = AtomicU64::new(0);
        pool.run_indexed(8, |_| {
            pool.run_indexed(8, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_batches_run_inline_on_the_submitting_task() {
        let pool = Pool::with_threads(4);
        // Every inner task must execute on the thread of the outer task
        // that submitted it (depth-aware admission), at depth 2.
        let violations = AtomicU64::new(0);
        pool.run_indexed(16, |_| {
            assert_eq!(current_task_depth(), 1);
            let submitter = std::thread::current().id();
            pool.run_indexed(16, |_| {
                if std::thread::current().id() != submitter || current_task_depth() != 2 {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(violations.load(Ordering::Relaxed), 0);
        // Depth unwinds once the batch completes.
        assert_eq!(current_task_depth(), 0);
    }

    #[test]
    fn nested_batches_stay_inline_at_every_shard_count() {
        // The depth-aware admission policy is shard-independent: a
        // nested batch must never reach any shard's injector.
        for shards in [2, 4] {
            let pool = Pool::with_config(4, shards);
            let violations = AtomicU64::new(0);
            pool.run_indexed(16, |_| {
                let submitter = std::thread::current().id();
                pool.run_indexed(16, |_| {
                    if std::thread::current().id() != submitter || current_task_depth() != 2 {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            assert_eq!(violations.load(Ordering::Relaxed), 0);
            // Only the outer batch's chunks were dispatched.
            let dispatched: u64 = pool.shard_stats().iter().map(|s| s.dispatched).sum();
            assert_eq!(dispatched, 16, "nested jobs must not hit the injectors");
        }
    }

    #[test]
    fn top_level_single_task_batches_do_not_mark_depth() {
        // A degenerate top-level batch runs inline but occupies no
        // worker, so parallelism nested inside it must still fan out.
        let pool = Pool::with_threads(4);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(1, |_| {
            assert_eq!(current_task_depth(), 0, "inline top-level task");
            pool.run_indexed(64, |_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(Duration::from_micros(200));
            });
        });
        assert!(
            seen.into_inner().unwrap().len() >= 2,
            "nested batch under a single-task top-level batch must still fan out"
        );
    }

    #[test]
    fn depth_unwinds_after_a_panicking_task() {
        let pool = Pool::with_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, |i| {
                if i == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(current_task_depth(), 0, "panic must not leak depth");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(0, |_| panic!("must not run"));
        assert_eq!(pool.batch_stats(), PoolBatchStats::default());
    }

    #[test]
    fn batch_stats_track_dispatch_and_inline() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(64, |_| {});
        let after_dispatch = pool.batch_stats();
        assert_eq!(after_dispatch.dispatched, 1);
        assert_eq!(after_dispatch.tasks, 64);
        assert_eq!(after_dispatch.max_batch, 64);
        // A single-task batch runs inline and is counted; nested
        // batches run inline on the submitting task and are *not*
        // counted (worker inner loops must not touch the shared
        // counters).
        pool.run_indexed(1, |_| {});
        pool.run_indexed(2, |_| {
            pool.run_indexed(3, |_| {});
        });
        let stats = pool.batch_stats();
        assert_eq!(stats.dispatched, 2);
        assert_eq!(stats.inline, 1, "only the degenerate top-level batch");
        assert_eq!(stats.tasks, 64 + 1 + 2);
        assert_eq!(stats.max_batch, 64);
    }

    #[test]
    fn batch_stats_delta_since_windows_the_counters() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(64, |_| {});
        let snap = pool.batch_stats();
        pool.run_indexed(1, |_| {});
        pool.run_indexed(32, |_| {});
        let delta = pool.batch_stats().delta_since(&snap);
        assert_eq!(delta.dispatched, 1);
        assert_eq!(delta.inline, 1);
        assert_eq!(delta.tasks, 33);
        // max_batch did not rise past the earlier snapshot's 64, so the
        // window reports no new high-water mark.
        assert_eq!(delta.max_batch, 0);
        let mut acc = PoolBatchStats::default();
        acc.absorb(&delta);
        acc.absorb(&snap.delta_since(&PoolBatchStats::default()));
        assert_eq!(acc.tasks, 64 + 33);
        assert_eq!(acc.max_batch, 64);
    }

    #[test]
    fn dropping_a_pool_stops_its_workers() {
        let pool = Pool::with_threads(3);
        let count = AtomicU64::new(0);
        pool.run_indexed(16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
        let weak = Arc::downgrade(&pool.shared);
        drop(pool);
        // Workers hold the only other Arc<Shared> references; once
        // they exit, the weak handle dangles.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while weak.upgrade().is_some() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            weak.upgrade().is_none(),
            "worker threads must exit after the pool is dropped"
        );
    }

    #[test]
    fn global_pool_threads_are_cached_and_positive() {
        let a = Pool::global().threads();
        let b = Pool::global().threads();
        assert_eq!(a, b);
        assert!(a >= 1);
        assert!(std::ptr::eq(Pool::global(), Pool::global()));
        let shards = Pool::global().shards();
        assert!(shards >= 1 && shards <= a);
    }
}
