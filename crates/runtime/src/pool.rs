//! A persistent work-stealing thread pool.
//!
//! The paper's runtime executes rule applications on "a parallel work
//! stealing scheduler" whose sequential/parallel switch-over points are
//! exposed to the autotuner (§5.2). This module is that scheduler's
//! equivalent: a lazily initialized global [`Pool`] of worker threads
//! fed through a shared `crossbeam`-style injector, with per-worker
//! deques that refill in batches and steal from each other when dry.
//!
//! Design points:
//!
//! * **Persistent workers.** Threads are spawned once (on first use)
//!   and parked between batches, replacing the fresh
//!   `crossbeam::thread::scope` spawns the old `parallel_map` paid on
//!   every call. The hardware thread count is queried once and cached.
//! * **Caller participation.** [`Pool::run_indexed`] blocks until the
//!   batch completes, but the calling thread executes queued tasks
//!   while it waits. This both uses the caller as an extra worker and
//!   makes nested batches (a pool task that itself calls
//!   `run_indexed`) deadlock-free: the inner caller drains work
//!   instead of sleeping while holding a worker slot.
//! * **Depth-aware admission.** A batch submitted from *inside* a pool
//!   task (nested `parallel_map` in a batched trial, say) runs inline
//!   on the submitting thread instead of re-enqueueing: the outer
//!   batch already occupies every worker, so re-splitting nested work
//!   only adds queue churn and oversubscription on small machines.
//! * **Panic propagation.** A panicking task aborts its batch's
//!   remaining tasks (best effort), and the panic payload is re-thrown
//!   on the calling thread once the batch has drained, mirroring the
//!   behaviour of scoped threads.
//!
//! The pool runs *tasks*, not futures: closures over an index range.
//! Data-parallel helpers ([`crate::parallel::parallel_map`]) are built
//! on top and keep the tunable `sequential_cutoff` semantics the
//! autotuner relies on.

#![deny(unsafe_op_in_unsafe_fn)]

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use pb_trace::{Event, EventKind};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

thread_local! {
    /// How many pool tasks are currently executing on this thread
    /// (a worker running a job, or a blocked submitter helping).
    /// Batches submitted at depth >= 1 run inline — see
    /// [`Pool::run_indexed`].
    static TASK_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Increments the thread's task depth for its lifetime (panic-safe:
/// the decrement runs during unwinding too, so a panicking task does
/// not poison the thread's depth).
struct DepthGuard;

impl DepthGuard {
    fn enter() -> DepthGuard {
        TASK_DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        TASK_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// How many pool tasks are executing on the current thread right now
/// (0 outside the pool). Exposed so schedulers and tests can observe
/// the depth-aware admission policy.
pub fn current_task_depth() -> usize {
    TASK_DEPTH.with(Cell::get)
}

/// One schedulable unit: a contiguous index range of some batch.
struct Job {
    /// The batch this job belongs to. The submitting thread keeps the
    /// `BatchState` alive until every job of the batch has finished
    /// (it blocks in [`Pool::run_indexed`]), so the pointer is valid
    /// for the job's whole lifetime.
    batch: *const BatchState,
    start: usize,
    end: usize,
}

// SAFETY: `Job` moves raw `BatchState` pointers between threads. The
// state outlives the job (see `Job::batch`) and all of its fields are
// `Sync` (atomics, mutexes, and a `Sync` task closure).
unsafe impl Send for Job {}

/// Shared bookkeeping for one `run_indexed` call.
struct BatchState {
    /// The task closure, as a raw wide pointer so `BatchState` can be
    /// stored behind `'static` jobs. Valid while the submitter blocks.
    task: *const (dyn Fn(usize) + Sync),
    /// Jobs not yet finished.
    remaining: AtomicUsize,
    /// Set by the first panicking job; later jobs in the batch
    /// early-exit instead of doing work whose result will be thrown
    /// away by the propagated panic.
    poisoned: AtomicBool,
    /// The first panic payload, re-thrown on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Signals the submitter when `remaining` reaches zero.
    done_lock: Mutex<()>,
    done: Condvar,
    /// Trace sequence of the batch's `pool_batch` span, or 0 when the
    /// batch is untraced. Jobs key their `pool_job`/`pool_steal`
    /// events under it so the merged log nests them deterministically.
    trace_seq: u64,
}

// SAFETY: see the field docs — the raw pointers are only dereferenced
// while the submitting thread (which owns the referents) blocks.
unsafe impl Send for BatchState {}
unsafe impl Sync for BatchState {}

impl BatchState {
    fn execute(&self, start: usize, end: usize) {
        if !self.poisoned.load(Ordering::Relaxed) {
            let job_start = if self.trace_seq != 0 {
                pb_trace::now_ns()
            } else {
                0
            };
            let _depth = DepthGuard::enter();
            // SAFETY: the submitter keeps the closure alive until the
            // batch completes (it blocks in `run_indexed`).
            let task = unsafe { &*self.task };
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    if self.poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    task(i);
                }
            }));
            if let Err(payload) = result {
                self.poisoned.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if self.trace_seq != 0 {
                pb_trace::record(Event::span(
                    EventKind::PoolJob,
                    self.trace_seq,
                    start as u64,
                    job_start,
                    [start as u64, end as u64, 0, 0],
                ));
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock().expect("done lock poisoned");
            self.done.notify_all();
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Sleeping workers wait here; submitters notify on new work.
    sleep_lock: Mutex<()>,
    wake: Condvar,
    /// Set by [`Pool::drop`]; workers exit once the queues drain.
    shutdown: AtomicBool,
}

impl Shared {
    /// Takes one job from anywhere: the injector first (optionally
    /// refilling `local`), then other workers' deques.
    fn find_job(&self, local: Option<&Worker<Job>>) -> Option<Job> {
        loop {
            let stolen = match local {
                Some(worker) => self.injector.steal_batch_and_pop(worker),
                None => self.injector.steal(),
            };
            match stolen {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => {}
            }
            for stealer in &self.stealers {
                if let Steal::Success(job) = stealer.steal() {
                    // SAFETY: the batch state outlives its jobs (the
                    // submitter blocks until the batch drains).
                    let seq = unsafe { (*job.batch).trace_seq };
                    if seq != 0 {
                        pb_trace::record(Event::instant(
                            EventKind::PoolSteal,
                            seq,
                            job.start as u64,
                            [job.start as u64, job.end as u64, 0, 0],
                        ));
                    }
                    return Some(job);
                }
            }
            return None;
        }
    }
}

/// Cumulative **top-level** batch counters for one pool: how many
/// batches were dispatched to the queues vs run inline, how many
/// tasks they carried, and the widest batch seen. Relaxed atomics,
/// updated once per top-level submission — batches submitted from
/// *inside* a pool task (nested parallelism running under the
/// depth-aware admission policy) are deliberately not counted, so
/// worker threads never touch these shared cache lines from their
/// inner loops. Coarse enough to be free, rich enough for the
/// throughput benches to report how wide the tuner's batches actually
/// run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolBatchStats {
    /// Batches fanned out across the worker queues.
    pub dispatched: u64,
    /// Batches run inline on the submitting thread (nested submission,
    /// single-thread budget, or a single-task batch).
    pub inline: u64,
    /// Total tasks across all batches.
    pub tasks: u64,
    /// Largest single batch (tasks).
    pub max_batch: u64,
}

impl PoolBatchStats {
    /// The traffic between an `earlier` snapshot of the same pool's
    /// stats and this one: counter fields subtract; `max_batch` — a
    /// running maximum, from which a windowed maximum is not
    /// recoverable — reports the new high-water mark if it rose during
    /// the window and 0 otherwise.
    pub fn delta_since(&self, earlier: &PoolBatchStats) -> PoolBatchStats {
        PoolBatchStats {
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            inline: self.inline.saturating_sub(earlier.inline),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            max_batch: if self.max_batch > earlier.max_batch {
                self.max_batch
            } else {
                0
            },
        }
    }

    /// Folds another delta into this one (`max_batch` takes the max).
    pub fn absorb(&mut self, other: &PoolBatchStats) {
        self.dispatched += other.dispatched;
        self.inline += other.inline;
        self.tasks += other.tasks;
        self.max_batch = self.max_batch.max(other.max_batch);
    }
}

/// A work-stealing thread pool (see the module docs).
pub struct Pool {
    shared: Arc<Shared>,
    /// Cached hardware thread budget (including the calling thread).
    threads: usize,
    dispatched: AtomicU64,
    inline: AtomicU64,
    tasks: AtomicU64,
    max_batch: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// The environment variable overriding the global pool's thread count
/// (useful for determinism tests on small machines and for pinning CI).
pub const THREADS_ENV: &str = "PB_POOL_THREADS";

static GLOBAL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The lazily initialized process-wide pool.
    ///
    /// Sized to `std::thread::available_parallelism()` unless the
    /// `PB_POOL_THREADS` environment variable overrides it. The first
    /// caller fixes the size for the life of the process.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| {
            let threads = std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            Pool::with_threads(threads)
        })
    }

    /// Creates a pool with an explicit thread budget of `threads`
    /// (counting the submitting thread: `threads - 1` workers are
    /// spawned, and `threads < 2` means "run everything inline").
    pub fn with_threads(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (1..threads).map(|_| Worker::new_fifo()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers: workers.iter().map(Worker::stealer).collect(),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
        });
        for worker in workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pb-pool-worker".into())
                .spawn(move || worker_loop(&shared, worker))
                .expect("failed to spawn pool worker");
        }
        Pool {
            shared,
            threads,
            dispatched: AtomicU64::new(0),
            inline: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// The pool's thread budget (cached; no syscall per query).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative batch counters since the pool was created.
    pub fn batch_stats(&self) -> PoolBatchStats {
        PoolBatchStats {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Counts one top-level batch of `count` tasks against the stats.
    /// Also called by [`crate::parallel::parallel_gen`] for top-level
    /// batches its cutoff short-circuits before they reach the pool,
    /// so the counters see all top-level batch traffic, not just what
    /// dispatched.
    pub(crate) fn count_batch(&self, count: usize, dispatched: bool) {
        if dispatched {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inline.fetch_add(1, Ordering::Relaxed);
        }
        self.tasks.fetch_add(count as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(count as u64, Ordering::Relaxed);
    }

    /// Runs `task(i)` for every `i` in `0..count` and blocks until all
    /// calls complete. Calls may run concurrently and in any order;
    /// the caller's thread participates.
    ///
    /// # Panics
    ///
    /// If any `task(i)` panics, the first panic payload is re-thrown
    /// here after the batch drains (remaining tasks are skipped on a
    /// best-effort basis).
    pub fn run_indexed<F>(&self, count: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        // Depth-aware admission: a batch submitted from *inside* a pool
        // task runs inline on the submitting thread instead of
        // re-enqueueing. The outer batch has already fanned out across
        // the pool, so splitting nested batches again only adds queue
        // traffic and oversubscribes small machines; inline execution
        // keeps exactly one task per worker. (Results are unchanged —
        // `run_indexed` makes no ordering promises either way.)
        if current_task_depth() >= 1 {
            // Not counted in the batch stats: nested submissions come
            // from worker inner loops, where shared-atomic updates
            // would ping-pong cache lines across the pool.
            // Inline execution still counts as running pool tasks, so
            // further nesting observes (and keeps) the right depth.
            let _depth = DepthGuard::enter();
            for i in 0..count {
                task(i);
            }
            return;
        }
        let tracing = pb_trace::enabled();
        let (trace_seq, batch_start) = if tracing {
            (pb_trace::next_seq(), pb_trace::now_ns())
        } else {
            (0, 0)
        };
        // Top-level degenerate batches run inline *without* marking
        // task depth: their tasks occupy no worker, so parallelism
        // nested inside them should still fan out across the idle pool.
        if self.threads < 2 || count == 1 {
            self.count_batch(count, false);
            for i in 0..count {
                task(i);
            }
            if tracing {
                pb_trace::record(Event::span(
                    EventKind::PoolBatch,
                    trace_seq,
                    0,
                    batch_start,
                    [count as u64, 1, 0, 0],
                ));
            }
            return;
        }
        self.count_batch(count, true);

        // Split into more chunks than threads so idle workers can
        // steal from long-running ones.
        let chunks = count.min(self.threads * 4);
        let chunk_len = count.div_ceil(chunks);
        let chunks = count.div_ceil(chunk_len);

        let task_obj: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: the transmute only erases the wide reference's
        // lifetime so jobs can carry it through the 'static queues
        // (same pointee type, same vtable). Sound because this
        // function does not return until every job of the batch has
        // executed, so the borrow outlives every dereference.
        let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_obj) };
        let state = BatchState {
            task: task_ptr,
            remaining: AtomicUsize::new(chunks),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            trace_seq,
        };

        let mut start = 0;
        while start < count {
            let end = (start + chunk_len).min(count);
            self.shared.injector.push(Job {
                batch: &state,
                start,
                end,
            });
            start = end;
        }
        {
            let _guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
            self.shared.wake.notify_all();
        }

        // Help: execute queued jobs (ours or anyone's) while waiting.
        while state.remaining.load(Ordering::Acquire) != 0 {
            match self.shared.find_job(None) {
                Some(job) => {
                    // SAFETY: every job's batch state is alive (its
                    // submitter is blocked like we are).
                    unsafe { (*job.batch).execute(job.start, job.end) };
                }
                None => {
                    let guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
                    // Re-check under the lock: a worker may have
                    // finished the last job before we locked.
                    if state.remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    drop(guard);
                    let guard = state.done_lock.lock().expect("done lock poisoned");
                    if state.remaining.load(Ordering::Acquire) != 0 {
                        // Timed wait: our remaining jobs might be
                        // *queued* (not running) if workers raced to
                        // sleep; wake up periodically to help.
                        let _ = state
                            .done
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("done condvar poisoned");
                    }
                }
            }
        }

        if tracing {
            pb_trace::record(Event::span(
                EventKind::PoolBatch,
                trace_seq,
                0,
                batch_start,
                [count as u64, chunks as u64, 1, 0],
            ));
        }

        let payload = state.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    /// Signals workers to drain and exit, so non-global pools (tests,
    /// ad-hoc instances) do not leak threads. The process-wide pool
    /// from [`Pool::global`] lives in a static and is never dropped.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _guard = self.shared.sleep_lock.lock().expect("sleep lock poisoned");
        self.shared.wake.notify_all();
    }
}

fn worker_loop(shared: &Shared, local: Worker<Job>) {
    loop {
        if let Some(job) = local.pop().or_else(|| shared.find_job(Some(&local))) {
            // SAFETY: every job's batch state is alive (its submitter
            // blocks in `run_indexed` until the batch completes).
            unsafe { (*job.batch).execute(job.start, job.end) };
            continue;
        }
        // Drain-then-exit: only stop once no work is reachable, so a
        // dropped pool still completes any in-flight batch.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.sleep_lock.lock().expect("sleep lock poisoned");
        if shared.injector.is_empty() {
            // Timed wait so a notify racing ahead of this lock cannot
            // strand a worker while jobs sit queued.
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("wake condvar poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::thread::ThreadId;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = Pool::with_threads(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_budget_runs_inline() {
        let pool = Pool::with_threads(1);
        let caller = std::thread::current().id();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(64, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen.contains(&caller));
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let pool = Pool::with_threads(4);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(256, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Enough work per task that workers wake before it's over.
            std::thread::sleep(Duration::from_micros(200));
        });
        // Even on a single-core host the 3 workers plus the caller
        // timeshare; requiring >= 2 distinct threads keeps the test
        // robust while still proving jobs leave the calling thread.
        assert!(seen.into_inner().unwrap().len() >= 2);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = Pool::with_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(100, |i| {
                if i == 37 {
                    panic!("task 37 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 37 exploded");
        // The pool survives a panicked batch.
        let count = AtomicU64::new(0);
        pool.run_indexed(10, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = Pool::with_threads(3);
        let count = AtomicU64::new(0);
        pool.run_indexed(8, |_| {
            pool.run_indexed(8, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_batches_run_inline_on_the_submitting_task() {
        let pool = Pool::with_threads(4);
        // Every inner task must execute on the thread of the outer task
        // that submitted it (depth-aware admission), at depth 2.
        let violations = AtomicU64::new(0);
        pool.run_indexed(16, |_| {
            assert_eq!(current_task_depth(), 1);
            let submitter = std::thread::current().id();
            pool.run_indexed(16, |_| {
                if std::thread::current().id() != submitter || current_task_depth() != 2 {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(violations.load(Ordering::Relaxed), 0);
        // Depth unwinds once the batch completes.
        assert_eq!(current_task_depth(), 0);
    }

    #[test]
    fn top_level_single_task_batches_do_not_mark_depth() {
        // A degenerate top-level batch runs inline but occupies no
        // worker, so parallelism nested inside it must still fan out.
        let pool = Pool::with_threads(4);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run_indexed(1, |_| {
            assert_eq!(current_task_depth(), 0, "inline top-level task");
            pool.run_indexed(64, |_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(Duration::from_micros(200));
            });
        });
        assert!(
            seen.into_inner().unwrap().len() >= 2,
            "nested batch under a single-task top-level batch must still fan out"
        );
    }

    #[test]
    fn depth_unwinds_after_a_panicking_task() {
        let pool = Pool::with_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, |i| {
                if i == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(current_task_depth(), 0, "panic must not leak depth");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(0, |_| panic!("must not run"));
        assert_eq!(pool.batch_stats(), PoolBatchStats::default());
    }

    #[test]
    fn batch_stats_track_dispatch_and_inline() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(64, |_| {});
        let after_dispatch = pool.batch_stats();
        assert_eq!(after_dispatch.dispatched, 1);
        assert_eq!(after_dispatch.tasks, 64);
        assert_eq!(after_dispatch.max_batch, 64);
        // A single-task batch runs inline and is counted; nested
        // batches run inline on the submitting task and are *not*
        // counted (worker inner loops must not touch the shared
        // counters).
        pool.run_indexed(1, |_| {});
        pool.run_indexed(2, |_| {
            pool.run_indexed(3, |_| {});
        });
        let stats = pool.batch_stats();
        assert_eq!(stats.dispatched, 2);
        assert_eq!(stats.inline, 1, "only the degenerate top-level batch");
        assert_eq!(stats.tasks, 64 + 1 + 2);
        assert_eq!(stats.max_batch, 64);
    }

    #[test]
    fn batch_stats_delta_since_windows_the_counters() {
        let pool = Pool::with_threads(4);
        pool.run_indexed(64, |_| {});
        let snap = pool.batch_stats();
        pool.run_indexed(1, |_| {});
        pool.run_indexed(32, |_| {});
        let delta = pool.batch_stats().delta_since(&snap);
        assert_eq!(delta.dispatched, 1);
        assert_eq!(delta.inline, 1);
        assert_eq!(delta.tasks, 33);
        // max_batch did not rise past the earlier snapshot's 64, so the
        // window reports no new high-water mark.
        assert_eq!(delta.max_batch, 0);
        let mut acc = PoolBatchStats::default();
        acc.absorb(&delta);
        acc.absorb(&snap.delta_since(&PoolBatchStats::default()));
        assert_eq!(acc.tasks, 64 + 33);
        assert_eq!(acc.max_batch, 64);
    }

    #[test]
    fn dropping_a_pool_stops_its_workers() {
        let pool = Pool::with_threads(3);
        let count = AtomicU64::new(0);
        pool.run_indexed(16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
        let weak = Arc::downgrade(&pool.shared);
        drop(pool);
        // Workers hold the only other Arc<Shared> references; once
        // they exit, the weak handle dangles.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while weak.upgrade().is_some() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            weak.upgrade().is_none(),
            "worker threads must exit after the pool is dropped"
        );
    }

    #[test]
    fn global_pool_threads_are_cached_and_positive() {
        let a = Pool::global().threads();
        let b = Pool::global().threads();
        assert_eq!(a, b);
        assert!(a >= 1);
        assert!(std::ptr::eq(Pool::global(), Pool::global()));
    }
}
