//! Runtime for executing tuned variable-accuracy transforms.
//!
//! The paper's compiler emits code whose algorithmic choices, cutoffs and
//! accuracy variables are resolved at run time against a *choice
//! configuration file* (§5.2). This crate is the Rust equivalent of that
//! generated-code runtime:
//!
//! * [`Transform`] — the interface a variable-accuracy transform exposes
//!   to the autotuner: a tunable [`pb_config::Schema`], an input
//!   generator for training, an execution entry point, and an
//!   `accuracy_metric` (§3.2).
//! * [`ExecCtx`] — the execution context handed to a running transform.
//!   It resolves choice sites through decision trees, reads accuracy
//!   variables, implements `for_enough` loops, accumulates a
//!   deterministic *virtual cost* alongside wall-clock time, and records
//!   an execution trace (used to draw the multigrid cycle shapes of
//!   Fig. 8).
//! * [`TunedProgram`] — the result of training: one configuration per
//!   accuracy bin, with runtime lookup of "the correct bin that will
//!   obtain a requested accuracy" (§4.2).
//! * [`guarantee`] — statistical, runtime-checked (`verify_accuracy`),
//!   and domain-specific accuracy guarantees (§3.3).
//! * [`pool`] / [`parallel`] — the persistent work-stealing scheduler
//!   and the tunable-cutoff data-parallel helpers built on it (§5.2).

pub mod ctx;
pub mod diag;
pub mod guarantee;
pub mod parallel;
pub mod pool;
pub mod scratch;
pub mod transform;
pub mod tuned;

pub use ctx::{ExecCtx, TraceEvent, TraceNode};
pub use guarantee::{GuaranteeError, GuaranteeKind, VerifiedRun};
pub use pool::{Pool, PoolBatchStats};
pub use scratch::ScratchPool;
pub use transform::{CostModel, Transform, TransformRunner, TrialOutcome, TrialRunner};
pub use tuned::{TunedEntry, TunedProgram};
