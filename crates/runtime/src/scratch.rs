//! Per-thread reusable scratch allocations.
//!
//! The register VM (and any other hot executor) needs per-invocation
//! working memory — register banks, slot banks, resolved-tunable
//! tables. Allocating those on every invocation dominates small-rule
//! execution, so each [`crate::ExecCtx`] carries a [`ScratchPool`]: a
//! typed grab-bag of reusable boxed allocations. The pool's contents
//! survive the context: on construction the pool adopts whatever the
//! current thread's reservoir holds, and on drop it gives the items
//! back, so steady-state trial execution on a pool worker re-uses the
//! same buffers across every trial that thread runs.
//!
//! The pool is deliberately dumb: a small vector of `Box<dyn Any>`
//! searched linearly by type. Executors keep at most a handful of
//! distinct scratch types alive, so the scan is a few pointer
//! comparisons — far cheaper than the allocations it avoids.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;

/// Upper bound on reservoir entries kept per thread, so pathological
/// usage (many distinct scratch types, deep recursion) cannot grow the
/// reservoir without bound.
const RESERVOIR_CAP: usize = 64;

thread_local! {
    /// Scratch items handed back by dropped [`ScratchPool`]s, adopted
    /// by the next pool constructed on this thread.
    static RESERVOIR: RefCell<Vec<Box<dyn Any>>> = const { RefCell::new(Vec::new()) };
}

/// A typed pool of reusable scratch allocations (see the module docs).
#[derive(Default)]
pub struct ScratchPool {
    items: Vec<Box<dyn Any>>,
}

impl fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("items", &self.items.len())
            .finish()
    }
}

impl ScratchPool {
    /// Creates a pool seeded with the current thread's reservoir, so
    /// buffers recycle across successive pools (e.g. one per trial) on
    /// the same thread.
    pub fn from_thread_reservoir() -> Self {
        let items = RESERVOIR.with(|r| std::mem::take(&mut *r.borrow_mut()));
        ScratchPool { items }
    }

    /// Number of items currently parked in the pool.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Takes an item of type `T` out of the pool, or default-constructs
    /// one if none is parked. The caller owns the item until it is
    /// [`ScratchPool::put`] back (nested users each get their own).
    pub fn take<T: Any + Default>(&mut self) -> Box<T> {
        match self.items.iter().position(|i| i.is::<T>()) {
            Some(at) => self
                .items
                .swap_remove(at)
                .downcast::<T>()
                .expect("position() matched the type"),
            None => Box::<T>::default(),
        }
    }

    /// Parks an item for later reuse.
    pub fn put<T: Any>(&mut self, item: Box<T>) {
        self.items.push(item);
    }
}

impl Drop for ScratchPool {
    /// Returns the items to the thread's reservoir (up to a cap), so
    /// the next pool on this thread starts warm.
    fn drop(&mut self) {
        RESERVOIR.with(|r| {
            let mut reservoir = r.borrow_mut();
            while reservoir.len() < RESERVOIR_CAP {
                match self.items.pop() {
                    Some(item) => reservoir.push(item),
                    None => break,
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Buf(Vec<u8>);

    #[test]
    fn take_reuses_parked_items() {
        let mut pool = ScratchPool::default();
        let mut a = pool.take::<Buf>();
        a.0.resize(128, 7);
        let data_ptr = a.0.as_ptr();
        pool.put(a);
        let b = pool.take::<Buf>();
        assert_eq!(b.0.as_ptr(), data_ptr, "the parked buffer comes back");
        assert_eq!(b.0.len(), 128);
    }

    #[test]
    fn nested_takes_get_distinct_items() {
        let mut pool = ScratchPool::default();
        let a = pool.take::<Buf>();
        let b = pool.take::<Buf>();
        assert!(!std::ptr::eq(&*a, &*b));
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn reservoir_survives_pool_drop() {
        // Run in a dedicated thread so other tests' reservoirs don't
        // interfere.
        std::thread::spawn(|| {
            let mut pool = ScratchPool::from_thread_reservoir();
            let mut buf = pool.take::<Buf>();
            buf.0.resize(64, 1);
            let data_ptr = buf.0.as_ptr();
            pool.put(buf);
            drop(pool);
            let mut warm = ScratchPool::from_thread_reservoir();
            let buf = warm.take::<Buf>();
            assert_eq!(buf.0.as_ptr(), data_ptr, "reservoir kept the buffer");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn distinct_types_coexist() {
        #[derive(Default)]
        struct Other(u64);
        let mut pool = ScratchPool::default();
        let mut buf = pool.take::<Buf>();
        buf.0.push(1);
        pool.put(buf);
        let mut other = pool.take::<Other>();
        other.0 = 9;
        pool.put(other);
        assert_eq!(pool.take::<Buf>().0, vec![1]);
        assert_eq!(pool.take::<Other>().0, 9);
    }
}
