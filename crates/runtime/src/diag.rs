//! One funnel for library diagnostics.
//!
//! Library crates must not write to stderr bare: test output gets
//! noisy, and operators can't turn the chatter off. Everything
//! advisory goes through [`warn`] (or the [`crate::diag_warn!`]
//! macro), which honors the `PB_QUIET` environment knob:
//!
//! * `PB_QUIET` unset, empty, or `0` — warnings print to stderr with a
//!   `pb: ` prefix.
//! * `PB_QUIET` set to anything else — warnings are suppressed.
//!
//! Either way every warning is counted, so tests (and operators) can
//! assert "no diagnostics" without scraping stderr.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static EMITTED: AtomicU64 = AtomicU64::new(0);

/// Whether diagnostics are suppressed (`PB_QUIET` set non-empty,
/// non-`0`). Read once per process.
pub fn quiet() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| std::env::var("PB_QUIET").is_ok_and(|v| !(v.is_empty() || v == "0")))
}

/// Emits one advisory diagnostic to stderr (unless [`quiet`]) and
/// counts it either way.
pub fn warn(message: impl AsRef<str>) {
    EMITTED.fetch_add(1, Ordering::Relaxed);
    if !quiet() {
        eprintln!("pb: {}", message.as_ref());
    }
}

/// Number of warnings emitted so far in this process (suppressed ones
/// included).
pub fn warn_count() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

/// [`warn`] with `format!` arguments:
/// `diag_warn!("sidecar {} corrupted", path)`.
#[macro_export]
macro_rules! diag_warn {
    ($($arg:tt)*) => {
        $crate::diag::warn(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warnings_are_counted() {
        // `quiet()` latches on first read; the count must advance
        // regardless of the knob's state.
        let before = warn_count();
        warn("diag self-test (harmless)");
        diag_warn!("diag self-test {} (harmless)", 2);
        assert_eq!(warn_count(), before + 2);
    }
}
