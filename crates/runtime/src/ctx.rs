//! Execution context for variable-accuracy transforms.
//!
//! When the PetaBricks compiler emits code, each choice site, cutoff and
//! accuracy variable in the source is compiled into a lookup against the
//! active configuration. [`ExecCtx`] plays that role here: a transform's
//! `execute` body asks the context which algorithm to run, how many
//! `for_enough` iterations to perform, and so on. The context also
//! accumulates a deterministic *virtual cost* (used instead of
//! wall-clock time in tests and in the deterministic tuning mode) and an
//! execution trace from which cycle-shape diagrams (Fig. 8) are drawn.

use crate::scratch::ScratchPool;
use pb_config::{Config, ConfigError, Schema, TunableId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One event recorded in the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Entered a named scope (e.g. one multigrid recursion level).
    Enter(String),
    /// Left the innermost open scope.
    Exit,
    /// A point event inside the current scope (e.g. "relax" or
    /// "direct_solve").
    Point(String),
}

/// A tree view of a recorded trace (scopes become nodes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceNode {
    /// Scope label ("" for the root).
    pub label: String,
    /// Point events recorded directly in this scope, in order.
    pub points: Vec<String>,
    /// Nested scopes, in order of entry.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total number of point events in this subtree.
    pub fn total_points(&self) -> usize {
        self.points.len()
            + self
                .children
                .iter()
                .map(TraceNode::total_points)
                .sum::<usize>()
    }

    /// Maximum scope depth below this node (0 for a leaf).
    pub fn depth(&self) -> usize {
        self.children
            .iter()
            .map(|c| 1 + c.depth())
            .max()
            .unwrap_or(0)
    }

    /// Counts point events with the given label in the whole subtree.
    pub fn count_points(&self, label: &str) -> usize {
        self.points.iter().filter(|p| p.as_str() == label).count()
            + self
                .children
                .iter()
                .map(|c| c.count_points(label))
                .sum::<usize>()
    }
}

/// The execution context handed to [`crate::Transform::execute`].
///
/// # Examples
///
/// ```
/// use pb_config::Schema;
/// use pb_runtime::ExecCtx;
///
/// let mut schema = Schema::new("demo");
/// schema.add_choice_site("solver", 2);
/// schema.add_accuracy_variable("iterations", 1, 100);
/// let config = schema.default_config();
/// let mut ctx = ExecCtx::new(&schema, &config, 64, 42);
///
/// let algorithm = ctx.choice("solver").unwrap();
/// assert_eq!(algorithm, 0);
/// let mut work = 0;
/// for _ in 0..ctx.for_enough("iterations").unwrap() {
///     work += 1;
///     ctx.charge(1.0);
/// }
/// assert_eq!(work, 1);
/// assert_eq!(ctx.virtual_cost(), 1.0);
/// ```
#[derive(Debug)]
pub struct ExecCtx<'a> {
    schema: &'a Schema,
    config: &'a Config,
    /// The input size the transform was invoked with; decision trees are
    /// resolved against the *current* size, which recursive transforms
    /// update via [`ExecCtx::with_size`].
    size: u64,
    virtual_cost: f64,
    rng: SmallRng,
    trace: Vec<TraceEvent>,
    trace_enabled: bool,
    open_scopes: usize,
    scratch: ScratchPool,
}

impl<'a> ExecCtx<'a> {
    /// Creates a context for one execution of a transform on an input of
    /// size `size`, with a deterministic RNG seeded by `seed`.
    pub fn new(schema: &'a Schema, config: &'a Config, size: u64, seed: u64) -> Self {
        ExecCtx {
            schema,
            config,
            size,
            virtual_cost: 0.0,
            rng: SmallRng::seed_from_u64(seed),
            trace: Vec::new(),
            trace_enabled: false,
            open_scopes: 0,
            scratch: ScratchPool::from_thread_reservoir(),
        }
    }

    /// The context's reusable scratch pool (register banks, resolved
    /// tunable tables, …). Seeded from a per-thread reservoir at
    /// construction and returned to it on drop, so executors on a pool
    /// worker reuse the same buffers across trials.
    pub fn scratch(&mut self) -> &mut ScratchPool {
        &mut self.scratch
    }

    /// The schema the active configuration conforms to.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        self.config
    }

    /// The current input size used for decision-tree resolution.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Temporarily switches the context to a smaller size for a
    /// recursive sub-call, running `f` and restoring the size after.
    /// This is how "each recursive call works on a problem with half as
    /// many points" re-resolves its decision trees (§6.1.3).
    pub fn with_size<R>(&mut self, size: u64, f: impl FnOnce(&mut ExecCtx<'a>) -> R) -> R {
        let saved = self.size;
        self.size = size;
        let out = f(self);
        self.size = saved;
        out
    }

    /// Resolves the algorithm index for choice site `name` at the
    /// current size.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown or non-choice tunables.
    pub fn choice(&mut self, name: &str) -> Result<usize, ConfigError> {
        self.config.choice(self.schema, name, self.size)
    }

    /// Reads an integer tunable (cutoff / accuracy variable / user
    /// parameter).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown or mistyped tunables.
    pub fn param(&self, name: &str) -> Result<i64, ConfigError> {
        self.config.int(self.schema, name)
    }

    /// Reads a float tunable.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown or mistyped tunables.
    pub fn float_param(&self, name: &str) -> Result<f64, ConfigError> {
        self.config.float(self.schema, name)
    }

    /// Reads a switch tunable.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown or mistyped tunables.
    pub fn switch(&self, name: &str) -> Result<usize, ConfigError> {
        self.config.switch(self.schema, name)
    }

    /// The iteration count of a `for_enough` loop (§3.2): "syntactic
    /// sugar for adding an accuracy variable to specify the number of
    /// iterations of a traditional loop". The tunable must be an
    /// integer-valued accuracy variable.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown or mistyped tunables.
    pub fn for_enough(&self, name: &str) -> Result<u64, ConfigError> {
        Ok(self.param(name)?.max(0) as u64)
    }

    /// Resolves a tunable name to its schema id, for executors that
    /// cache name resolution outside their dispatch loops and then use
    /// the `*_by_id` accessors (which skip the per-read string hash).
    pub fn tunable_id(&self, name: &str) -> Option<TunableId> {
        self.schema.tunable(name).map(|(id, _)| id)
    }

    /// Like [`ExecCtx::choice`] with a pre-resolved id.
    ///
    /// # Errors
    ///
    /// Returns the same [`ConfigError`] the by-name accessor would for
    /// a non-choice tunable.
    pub fn choice_by_id(&mut self, id: TunableId) -> Result<usize, ConfigError> {
        self.config.choice_by_id(self.schema, id, self.size)
    }

    /// Like [`ExecCtx::param`] with a pre-resolved id.
    ///
    /// # Errors
    ///
    /// Returns the same [`ConfigError`] the by-name accessor would for
    /// a non-integer tunable.
    pub fn param_by_id(&self, id: TunableId) -> Result<i64, ConfigError> {
        self.config.int_by_id(self.schema, id)
    }

    /// Like [`ExecCtx::for_enough`] with a pre-resolved id.
    ///
    /// # Errors
    ///
    /// Returns the same [`ConfigError`] the by-name accessor would for
    /// a non-integer tunable.
    pub fn for_enough_by_id(&self, id: TunableId) -> Result<u64, ConfigError> {
        Ok(self.param_by_id(id)?.max(0) as u64)
    }

    /// Deterministic per-execution RNG (seeded by the trial runner so
    /// that training is reproducible).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Adds `units` of deterministic virtual cost. Transforms charge
    /// cost proportional to the work they perform; the deterministic
    /// tuning mode ranks candidates by this instead of wall time.
    pub fn charge(&mut self, units: f64) {
        self.virtual_cost += units;
    }

    /// Total virtual cost charged so far.
    pub fn virtual_cost(&self) -> f64 {
        self.virtual_cost
    }

    /// Enables trace recording (off by default; recording allocates).
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// Enters a named trace scope. No-op unless tracing is enabled.
    pub fn enter(&mut self, label: impl Into<String>) {
        if self.trace_enabled {
            self.trace.push(TraceEvent::Enter(label.into()));
            self.open_scopes += 1;
        }
    }

    /// Exits the innermost trace scope.
    ///
    /// # Panics
    ///
    /// Panics if tracing is enabled and no scope is open.
    pub fn exit(&mut self) {
        if self.trace_enabled {
            assert!(self.open_scopes > 0, "ExecCtx::exit with no open scope");
            self.trace.push(TraceEvent::Exit);
            self.open_scopes -= 1;
        }
    }

    /// Records a point event in the current scope.
    pub fn event(&mut self, label: impl Into<String>) {
        if self.trace_enabled {
            self.trace.push(TraceEvent::Point(label.into()));
        }
    }

    /// The raw trace events recorded so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Builds the tree view of the trace. Unclosed scopes are treated as
    /// closed at the end.
    pub fn trace_tree(&self) -> TraceNode {
        let mut root = TraceNode::default();
        let mut stack: Vec<TraceNode> = Vec::new();
        for ev in &self.trace {
            match ev {
                TraceEvent::Enter(label) => stack.push(TraceNode {
                    label: label.clone(),
                    ..TraceNode::default()
                }),
                TraceEvent::Exit => {
                    let done = stack.pop().expect("trace exit without enter");
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(done),
                        None => root.children.push(done),
                    }
                }
                TraceEvent::Point(label) => match stack.last_mut() {
                    Some(scope) => scope.points.push(label.clone()),
                    None => root.points.push(label.clone()),
                },
            }
        }
        while let Some(done) = stack.pop() {
            match stack.last_mut() {
                Some(parent) => parent.children.push(done),
                None => root.children.push(done),
            }
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Value;

    fn schema() -> Schema {
        let mut s = Schema::new("demo");
        s.add_choice_site("solver", 3);
        s.add_accuracy_variable("iters", 1, 100);
        s.add_cutoff("cutoff", 1, 1000);
        s.add_switch("layout", 2);
        s.add_float_param("omega", 0.0, 2.0);
        s
    }

    #[test]
    fn reads_resolve_against_config() {
        let s = schema();
        let mut c = s.default_config();
        c.set_by_name(&s, "iters", Value::Int(7)).unwrap();
        c.set_by_name(&s, "omega", Value::Float(1.5)).unwrap();
        let mut ctx = ExecCtx::new(&s, &c, 10, 0);
        assert_eq!(ctx.choice("solver").unwrap(), 0);
        assert_eq!(ctx.param("iters").unwrap(), 7);
        assert_eq!(ctx.for_enough("iters").unwrap(), 7);
        assert_eq!(ctx.float_param("omega").unwrap(), 1.5);
        assert_eq!(ctx.switch("layout").unwrap(), 0);
    }

    #[test]
    fn choice_depends_on_current_size() {
        let s = schema();
        let mut c = s.default_config();
        let mut tree = pb_config::DecisionTree::single(2);
        tree.add_level(100, 1);
        c.set_by_name(&s, "solver", Value::Tree(tree)).unwrap();
        let mut ctx = ExecCtx::new(&s, &c, 500, 0);
        assert_eq!(ctx.choice("solver").unwrap(), 2);
        let inner = ctx.with_size(50, |ctx| ctx.choice("solver").unwrap());
        assert_eq!(inner, 1);
        // Size restored after the recursive call.
        assert_eq!(ctx.size(), 500);
        assert_eq!(ctx.choice("solver").unwrap(), 2);
    }

    #[test]
    fn virtual_cost_accumulates() {
        let s = schema();
        let c = s.default_config();
        let mut ctx = ExecCtx::new(&s, &c, 10, 0);
        ctx.charge(2.5);
        ctx.charge(1.5);
        assert_eq!(ctx.virtual_cost(), 4.0);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::Rng;
        let s = schema();
        let c = s.default_config();
        let mut a = ExecCtx::new(&s, &c, 10, 99);
        let mut b = ExecCtx::new(&s, &c, 10, 99);
        let xa: f64 = a.rng().gen();
        let xb: f64 = b.rng().gen();
        assert_eq!(xa, xb);
        let mut c2 = ExecCtx::new(&s, &c, 10, 100);
        let xc: f64 = c2.rng().gen();
        assert_ne!(xa, xc);
    }

    #[test]
    fn trace_disabled_records_nothing() {
        let s = schema();
        let c = s.default_config();
        let mut ctx = ExecCtx::new(&s, &c, 10, 0);
        ctx.enter("level0");
        ctx.event("relax");
        ctx.exit();
        assert!(ctx.trace().is_empty());
    }

    #[test]
    fn trace_tree_reconstructs_nesting() {
        let s = schema();
        let c = s.default_config();
        let mut ctx = ExecCtx::new(&s, &c, 10, 0);
        ctx.enable_trace();
        ctx.enter("level0");
        ctx.event("relax");
        ctx.enter("level1");
        ctx.event("relax");
        ctx.event("direct");
        ctx.exit();
        ctx.event("relax");
        ctx.exit();
        let tree = ctx.trace_tree();
        assert_eq!(tree.children.len(), 1);
        let l0 = &tree.children[0];
        assert_eq!(l0.label, "level0");
        assert_eq!(l0.points, vec!["relax", "relax"]);
        assert_eq!(l0.children[0].label, "level1");
        assert_eq!(l0.children[0].points, vec!["relax", "direct"]);
        assert_eq!(tree.total_points(), 4);
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.count_points("relax"), 3);
    }

    #[test]
    fn unclosed_scopes_are_closed_at_end() {
        let s = schema();
        let c = s.default_config();
        let mut ctx = ExecCtx::new(&s, &c, 10, 0);
        ctx.enable_trace();
        ctx.enter("a");
        ctx.enter("b");
        ctx.event("p");
        let tree = ctx.trace_tree();
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].label, "a");
        assert_eq!(tree.children[0].children[0].label, "b");
    }
}
