//! Data-parallel helpers with tunable sequential cutoffs.
//!
//! The original PetaBricks runtime automatically parallelized rule
//! applications with a work-stealing scheduler and tuned the
//! sequential/parallel cutoff. We reproduce the essential behaviour: a
//! data-parallel map with a tunable sequential cutoff, built on the
//! persistent work-stealing [`Pool`](crate::pool::Pool). Benchmarks
//! call [`parallel_map`] (or [`parallel_gen`]) with a cutoff read from
//! their configuration, so the tuner controls the switch-over point
//! exactly as in the paper (§5.2 "switching points from a parallel
//! work stealing scheduler to sequential code").

#![deny(unsafe_op_in_unsafe_fn)]

use crate::pool::Pool;

/// A raw output pointer that may cross thread boundaries.
///
/// Tasks write disjoint slots (`ptr.add(i)` for distinct `i`), which is
/// what makes sharing the pointer sound.
struct SendPtr<T>(*mut T);

// SAFETY: `SendPtr` is only used to fan one allocation's slots out to
// pool tasks that write disjoint indices (`ptr.add(i)` for distinct
// `i`, each within capacity, each written exactly once), while the
// owning `Vec` is pinned on the submitting thread for the duration of
// the batch. `T: Send` because ownership of each written slot
// transfers back to the submitter.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: tasks share `&SendPtr` across threads; disjoint-slot writes
// (above) are the only access, so no synchronization on the pointee is
// needed beyond the batch-completion fence `run_indexed` provides.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Builds a `Vec` whose `i`-th element is `f(i)`, splitting across the
/// global pool when at least `sequential_cutoff` elements are
/// requested.
///
/// With fewer elements than the cutoff (or a single-thread budget) the
/// map runs sequentially on the calling thread, which is the tuned
/// fast path for small inputs. Results are written straight into their
/// final slots — no intermediate `Vec<Option<O>>`.
///
/// # Panics
///
/// Propagates the first panic from `f`. Elements already produced by
/// other tasks are leaked (not dropped) in that case.
///
/// # Examples
///
/// ```
/// use pb_runtime::parallel::parallel_gen;
///
/// let squares = parallel_gen(4, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
/// Whether a map of `count` elements with the given cutoff runs on
/// the pool (as opposed to inline on the calling thread).
///
/// This is the single source of truth for the switch-over decision:
/// [`parallel_gen`] / [`parallel_map`] branch on it, and cost models
/// that charge for the schedule (e.g. the clustering benchmark's
/// `par_cutoff` tunable) query it rather than duplicating the
/// condition.
pub fn parallel_engages(count: usize, sequential_cutoff: usize) -> bool {
    count >= sequential_cutoff.max(2) && Pool::global().threads() >= 2
}

pub fn parallel_gen<O, F>(count: usize, sequential_cutoff: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if !parallel_engages(count, sequential_cutoff) {
        // Below-cutoff top-level batches never reach the pool; record
        // them as inline so `Pool::batch_stats` reflects the full
        // top-level batch traffic. Nested calls skip the counters —
        // see `PoolBatchStats`.
        if count > 0 && crate::pool::current_task_depth() == 0 {
            Pool::global().count_batch(count, false);
            if pb_trace::enabled() {
                let seq = pb_trace::next_seq();
                let start = pb_trace::now_ns();
                let out = (0..count).map(f).collect();
                pb_trace::record(pb_trace::Event::span(
                    pb_trace::EventKind::PoolBatch,
                    seq,
                    0,
                    start,
                    [count as u64, 1, 0, 0],
                ));
                return out;
            }
        }
        return (0..count).map(f).collect();
    }
    let pool = Pool::global();
    let mut out: Vec<O> = Vec::with_capacity(count);
    let slots = SendPtr(out.as_mut_ptr());
    let slots = &slots;
    pool.run_indexed(count, |i| {
        // SAFETY: `i` values are distinct across tasks, so each slot
        // is written exactly once, within the Vec's capacity, while
        // `out` (len 0) is fenced by `run_indexed`'s completion.
        unsafe { slots.0.add(i).write(f(i)) };
    });
    // SAFETY: `run_indexed` returned without panicking, so all `count`
    // slots were initialized.
    unsafe { out.set_len(count) };
    out
}

/// Applies `f` to every element, splitting across threads when the
/// input is at least `sequential_cutoff` elements long.
///
/// Results are returned in input order. See [`parallel_gen`] for the
/// cutoff and panic semantics.
///
/// # Examples
///
/// ```
/// use pb_runtime::parallel::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<I, O, F>(items: &[I], sequential_cutoff: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_gen(items.len(), sequential_cutoff, |i| f(&items[i]))
}

/// Number of hardware threads the global pool uses (cached in the
/// pool; no syscall per query).
pub fn available_threads() -> usize {
    Pool::global().threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_below_cutoff() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(&[1, 2, 3], 1000, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn parallel_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&input, 8, |&x| x * 2);
        let expected: Vec<u64> = input.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 1, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_match_sequential_for_nontrivial_work() {
        let input: Vec<f64> = (1..500).map(|i| i as f64).collect();
        let par = parallel_map(&input, 4, |&x| x.sqrt().sin());
        let seq: Vec<f64> = input.iter().map(|&x| x.sqrt().sin()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn gen_handles_non_copy_outputs() {
        let out = parallel_gen(100, 2, |i| vec![i; 3]);
        assert!(out.iter().enumerate().all(|(i, v)| v == &vec![i; 3]));
    }

    #[test]
    fn available_threads_is_stable() {
        assert_eq!(available_threads(), available_threads());
        assert!(available_threads() >= 1);
    }

    /// Pins the `SendPtr` contract: every slot is written exactly once
    /// (constructions == slots, even through pool-task fan-out), each
    /// landing at its own index, and no value is dropped during the
    /// writes or double-dropped afterwards — which would all be
    /// observable here because the payload counts its constructions
    /// and drops.
    #[test]
    fn sendptr_writes_each_slot_exactly_once() {
        static BUILT: AtomicUsize = AtomicUsize::new(0);
        static DROPPED: AtomicUsize = AtomicUsize::new(0);

        #[derive(Debug, PartialEq)]
        struct Tracked(usize);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }

        const N: usize = 10_000;
        let out = parallel_gen(N, 2, |i| {
            BUILT.fetch_add(1, Ordering::Relaxed);
            Tracked(i)
        });
        assert_eq!(out.len(), N);
        // Order and placement: slot i holds f(i).
        assert!(out.iter().enumerate().all(|(i, v)| v.0 == i));
        // Exactly-once writes: one construction per slot, and nothing
        // dropped while the batch ran (a double write at a slot would
        // overwrite — not drop — but would show up as extra
        // constructions).
        assert_eq!(BUILT.load(Ordering::Relaxed), N);
        assert_eq!(DROPPED.load(Ordering::Relaxed), 0);
        drop(out);
        // Exactly-once drops: set_len(count) handed ownership of every
        // initialized slot to the Vec.
        assert_eq!(DROPPED.load(Ordering::Relaxed), N);
    }
}
