//! Minimal parallel-execution helpers.
//!
//! The original PetaBricks runtime automatically parallelized rule
//! applications with a work-stealing scheduler and tuned the
//! sequential/parallel cutoff. We reproduce the essential behaviour: a
//! data-parallel map with a tunable sequential cutoff, built on
//! crossbeam's scoped threads. Benchmarks call [`parallel_map`] with a
//! cutoff read from their configuration, so the tuner controls the
//! switch-over point exactly as in the paper (§5.2 "switching points
//! from a parallel work stealing scheduler to sequential code").

/// Applies `f` to every element, splitting across threads when the
/// input is at least `sequential_cutoff` elements long.
///
/// Results are returned in input order. With fewer elements than the
/// cutoff (or a cutoff of 0 threads available) the map runs sequentially
/// on the calling thread.
///
/// # Examples
///
/// ```
/// use pb_runtime::parallel::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<I, O, F>(items: &[I], sequential_cutoff: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = available_threads();
    if items.len() < sequential_cutoff.max(2) || threads < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<O>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (i, o) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *o = Some(f(i));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter()
        .map(|o| o.expect("all slots filled by workers"))
        .collect()
}

/// Number of hardware threads to use for parallel maps.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_below_cutoff() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(&[1, 2, 3], 1000, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn parallel_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&input, 8, |&x| x * 2);
        let expected: Vec<u64> = input.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 1, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_match_sequential_for_nontrivial_work() {
        let input: Vec<f64> = (1..500).map(|i| i as f64).collect();
        let par = parallel_map(&input, 4, |&x| x.sqrt().sin());
        let seq: Vec<f64> = input.iter().map(|&x| x.sqrt().sin()).collect();
        assert_eq!(par, seq);
    }
}
