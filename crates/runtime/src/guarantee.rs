//! Accuracy guarantees (§3.3).
//!
//! PetaBricks supports three guarantee styles:
//!
//! * **Statistical** — the default: off-line testing bounds the accuracy
//!   metric to a confidence level; nothing extra happens at run time.
//! * **Run-time checking** — the `verify_accuracy` keyword inserts a
//!   check after execution; on failure "the algorithm can be retried
//!   with the next higher level of accuracy".
//! * **Domain-specific** — hand proofs make checking unnecessary.
//!
//! [`run_verified`] implements the run-time–checked path against a
//! [`TunedProgram`]: execute at the cheapest sufficient bin, verify with
//! the accuracy metric, and escalate bin-by-bin (then retry with fresh
//! seeds) until the requirement is met or options run out.

use crate::transform::{Transform, TransformRunner};
use crate::tuned::TunedProgram;
use crate::ExecCtx;
use std::fmt;

/// Which accuracy-guarantee technique a transform uses (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuaranteeKind {
    /// Off-line statistical bounds at the given confidence (e.g. 0.95).
    Statistical {
        /// Required confidence level in `(0, 1)`.
        confidence: f64,
    },
    /// `verify_accuracy`: check at run time, escalating on failure up to
    /// `max_retries` re-executions after the highest bin is reached.
    RuntimeChecked {
        /// Extra re-executions (with fresh seeds) at the highest bin.
        max_retries: usize,
    },
    /// The programmer supplied a proof; accuracy is never re-checked.
    DomainSpecific,
}

/// Error produced when a runtime-checked execution cannot reach the
/// required accuracy.
#[derive(Debug, Clone, PartialEq)]
pub enum GuaranteeError {
    /// No trained bin has a target meeting the requirement.
    NoSufficientBin {
        /// The accuracy the caller asked for.
        required: f64,
        /// The highest trained target.
        highest_trained: f64,
    },
    /// All escalations and retries were exhausted.
    AccuracyNotMet {
        /// The accuracy the caller asked for.
        required: f64,
        /// The best accuracy any attempt achieved.
        best_achieved: f64,
        /// Total executions performed.
        attempts: usize,
    },
}

impl fmt::Display for GuaranteeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuaranteeError::NoSufficientBin {
                required,
                highest_trained,
            } => write!(
                f,
                "no trained accuracy bin meets {required} (highest trained target is {highest_trained})"
            ),
            GuaranteeError::AccuracyNotMet {
                required,
                best_achieved,
                attempts,
            } => write!(
                f,
                "accuracy {required} not met after {attempts} attempts (best achieved {best_achieved})"
            ),
        }
    }
}

impl std::error::Error for GuaranteeError {}

/// A successful verified execution.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedRun<O> {
    /// The transform's output.
    pub output: O,
    /// The verified accuracy of that output.
    pub accuracy: f64,
    /// Executions performed (1 = first try succeeded).
    pub attempts: usize,
    /// Index of the accuracy bin whose configuration produced the
    /// accepted output.
    pub bin_used: usize,
}

/// Executes `input` with a hard accuracy requirement, implementing the
/// `verify_accuracy` retry protocol (§3.3).
///
/// Starts at the cheapest bin whose target meets `required`; on a failed
/// check escalates to each higher bin in turn, then performs up to
/// `max_retries` extra executions at the highest bin with fresh seeds.
///
/// # Errors
///
/// * [`GuaranteeError::NoSufficientBin`] if no trained bin targets the
///   required accuracy.
/// * [`GuaranteeError::AccuracyNotMet`] if every attempt fails the check.
pub fn run_verified<T: Transform>(
    runner: &TransformRunner<T>,
    tuned: &TunedProgram,
    input: &T::Input,
    n: u64,
    required: f64,
    max_retries: usize,
    seed: u64,
) -> Result<VerifiedRun<T::Output>, GuaranteeError> {
    let start_bin = tuned.bin_meeting(required).ok_or_else(|| {
        let highest = tuned
            .bins()
            .targets()
            .last()
            .copied()
            .unwrap_or(f64::NEG_INFINITY);
        GuaranteeError::NoSufficientBin {
            required,
            highest_trained: highest,
        }
    })?;

    let top_bin = tuned.bins().len() - 1;
    let mut attempts = 0;
    let mut best_achieved = f64::NEG_INFINITY;
    let transform = runner.transform();
    let schema = runner.schema();

    // Escalation schedule: each bin from start to top once, then
    // max_retries extra tries at the top bin.
    let schedule = (start_bin..=top_bin).chain(std::iter::repeat_n(top_bin, max_retries));
    for bin in schedule {
        let config = &tuned.entry(bin).config;
        let mut ctx = ExecCtx::new(schema, config, n, seed.wrapping_add(attempts as u64));
        let output = transform.execute(input, &mut ctx);
        let accuracy = transform.accuracy(input, &output);
        attempts += 1;
        if accuracy >= required {
            return Ok(VerifiedRun {
                output,
                accuracy,
                attempts,
                bin_used: bin,
            });
        }
        best_achieved = best_achieved.max(accuracy);
    }
    Err(GuaranteeError::AccuracyNotMet {
        required,
        best_achieved,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::CostModel;
    use crate::tuned::TunedEntry;
    use pb_config::{AccuracyBins, Schema, Value};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Accuracy = level / 10 with ±0.05 noise, so low bins genuinely
    /// fail strict requirements and high bins pass.
    struct Noisy;

    impl Transform for Noisy {
        type Input = ();
        type Output = f64;

        fn name(&self) -> &str {
            "noisy"
        }

        fn schema(&self) -> Schema {
            let mut s = Schema::new("noisy");
            s.add_accuracy_variable("level", 0, 10);
            s
        }

        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}

        fn execute(&self, _input: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            let noise: f64 = ctx.rng().gen_range(-0.05..0.05);
            level / 10.0 + noise
        }

        fn accuracy(&self, _input: &(), output: &f64) -> f64 {
            *output
        }
    }

    fn tuned_for(levels: &[(f64, i64)]) -> (TransformRunner<Noisy>, TunedProgram) {
        let runner = TransformRunner::new(Noisy, CostModel::Virtual);
        let schema = runner.schema().clone();
        let bins = AccuracyBins::new(levels.iter().map(|&(t, _)| t).collect());
        let entries = levels
            .iter()
            .map(|&(t, level)| {
                let mut config = schema.default_config();
                config
                    .set_by_name(&schema, "level", Value::Int(level))
                    .unwrap();
                TunedEntry {
                    target: t,
                    config,
                    observed_accuracy: t,
                    observed_time: level as f64,
                }
            })
            .collect();
        let tuned = TunedProgram::new("noisy", bins, entries);
        (runner, tuned)
    }

    #[test]
    fn first_attempt_succeeds_when_bin_is_strong() {
        let (runner, tuned) = tuned_for(&[(0.2, 9), (0.8, 10)]);
        let run = run_verified(&runner, &tuned, &(), 1, 0.1, 0, 42).unwrap();
        assert_eq!(run.attempts, 1);
        assert_eq!(run.bin_used, 0);
        assert!(run.accuracy >= 0.1);
    }

    #[test]
    fn escalates_to_higher_bin_on_failure() {
        // Bin 0 claims 0.5 but its config only delivers ~0.1: the check
        // must fail and escalate to bin 1 (level 10 -> ~1.0).
        let (runner, tuned) = tuned_for(&[(0.5, 1), (0.9, 10)]);
        let run = run_verified(&runner, &tuned, &(), 1, 0.5, 0, 42).unwrap();
        assert_eq!(run.bin_used, 1);
        assert_eq!(run.attempts, 2);
    }

    #[test]
    fn requirement_above_training_is_rejected() {
        let (runner, tuned) = tuned_for(&[(0.2, 2), (0.8, 8)]);
        let err = run_verified(&runner, &tuned, &(), 1, 0.99, 3, 42).unwrap_err();
        assert!(matches!(err, GuaranteeError::NoSufficientBin { .. }));
    }

    #[test]
    fn exhausted_retries_report_best_achieved() {
        // The top bin claims 0.95 but its config delivers ~0.2.
        let (runner, tuned) = tuned_for(&[(0.95, 2)]);
        let err = run_verified(&runner, &tuned, &(), 1, 0.95, 4, 42).unwrap_err();
        match err {
            GuaranteeError::AccuracyNotMet {
                attempts,
                best_achieved,
                ..
            } => {
                assert_eq!(attempts, 5, "initial try plus 4 retries");
                assert!(best_achieved < 0.3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn retries_use_fresh_seeds() {
        // With noise of ±0.05 around 0.9, requiring 0.9 fails for about
        // half the seeds; retries with fresh seeds must eventually pass.
        let (runner, tuned) = tuned_for(&[(0.9, 9)]);
        let run = run_verified(&runner, &tuned, &(), 1, 0.9, 50, 7).unwrap();
        assert!(run.accuracy >= 0.9);
        assert!(run.attempts >= 1);
    }
}
