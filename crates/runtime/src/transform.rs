//! The [`Transform`] interface and the trial runner the tuner drives.
//!
//! A PetaBricks *transform* "is like a function call in any common
//! procedural language" (§2) except that it exposes algorithmic and
//! accuracy choices to the autotuner. In this reproduction a transform
//! is a Rust type implementing [`Transform`]; the autotuner interacts
//! with it exclusively through the object-safe [`TrialRunner`] facade,
//! which generates a training input, executes the transform under a
//! candidate configuration, and measures both cost and accuracy (the
//! two axes of the optimal frontier, §4.2).

use crate::ctx::{ExecCtx, TraceNode};
use pb_config::{Config, Schema};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// How candidate cost is measured during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostModel {
    /// Wall-clock seconds — what the paper uses on real hardware.
    WallClock,
    /// Deterministic virtual cost charged via [`ExecCtx::charge`] —
    /// used by the test suite and by reproducible tuning runs, where
    /// machine noise would otherwise make results flaky.
    #[default]
    Virtual,
}

/// Measurements from one trial execution of a candidate algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// The cost the tuner optimizes (wall seconds or virtual units,
    /// per the runner's [`CostModel`]).
    pub time: f64,
    /// Wall-clock seconds regardless of cost model.
    pub wall_seconds: f64,
    /// Virtual cost regardless of cost model.
    pub virtual_cost: f64,
    /// The accuracy-metric value for this run (larger = more accurate).
    pub accuracy: f64,
}

impl TrialOutcome {
    /// The deterministic worst-case verdict recorded for a trial whose
    /// every attempt faulted (panicked, timed out, or produced a
    /// non-finite cost) and whose retries are exhausted: infinite cost
    /// on every axis and `-inf` accuracy, so a quarantined candidate
    /// loses every time comparison, meets no accuracy target, and is
    /// never persisted to a trial-cache sidecar (which skips
    /// non-finite entries).
    pub const QUARANTINED: TrialOutcome = TrialOutcome {
        time: f64::INFINITY,
        wall_seconds: f64::INFINITY,
        virtual_cost: f64::INFINITY,
        accuracy: f64::NEG_INFINITY,
    };

    /// Whether this outcome is the quarantine sentinel.
    pub fn is_quarantined(&self) -> bool {
        *self == TrialOutcome::QUARANTINED
    }
}

/// A variable-accuracy transform: the paper's `transform` construct
/// (§2–3) expressed as a Rust trait.
///
/// Implementations declare their tunables (the training-information
/// inventory), generate training inputs of a given size, execute under a
/// configuration via [`ExecCtx`], and score outputs with their
/// `accuracy_metric`.
pub trait Transform {
    /// The transform's input data (the `from` clause).
    type Input;
    /// The transform's output data (the `to` clause).
    type Output;

    /// Transform name (used in config files and reports).
    fn name(&self) -> &str;

    /// Builds the tunable schema — the static-analysis output the tuner
    /// generates mutators from (§5.3–5.4).
    fn schema(&self) -> Schema;

    /// Generates a training input of size `n` (§5.1: input sizes grow
    /// exponentially during tuning).
    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> Self::Input;

    /// Executes the transform under the configuration carried by `ctx`.
    fn execute(&self, input: &Self::Input, ctx: &mut ExecCtx<'_>) -> Self::Output;

    /// The `accuracy_metric` transform (§3.2): computes the accuracy of
    /// an input/output pair. Larger values are more accurate.
    fn accuracy(&self, input: &Self::Input, output: &Self::Output) -> f64;
}

/// Object-safe facade over a [`Transform`] used by the autotuner.
///
/// The tuner never sees input/output types — only configurations going
/// in and `(cost, accuracy)` measurements coming out.
pub trait TrialRunner: Send + Sync {
    /// Transform name.
    fn name(&self) -> &str;

    /// The tunable schema.
    fn schema(&self) -> &Schema;

    /// Whether [`TrialRunner::run_trial`] is a pure function of
    /// `(config, n, seed)` — true for the virtual cost model, false
    /// for wall-clock measurement. The tuner only memoizes trial
    /// outcomes when this holds; the conservative default is `false`.
    fn deterministic(&self) -> bool {
        false
    }

    /// Runs one trial: generate an input of size `n` from `seed`,
    /// execute under `config`, measure cost and accuracy.
    fn run_trial(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome;

    /// Like [`TrialRunner::run_trial`] but also records and returns the
    /// execution trace (used for cycle-shape reporting).
    fn run_traced(&self, config: &Config, n: u64, seed: u64) -> (TrialOutcome, TraceNode);
}

/// Adapts a concrete [`Transform`] into a [`TrialRunner`].
///
/// # Examples
///
/// ```
/// use pb_config::Schema;
/// use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner, TrialRunner};
/// use rand::rngs::SmallRng;
/// use rand::Rng;
///
/// struct Sum;
///
/// impl Transform for Sum {
///     type Input = Vec<f64>;
///     type Output = f64;
///     fn name(&self) -> &str { "sum" }
///     fn schema(&self) -> Schema {
///         let mut s = Schema::new("sum");
///         s.add_accuracy_variable("terms_pct", 1, 100);
///         s
///     }
///     fn generate_input(&self, n: u64, rng: &mut SmallRng) -> Vec<f64> {
///         (0..n).map(|_| rng.gen::<f64>()).collect()
///     }
///     fn execute(&self, input: &Vec<f64>, ctx: &mut ExecCtx<'_>) -> f64 {
///         let pct = ctx.param("terms_pct").unwrap() as usize;
///         let take = input.len() * pct / 100;
///         ctx.charge(take as f64);
///         input.iter().take(take).sum()
///     }
///     fn accuracy(&self, input: &Vec<f64>, output: &f64) -> f64 {
///         let exact: f64 = input.iter().sum();
///         if exact == 0.0 { 1.0 } else { 1.0 - ((exact - output) / exact).abs() }
///     }
/// }
///
/// let runner = TransformRunner::new(Sum, CostModel::Virtual);
/// let config = runner.schema().default_config();
/// let outcome = runner.run_trial(&config, 100, 7);
/// assert!(outcome.accuracy <= 1.0);
/// assert_eq!(outcome.time, outcome.virtual_cost);
/// ```
#[derive(Debug)]
pub struct TransformRunner<T: Transform> {
    transform: T,
    schema: Schema,
    cost_model: CostModel,
}

impl<T: Transform> TransformRunner<T> {
    /// Wraps `transform`, caching its schema.
    pub fn new(transform: T, cost_model: CostModel) -> Self {
        let schema = transform.schema();
        TransformRunner {
            transform,
            schema,
            cost_model,
        }
    }

    /// The wrapped transform.
    pub fn transform(&self) -> &T {
        &self.transform
    }

    /// The cached tunable schema (also available through the
    /// [`TrialRunner`] trait; provided inherently so callers holding a
    /// concrete runner need not import the trait).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The active cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    fn run_inner(
        &self,
        config: &Config,
        n: u64,
        seed: u64,
        traced: bool,
    ) -> (TrialOutcome, TraceNode) {
        // Input generation and execution use decorrelated seeds so that
        // the same input can be re-used across candidates while the
        // execution's internal randomness still varies with `seed`.
        let mut input_rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
        let input = self.transform.generate_input(n, &mut input_rng);
        let mut ctx = ExecCtx::new(&self.schema, config, n, seed);
        if traced {
            ctx.enable_trace();
        }
        let start = Instant::now();
        let output = self.transform.execute(&input, &mut ctx);
        let wall = start.elapsed().as_secs_f64();
        let accuracy = self.transform.accuracy(&input, &output);
        let virtual_cost = ctx.virtual_cost();
        let time = match self.cost_model {
            CostModel::WallClock => wall,
            CostModel::Virtual => virtual_cost,
        };
        let outcome = TrialOutcome {
            time,
            wall_seconds: wall,
            virtual_cost,
            accuracy,
        };
        let tree = if traced {
            ctx.trace_tree()
        } else {
            TraceNode::default()
        };
        (outcome, tree)
    }

    /// Runs the transform on a caller-provided input (outside tuning).
    pub fn run_on(&self, input: &T::Input, config: &Config, n: u64, seed: u64) -> T::Output {
        let mut ctx = ExecCtx::new(&self.schema, config, n, seed);
        self.transform.execute(input, &mut ctx)
    }
}

impl<T: Transform> TrialRunner for TransformRunner<T>
where
    T: Send + Sync,
{
    fn name(&self) -> &str {
        self.transform.name()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn deterministic(&self) -> bool {
        self.cost_model == CostModel::Virtual
    }

    fn run_trial(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome {
        self.run_inner(config, n, seed, false).0
    }

    fn run_traced(&self, config: &Config, n: u64, seed: u64) -> (TrialOutcome, TraceNode) {
        self.run_inner(config, n, seed, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A toy transform whose accuracy and cost are both controlled by a
    /// single accuracy variable, so tests can verify plumbing exactly.
    struct Toy;

    impl Transform for Toy {
        type Input = u64;
        type Output = u64;

        fn name(&self) -> &str {
            "toy"
        }

        fn schema(&self) -> Schema {
            let mut s = Schema::new("toy");
            s.add_accuracy_variable("level", 0, 10);
            s.add_choice_site("path", 2);
            s
        }

        fn generate_input(&self, n: u64, rng: &mut SmallRng) -> u64 {
            n + (rng.gen::<u64>() % 2)
        }

        fn execute(&self, input: &u64, ctx: &mut ExecCtx<'_>) -> u64 {
            let level = ctx.param("level").unwrap() as u64;
            let path = ctx.choice("path").unwrap() as u64;
            ctx.charge((level * input) as f64 + 1.0);
            ctx.event("ran");
            level * 10 + path
        }

        fn accuracy(&self, _input: &u64, output: &u64) -> f64 {
            (output / 10) as f64 / 10.0
        }
    }

    #[test]
    fn virtual_cost_model_uses_charges() {
        let runner = TransformRunner::new(Toy, CostModel::Virtual);
        let mut config = runner.schema().default_config();
        config
            .set_by_name(runner.schema(), "level", pb_config::Value::Int(3))
            .unwrap();
        let out = runner.run_trial(&config, 100, 1);
        assert!(out.time >= 300.0, "cost scales with level*input");
        assert_eq!(out.time, out.virtual_cost);
        assert!((out.accuracy - 0.3).abs() < 1e-12);
    }

    #[test]
    fn wall_clock_model_reports_elapsed() {
        let runner = TransformRunner::new(Toy, CostModel::WallClock);
        let config = runner.schema().default_config();
        let out = runner.run_trial(&config, 10, 1);
        assert_eq!(out.time, out.wall_seconds);
        assert!(out.wall_seconds >= 0.0);
    }

    #[test]
    fn wall_clock_model_still_records_virtual_cost_and_accuracy() {
        // Wall-clock tuning keeps the deterministic observables: the
        // virtual cost and accuracy of a trial are functions of
        // (config, n, seed) regardless of cost model, so diagnostics
        // can cross-check noisy timings against them.
        let wall = TransformRunner::new(Toy, CostModel::WallClock);
        let virt = TransformRunner::new(Toy, CostModel::Virtual);
        let config = wall.schema().default_config();
        let w = wall.run_trial(&config, 64, 9);
        let v = virt.run_trial(&config, 64, 9);
        assert_eq!(w.virtual_cost, v.virtual_cost);
        assert_eq!(w.accuracy, v.accuracy);
        assert!(w.time.is_finite());
        // And only the virtual model may be memoized.
        assert!(!wall.deterministic());
        assert!(virt.deterministic());
    }

    #[test]
    fn quarantine_sentinel_is_worst_on_every_axis() {
        let q = TrialOutcome::QUARANTINED;
        assert!(q.is_quarantined());
        assert_eq!(q.time, f64::INFINITY);
        assert_eq!(q.wall_seconds, f64::INFINITY);
        assert_eq!(q.virtual_cost, f64::INFINITY);
        assert_eq!(q.accuracy, f64::NEG_INFINITY);
        // A healthy outcome is never mistaken for the sentinel.
        let runner = TransformRunner::new(Toy, CostModel::Virtual);
        let config = runner.schema().default_config();
        assert!(!runner.run_trial(&config, 10, 1).is_quarantined());
    }

    #[test]
    fn same_seed_same_outcome_in_virtual_mode() {
        let runner = TransformRunner::new(Toy, CostModel::Virtual);
        let config = runner.schema().default_config();
        let a = runner.run_trial(&config, 64, 9);
        let b = runner.run_trial(&config, 64, 9);
        assert_eq!(a.virtual_cost, b.virtual_cost);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn traced_run_captures_events() {
        let runner = TransformRunner::new(Toy, CostModel::Virtual);
        let config = runner.schema().default_config();
        let (_, tree) = runner.run_traced(&config, 10, 0);
        assert_eq!(tree.count_points("ran"), 1);
        // Untraced runs return an empty tree.
        let out = runner.run_trial(&config, 10, 0);
        assert!(out.accuracy >= 0.0);
    }
}
