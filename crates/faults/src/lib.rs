//! Seeded deterministic fault and noise injection for autotuner trials.
//!
//! Real deployments measure wall-clock time on shared machines: trials
//! crash, stall, return garbage, and — even when healthy — report
//! noisy costs. The tuner's fault-isolation layer
//! (`pb_tuner::exec::Evaluator`) and robust comparator statistics
//! (`pb_stats::Robustness`) exist to survive exactly that, and this
//! crate is the harness that proves they do: a [`FaultyRunner`] wraps
//! any [`TrialRunner`] and injects faults and noise at *seeded,
//! reproducible* trial coordinates, so chaos tests can assert
//! bit-identical tuning decisions instead of eyeballing flakiness.
//!
//! Design rules:
//!
//! * **Off by default, zero hot-path cost.** A default [`FaultConfig`]
//!   makes [`FaultyRunner::run_trial`] a plain delegation — no lock,
//!   no hash, no clock.
//! * **Seeded and coordinate-keyed.** Whether a trial faults is a pure
//!   function of `(plan seed, config, n, trial seed)` — *not* of
//!   thread interleaving or call order — so sequential and pooled runs
//!   inject the same faults at the same coordinates.
//! * **Bounded per coordinate.** Each faulting coordinate fails its
//!   first [`FaultConfig::faults_per_trial`] attempts and then
//!   succeeds, which is what makes "retries heal everything"
//!   assertable: with `faults_per_trial = 1` and at least one retry,
//!   a virtual-cost tuning run's decisions are bit-identical to the
//!   fault-free run.
//!
//! # Examples
//!
//! ```
//! use pb_faults::{FaultConfig, FaultyRunner};
//! use pb_runtime::TrialRunner;
//! # use pb_config::Schema;
//! # use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
//! # use rand::rngs::SmallRng;
//! # struct Unit;
//! # impl Transform for Unit {
//! #     type Input = ();
//! #     type Output = ();
//! #     fn name(&self) -> &str { "unit" }
//! #     fn schema(&self) -> Schema {
//! #         let mut s = Schema::new("unit");
//! #         s.add_cutoff("c", 1, 8);
//! #         s
//! #     }
//! #     fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
//! #     fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) { ctx.charge(1.0); }
//! #     fn accuracy(&self, _i: &(), _o: &()) -> f64 { 1.0 }
//! # }
//! # let inner = TransformRunner::new(Unit, CostModel::Virtual);
//! let chaos = FaultyRunner::new(
//!     &inner,
//!     FaultConfig {
//!         seed: 7,
//!         panic_rate: 0.25,
//!         ..FaultConfig::default()
//!     },
//! );
//! // ~25% of coordinates panic once, then succeed on retry.
//! let config = chaos.schema().default_config();
//! let healthy = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
//!     chaos.run_trial(&config, 8, 42)
//! }));
//! let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
//!     chaos.run_trial(&config, 8, 42)
//! }));
//! // Faults are bounded per coordinate: a second attempt never
//! // re-panics under the default `faults_per_trial = 1`.
//! assert!(healthy.is_err() || again.is_ok());
//! ```

use pb_config::Config;
use pb_runtime::{TraceNode, TrialOutcome, TrialRunner};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which fault a coordinate injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The trial panics (models a crash in measured code).
    Panic,
    /// The trial reports a non-finite cost (models a corrupted timer
    /// or overflowed accumulator).
    NonFinite,
    /// The trial sleeps [`FaultConfig::stall`] before running (models
    /// a hung measurement; trips the evaluator's soft deadline).
    Stall,
}

/// A forced fault at one exact trial coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedFault {
    /// Input size the trial must match.
    pub n: u64,
    /// Trial seed the trial must match.
    pub seed: u64,
    /// The fault to inject there.
    pub kind: FaultKind,
}

/// The injection plan: rates, noise, and forced coordinates.
///
/// All rates are probabilities in `[0, 1]` evaluated against a seeded
/// hash of the trial coordinate; the default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Fraction of coordinates that panic.
    pub panic_rate: f64,
    /// Fraction of coordinates that report a non-finite cost.
    pub nonfinite_rate: f64,
    /// Fraction of coordinates that stall before running.
    pub stall_rate: f64,
    /// How long a stalling trial sleeps.
    pub stall: Duration,
    /// How many consecutive attempts at a faulting coordinate fail
    /// before it heals (`u32::MAX` = never heals).
    pub faults_per_trial: u32,
    /// Multiplicative cost noise: each trial's cost is scaled by a
    /// seeded uniform factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Fraction of trials whose cost is additionally multiplied by
    /// [`FaultConfig::outlier_factor`] (models a context-switch spike).
    pub outlier_rate: f64,
    /// Cost multiplier for outlier trials.
    pub outlier_factor: f64,
    /// Faults forced at exact `(n, seed)` coordinates, checked before
    /// the probabilistic rates.
    pub forced: Vec<ForcedFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            panic_rate: 0.0,
            nonfinite_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(2),
            faults_per_trial: 1,
            jitter: 0.0,
            outlier_rate: 0.0,
            outlier_factor: 20.0,
            forced: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// Whether this plan injects nothing at all (the fast-path gate:
    /// an off plan never hashes, locks, or sleeps).
    pub fn is_off(&self) -> bool {
        self.panic_rate == 0.0
            && self.nonfinite_rate == 0.0
            && self.stall_rate == 0.0
            && self.jitter == 0.0
            && self.outlier_rate == 0.0
            && self.forced.is_empty()
    }

    /// Whether cost noise is enabled (jitter or outliers). Noise makes
    /// the wrapped runner non-deterministic; faults alone do not,
    /// because they are a pure function of the coordinate and attempt.
    pub fn is_noisy(&self) -> bool {
        self.jitter != 0.0 || self.outlier_rate != 0.0
    }
}

/// Counter snapshot of everything a [`FaultyRunner`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Panics raised.
    pub panics: u64,
    /// Non-finite costs returned.
    pub nonfinite: u64,
    /// Stalls slept.
    pub stalls: u64,
    /// Trials whose cost was jittered or outlier-scaled.
    pub noisy: u64,
}

/// A [`TrialRunner`] decorator that injects the plan's faults and
/// noise, transparently delegating everything else to the wrapped
/// runner.
pub struct FaultyRunner<'r> {
    inner: &'r dyn TrialRunner,
    plan: FaultConfig,
    /// Attempt count per trial coordinate, so bounded faults heal
    /// after `faults_per_trial` attempts regardless of which pool
    /// thread retries them.
    calls: Mutex<HashMap<(u64, u64, u64), u32>>,
    panics: AtomicU64,
    nonfinite: AtomicU64,
    stalls: AtomicU64,
    noisy: AtomicU64,
}

impl<'r> FaultyRunner<'r> {
    /// Wraps `inner` under the given injection plan.
    pub fn new(inner: &'r dyn TrialRunner, plan: FaultConfig) -> Self {
        FaultyRunner {
            inner,
            plan,
            calls: Mutex::new(HashMap::new()),
            panics: AtomicU64::new(0),
            nonfinite: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            noisy: AtomicU64::new(0),
        }
    }

    /// The active injection plan.
    pub fn plan(&self) -> &FaultConfig {
        &self.plan
    }

    /// Everything injected so far.
    pub fn report(&self) -> InjectionReport {
        InjectionReport {
            panics: self.panics.load(Ordering::Relaxed),
            nonfinite: self.nonfinite.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            noisy: self.noisy.load(Ordering::Relaxed),
        }
    }

    /// Records one more attempt at `key` and returns the attempt
    /// number just consumed (0 for the first call).
    fn bump_attempt(&self, key: (u64, u64, u64)) -> u32 {
        let mut calls = self.calls.lock().expect("fault call map poisoned");
        let entry = calls.entry(key).or_insert(0);
        let attempt = *entry;
        *entry = entry.saturating_add(1);
        attempt
    }

    /// The fault this coordinate injects on the given attempt, if any.
    /// Selection ignores the attempt (a coordinate either is chaos-
    /// chosen or is not); the attempt only bounds how long it faults.
    fn fault_for(&self, key: (u64, u64, u64), attempt: u32) -> Option<FaultKind> {
        if attempt >= self.plan.faults_per_trial {
            return None;
        }
        for forced in &self.plan.forced {
            if forced.n == key.1 && forced.seed == key.2 {
                return Some(forced.kind);
            }
        }
        let draw = unit(mix(&[SALT_FAULT, self.plan.seed, key.0, key.1, key.2]));
        let panic_edge = self.plan.panic_rate;
        let nonfinite_edge = panic_edge + self.plan.nonfinite_rate;
        let stall_edge = nonfinite_edge + self.plan.stall_rate;
        if draw < panic_edge {
            Some(FaultKind::Panic)
        } else if draw < nonfinite_edge {
            Some(FaultKind::NonFinite)
        } else if draw < stall_edge {
            Some(FaultKind::Stall)
        } else {
            None
        }
    }

    /// Applies seeded multiplicative noise to a healthy outcome.
    fn apply_noise(&self, key: (u64, u64, u64), attempt: u32, outcome: &mut TrialOutcome) {
        if !self.plan.is_noisy() {
            return;
        }
        let coords = [self.plan.seed, key.0, key.1, key.2, attempt as u64];
        let mut factor = 1.0;
        if self.plan.jitter != 0.0 {
            let draw = unit(mix_salted(SALT_JITTER, &coords));
            factor *= 1.0 + self.plan.jitter * (2.0 * draw - 1.0);
        }
        if self.plan.outlier_rate != 0.0 {
            let draw = unit(mix_salted(SALT_OUTLIER, &coords));
            if draw < self.plan.outlier_rate {
                factor *= self.plan.outlier_factor;
            }
        }
        outcome.time *= factor;
        self.noisy.fetch_add(1, Ordering::Relaxed);
    }
}

impl TrialRunner for FaultyRunner<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &pb_config::Schema {
        self.inner.schema()
    }

    /// Noise breaks replayability (that is the point: it models
    /// wall-clock measurement, which the tuner must re-sample rather
    /// than memoize). Bounded faults alone keep determinism, because
    /// injection is a pure function of the coordinate and attempt.
    fn deterministic(&self) -> bool {
        self.inner.deterministic() && !self.plan.is_noisy()
    }

    fn run_trial(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome {
        if self.plan.is_off() {
            return self.inner.run_trial(config, n, seed);
        }
        let key = (config_key(config), n, seed);
        let attempt = self.bump_attempt(key);
        match self.fault_for(key, attempt) {
            Some(FaultKind::Panic) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("pb_faults: injected panic at n={n} seed={seed} attempt={attempt}");
            }
            Some(FaultKind::NonFinite) => {
                self.nonfinite.fetch_add(1, Ordering::Relaxed);
                let mut outcome = self.inner.run_trial(config, n, seed);
                outcome.time = f64::NAN;
                outcome
            }
            Some(FaultKind::Stall) => {
                self.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.stall);
                self.inner.run_trial(config, n, seed)
            }
            None => {
                let mut outcome = self.inner.run_trial(config, n, seed);
                self.apply_noise(key, attempt, &mut outcome);
                outcome
            }
        }
    }

    /// Traced runs are diagnostic, not decisions; they bypass
    /// injection so cycle-shape reports stay readable under chaos.
    fn run_traced(&self, config: &Config, n: u64, seed: u64) -> (TrialOutcome, TraceNode) {
        self.inner.run_traced(config, n, seed)
    }
}

const SALT_FAULT: u64 = 0x7061_6E69_635F_6B65; // "panic_ke"
const SALT_JITTER: u64 = 0x6A69_7474_6572_5F73; // "jitter_s"
const SALT_OUTLIER: u64 = 0x6F75_746C_6965_7221; // "outlier!"

/// FNV-1a over the configuration's canonical JSON: a stable identity
/// for "same candidate" that needs no dependency on the tuner's own
/// fingerprinting.
fn config_key(config: &Config) -> u64 {
    fnv1a(config.to_json().as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64-style avalanche over a word sequence.
fn mix(words: &[u64]) -> u64 {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        state ^= w.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = state.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    state ^= state >> 31;
    state = state.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    state ^= state >> 33;
    state
}

fn mix_salted(salt: u64, words: &[u64]) -> u64 {
    let mut salted = Vec::with_capacity(words.len() + 1);
    salted.push(salt);
    salted.extend_from_slice(words);
    mix(&salted)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Schema;
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    struct Linear;

    impl Transform for Linear {
        type Input = ();
        type Output = ();
        fn name(&self) -> &str {
            "linear"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("linear");
            s.add_cutoff("c", 1, 64);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
            ctx.charge(ctx.size() as f64);
        }
        fn accuracy(&self, _i: &(), _o: &()) -> f64 {
            1.0
        }
    }

    fn runner() -> TransformRunner<Linear> {
        TransformRunner::new(Linear, CostModel::Virtual)
    }

    #[test]
    fn off_plan_is_a_pure_passthrough() {
        let inner = runner();
        let faulty = FaultyRunner::new(&inner, FaultConfig::default());
        let config = inner.schema().default_config();
        let direct = inner.run_trial(&config, 32, 9);
        let wrapped = faulty.run_trial(&config, 32, 9);
        assert_eq!(direct.time.to_bits(), wrapped.time.to_bits());
        assert_eq!(direct.accuracy.to_bits(), wrapped.accuracy.to_bits());
        assert!(faulty.deterministic(), "off plan keeps determinism");
        assert_eq!(faulty.report(), InjectionReport::default());
        assert!(
            faulty.calls.lock().unwrap().is_empty(),
            "off plan must not even count calls"
        );
    }

    #[test]
    fn forced_panic_heals_after_faults_per_trial_attempts() {
        let inner = runner();
        let faulty = FaultyRunner::new(
            &inner,
            FaultConfig {
                faults_per_trial: 2,
                forced: vec![ForcedFault {
                    n: 16,
                    seed: 5,
                    kind: FaultKind::Panic,
                }],
                ..FaultConfig::default()
            },
        );
        let config = inner.schema().default_config();
        for _ in 0..2 {
            let attempt = catch_unwind(AssertUnwindSafe(|| faulty.run_trial(&config, 16, 5)));
            assert!(attempt.is_err(), "first two attempts must panic");
        }
        let healed = faulty.run_trial(&config, 16, 5);
        assert!(healed.time.is_finite());
        assert_eq!(faulty.report().panics, 2);
        // Other coordinates are untouched.
        assert!(faulty.run_trial(&config, 16, 6).time.is_finite());
    }

    #[test]
    fn nonfinite_injection_corrupts_only_the_cost() {
        let inner = runner();
        let faulty = FaultyRunner::new(
            &inner,
            FaultConfig {
                forced: vec![ForcedFault {
                    n: 8,
                    seed: 1,
                    kind: FaultKind::NonFinite,
                }],
                ..FaultConfig::default()
            },
        );
        let config = inner.schema().default_config();
        let bad = faulty.run_trial(&config, 8, 1);
        assert!(bad.time.is_nan());
        assert_eq!(bad.accuracy, 1.0, "accuracy survives a corrupted timer");
        let healed = faulty.run_trial(&config, 8, 1);
        assert_eq!(healed.time, 8.0);
        assert_eq!(faulty.report().nonfinite, 1);
    }

    #[test]
    fn rates_select_a_seeded_reproducible_subset() {
        let inner = runner();
        let plan = FaultConfig {
            seed: 1234,
            panic_rate: 0.3,
            ..FaultConfig::default()
        };
        let first = FaultyRunner::new(&inner, plan.clone());
        let second = FaultyRunner::new(&inner, plan);
        let config = inner.schema().default_config();
        let mut panicked = 0;
        for seed in 0..200 {
            let a = catch_unwind(AssertUnwindSafe(|| first.run_trial(&config, 32, seed)));
            let b = catch_unwind(AssertUnwindSafe(|| second.run_trial(&config, 32, seed)));
            assert_eq!(
                a.is_err(),
                b.is_err(),
                "same plan must fault the same coordinates"
            );
            panicked += a.is_err() as u32;
        }
        assert!(
            (30..90).contains(&panicked),
            "a 30% rate should hit roughly 60 of 200 coordinates, hit {panicked}"
        );
        // A different seed picks a different subset.
        let other = FaultyRunner::new(
            &inner,
            FaultConfig {
                seed: 99,
                panic_rate: 0.3,
                ..FaultConfig::default()
            },
        );
        let differs = (0..200).any(|seed| {
            let a = catch_unwind(AssertUnwindSafe(|| first.run_trial(&config, 32, seed)));
            let b = catch_unwind(AssertUnwindSafe(|| other.run_trial(&config, 32, seed)));
            a.is_err() != b.is_err()
        });
        assert!(differs, "different plan seeds must differ somewhere");
    }

    #[test]
    fn jitter_makes_the_runner_nondeterministic_but_seeded() {
        let inner = runner();
        let plan = FaultConfig {
            seed: 7,
            jitter: 0.1,
            ..FaultConfig::default()
        };
        let faulty = FaultyRunner::new(&inner, plan.clone());
        assert!(!faulty.deterministic(), "jitter must force re-sampling");
        let config = inner.schema().default_config();
        let clean = inner.run_trial(&config, 64, 3).time;
        let noisy = faulty.run_trial(&config, 64, 3).time;
        assert!(noisy != clean, "jitter should perturb the cost");
        assert!((noisy - clean).abs() <= 0.1 * clean + 1e-9);
        // Attempt-keyed: a re-run of the same coordinate draws fresh
        // noise (models wall-clock re-measurement)…
        let resampled = faulty.run_trial(&config, 64, 3).time;
        assert!(resampled != noisy, "re-sampling must draw fresh noise");
        // …but an identical fresh harness replays the identical
        // sequence (models a reproducible experiment).
        let replay = FaultyRunner::new(&inner, plan);
        assert_eq!(
            replay.run_trial(&config, 64, 3).time.to_bits(),
            noisy.to_bits()
        );
        assert_eq!(
            replay.run_trial(&config, 64, 3).time.to_bits(),
            resampled.to_bits()
        );
        assert_eq!(faulty.report().noisy, 2);
    }

    #[test]
    fn outliers_scale_a_seeded_fraction_of_trials() {
        let inner = runner();
        let faulty = FaultyRunner::new(
            &inner,
            FaultConfig {
                seed: 11,
                outlier_rate: 0.1,
                outlier_factor: 50.0,
                ..FaultConfig::default()
            },
        );
        let config = inner.schema().default_config();
        let clean = inner.run_trial(&config, 16, 0).time;
        let mut spikes = 0;
        for seed in 0..300 {
            let t = faulty.run_trial(&config, 16, seed).time;
            if t > 10.0 * clean {
                spikes += 1;
            } else {
                assert_eq!(t.to_bits(), clean.to_bits(), "non-outliers are untouched");
            }
        }
        assert!(
            (10..70).contains(&spikes),
            "a 10% outlier rate should spike roughly 30 of 300 trials, spiked {spikes}"
        );
    }

    #[test]
    fn stall_injection_delays_but_returns_the_true_outcome() {
        let inner = runner();
        let faulty = FaultyRunner::new(
            &inner,
            FaultConfig {
                stall: Duration::from_millis(1),
                forced: vec![ForcedFault {
                    n: 4,
                    seed: 2,
                    kind: FaultKind::Stall,
                }],
                ..FaultConfig::default()
            },
        );
        let config = inner.schema().default_config();
        let started = std::time::Instant::now();
        let outcome = faulty.run_trial(&config, 4, 2);
        assert!(started.elapsed() >= Duration::from_millis(1));
        assert_eq!(outcome.time, 4.0, "stall corrupts timing, not results");
        assert_eq!(faulty.report().stalls, 1);
    }
}
