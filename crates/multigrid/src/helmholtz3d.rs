//! The 3D variable-coefficient Helmholtz operator (§6.1.3).
//!
//! Discretizes `α·a·φ − β·∇·(b·∇φ) = f` on a vertex-centered grid with
//! zero Dirichlet boundary, coefficients `a`, `b` drawn from
//! `U(0.5, 1)` "to ensure the system is positive-definite" as in the
//! paper. Face coefficients are arithmetic averages of the adjacent
//! point values. The three solver building blocks the tuned benchmark
//! chooses between — Red-Black SOR, recursion to a coarsened problem,
//! and a dense direct solve — all live here.

use crate::grid3d::Grid3d;
use pb_linalg::cholesky::Cholesky;
use pb_linalg::Matrix;
use rand::rngs::SmallRng;

/// The six axis directions used for face averaging.
const DIRS: [(isize, isize, isize); 6] = [
    (-1, 0, 0),
    (1, 0, 0),
    (0, -1, 0),
    (0, 1, 0),
    (0, 0, -1),
    (0, 0, 1),
];

/// One discretized variable-coefficient Helmholtz problem (operator
/// only; the right-hand side travels separately).
#[derive(Debug, Clone, PartialEq)]
pub struct HelmholtzProblem {
    /// Zeroth-order coefficient weight.
    pub alpha: f64,
    /// Diffusion weight.
    pub beta: f64,
    /// Point coefficient field `a`.
    pub a: Grid3d,
    /// Diffusion coefficient field `b`.
    pub b: Grid3d,
    /// Mesh spacing (doubles on each coarsening).
    pub h: f64,
}

impl HelmholtzProblem {
    /// A random problem of size `n` with `a, b ~ U(0.5, 1)` on the unit
    /// cube (`h = 1/(n+1)`), so the diffusion term dominates and the
    /// multigrid hierarchy genuinely matters — as in the paper's
    /// benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random(n: usize, alpha: f64, beta: f64, rng: &mut SmallRng) -> Self {
        HelmholtzProblem {
            alpha,
            beta,
            a: Grid3d::random_uniform(n, 0.5, 1.0, rng),
            b: Grid3d::random_uniform(n, 0.5, 1.0, rng),
            h: 1.0 / (n as f64 + 1.0),
        }
    }

    /// Grid size per dimension.
    pub fn n(&self) -> usize {
        self.a.n()
    }

    /// Face coefficient between `(i,j,k)` and its neighbour in
    /// direction `d` (clamped reads extend the coefficient field past
    /// the boundary).
    #[inline]
    fn face_b(&self, i: usize, j: usize, k: usize, d: (isize, isize, isize)) -> f64 {
        let here = self.b.get(i, j, k);
        let there = self
            .b
            .get_clamped(i as isize + d.0, j as isize + d.1, k as isize + d.2);
        0.5 * (here + there)
    }

    /// Diagonal of the discretized operator at `(i,j,k)`.
    #[inline]
    pub fn diag(&self, i: usize, j: usize, k: usize) -> f64 {
        let inv_h2 = 1.0 / (self.h * self.h);
        let mut d = self.alpha * self.a.get(i, j, k);
        for dir in DIRS {
            d += self.beta * inv_h2 * self.face_b(i, j, k, dir);
        }
        d
    }

    /// Applies the operator: `out = A·φ`.
    ///
    /// # Panics
    ///
    /// Panics if `phi` has a different size.
    pub fn apply(&self, phi: &Grid3d) -> Grid3d {
        let n = self.n();
        assert_eq!(phi.n(), n, "grid sizes must match");
        let inv_h2 = 1.0 / (self.h * self.h);
        let mut out = Grid3d::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let mut v = self.alpha * self.a.get(i, j, k) * phi.get(i, j, k);
                    for dir in DIRS {
                        let bf = self.face_b(i, j, k, dir);
                        let nbr =
                            phi.get_bc(i as isize + dir.0, j as isize + dir.1, k as isize + dir.2);
                        v += self.beta * inv_h2 * bf * (phi.get(i, j, k) - nbr);
                    }
                    out.set(i, j, k, v);
                }
            }
        }
        out
    }

    /// Residual `r = f − A·φ`.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn residual(&self, phi: &Grid3d, f: &Grid3d) -> Grid3d {
        assert_eq!(phi.n(), f.n(), "grid sizes must match");
        let aphi = self.apply(phi);
        let mut r = Grid3d::zeros(self.n());
        for (ri, (fi, ai)) in r
            .as_mut_slice()
            .iter_mut()
            .zip(f.as_slice().iter().zip(aphi.as_slice()))
        {
            *ri = fi - ai;
        }
        r
    }

    /// One Red-Black SOR sweep (red points `(i+j+k)` even first).
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn sor_sweep(&self, phi: &mut Grid3d, f: &Grid3d, omega: f64) {
        let n = self.n();
        assert_eq!(phi.n(), n, "grid sizes must match");
        assert_eq!(f.n(), n, "grid sizes must match");
        let inv_h2 = 1.0 / (self.h * self.h);
        for color in 0..2usize {
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        if (i + j + k) % 2 != color {
                            continue;
                        }
                        let mut offdiag = 0.0;
                        let mut diag = self.alpha * self.a.get(i, j, k);
                        for dir in DIRS {
                            let bf = self.face_b(i, j, k, dir);
                            diag += self.beta * inv_h2 * bf;
                            offdiag += self.beta
                                * inv_h2
                                * bf
                                * phi.get_bc(
                                    i as isize + dir.0,
                                    j as isize + dir.1,
                                    k as isize + dir.2,
                                );
                        }
                        let gs = (f.get(i, j, k) + offdiag) / diag;
                        let old = phi.get(i, j, k);
                        phi.set(i, j, k, old + omega * (gs - old));
                    }
                }
            }
        }
    }

    /// The coarsened problem: size `(n−1)/2`, doubled mesh spacing,
    /// coefficients sampled at co-located fine points (adequate for the
    /// smooth `U(0.5, 1)` fields of the benchmark).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `n` is even.
    pub fn coarsen(&self) -> HelmholtzProblem {
        let n = self.n();
        assert!(n >= 3 && n % 2 == 1, "size {n} cannot be coarsened");
        let m = (n - 1) / 2;
        let sample = |g: &Grid3d| {
            let mut c = Grid3d::zeros(m);
            for i in 0..m {
                for j in 0..m {
                    for k in 0..m {
                        c.set(i, j, k, g.get(2 * i + 1, 2 * j + 1, 2 * k + 1));
                    }
                }
            }
            c
        };
        HelmholtzProblem {
            alpha: self.alpha,
            beta: self.beta,
            a: sample(&self.a),
            b: sample(&self.b),
            h: 2.0 * self.h,
        }
    }

    /// Dense direct solve by Cholesky (the "ideal direct solver" for
    /// small grids; `O(n⁹)` in the per-dimension size, so use only at
    /// the bottom of the recursion).
    ///
    /// # Panics
    ///
    /// Panics if the assembled operator is not SPD, which would
    /// indicate a discretization bug.
    pub fn direct_solve(&self, f: &Grid3d) -> Grid3d {
        let n = self.n();
        assert_eq!(f.n(), n, "grid sizes must match");
        let size = n * n * n;
        // Assemble by applying the operator to unit vectors.
        let mut dense = Matrix::zeros(size, size);
        let mut e = Grid3d::zeros(n);
        for col in 0..size {
            e.as_mut_slice()[col] = 1.0;
            let ae = self.apply(&e);
            for (row, &v) in ae.as_slice().iter().enumerate() {
                dense[(row, col)] = v;
            }
            e.as_mut_slice()[col] = 0.0;
        }
        let x = Cholesky::factor(&dense)
            .expect("the Helmholtz operator is SPD for positive coefficients")
            .solve(f.as_slice());
        let mut out = Grid3d::zeros(n);
        out.as_mut_slice().copy_from_slice(&x);
        out
    }
}

/// 27-point full-weighting restriction of a residual grid.
///
/// # Panics
///
/// Panics if the size cannot be coarsened.
pub fn restrict(fine: &Grid3d) -> Grid3d {
    let n = fine.n();
    assert!(n >= 3 && n % 2 == 1, "size {n} cannot be coarsened");
    let m = (n - 1) / 2;
    let mut coarse = Grid3d::zeros(m);
    for ci in 0..m {
        for cj in 0..m {
            for ck in 0..m {
                let (fi, fj, fk) = (
                    (2 * ci + 1) as isize,
                    (2 * cj + 1) as isize,
                    (2 * ck + 1) as isize,
                );
                let mut acc = 0.0;
                for di in -1isize..=1 {
                    for dj in -1isize..=1 {
                        for dk in -1isize..=1 {
                            let w = (2 - di.abs()) * (2 - dj.abs()) * (2 - dk.abs());
                            acc += w as f64 * fine.get_bc(fi + di, fj + dj, fk + dk);
                        }
                    }
                }
                coarse.set(ci, cj, ck, acc / 64.0);
            }
        }
    }
    coarse
}

/// Trilinear prolongation from an `m`-grid to the `2m + 1` grid.
pub fn prolong(coarse: &Grid3d) -> Grid3d {
    let m = coarse.n();
    let n = 2 * m + 1;
    let mut fine = Grid3d::zeros(n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                // Per-axis: odd fine index aligns with one coarse
                // point; even index interpolates its two neighbours.
                let mut v = 0.0;
                let axes = [i, j, k].map(|x| {
                    if x % 2 == 1 {
                        vec![((x as isize - 1) / 2, 1.0)]
                    } else {
                        vec![(x as isize / 2 - 1, 0.5), (x as isize / 2, 0.5)]
                    }
                });
                for (ci, wi) in &axes[0] {
                    for (cj, wj) in &axes[1] {
                        for (ck, wk) in &axes[2] {
                            v += wi * wj * wk * coarse.get_bc(*ci, *cj, *ck);
                        }
                    }
                }
                fine.set(i, j, k, v);
            }
        }
    }
    fine
}

/// Adds `delta` into `phi` in place.
///
/// # Panics
///
/// Panics if sizes differ.
pub fn add_correction(phi: &mut Grid3d, delta: &Grid3d) {
    assert_eq!(phi.n(), delta.n(), "grid sizes must match");
    for (p, d) in phi.as_mut_slice().iter_mut().zip(delta.as_slice()) {
        *p += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn problem(n: usize, seed: u64) -> HelmholtzProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        HelmholtzProblem::random(n, 1.0, 1.0, &mut rng)
    }

    #[test]
    fn operator_is_symmetric_positive() {
        let p = problem(3, 1);
        let n = 27;
        // Assemble and check symmetry + positive diagonal.
        let mut e = Grid3d::zeros(3);
        let mut dense = Matrix::zeros(n, n);
        for col in 0..n {
            e.as_mut_slice()[col] = 1.0;
            let ae = p.apply(&e);
            for (row, &v) in ae.as_slice().iter().enumerate() {
                dense[(row, col)] = v;
            }
            e.as_mut_slice()[col] = 0.0;
        }
        assert!(dense.is_symmetric(1e-12));
        for i in 0..n {
            assert!(dense[(i, i)] > 0.0);
        }
    }

    #[test]
    fn direct_solve_zeroes_residual() {
        let p = problem(3, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let f = Grid3d::random_uniform(3, -1.0, 1.0, &mut rng);
        let phi = p.direct_solve(&f);
        assert!(p.residual(&phi, &f).max_abs() < 1e-9);
    }

    #[test]
    fn sor_reduces_residual() {
        let p = problem(7, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let f = Grid3d::random_uniform(7, -1.0, 1.0, &mut rng);
        let mut phi = Grid3d::zeros(7);
        let mut last = p.residual(&phi, &f).rms();
        for _ in 0..8 {
            p.sor_sweep(&mut phi, &f, 1.3);
            let r = p.residual(&phi, &f).rms();
            assert!(r < last, "{r} !< {last}");
            last = r;
        }
    }

    #[test]
    fn diag_matches_assembled_operator() {
        let p = problem(3, 6);
        let mut e = Grid3d::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    let idx = e.idx(i, j, k);
                    e.as_mut_slice()[idx] = 1.0;
                    let ae = p.apply(&e);
                    assert!((ae.get(i, j, k) - p.diag(i, j, k)).abs() < 1e-12);
                    e.as_mut_slice()[idx] = 0.0;
                }
            }
        }
    }

    #[test]
    fn coarsen_halves_and_doubles_h() {
        let p = problem(7, 7);
        let c = p.coarsen();
        assert_eq!(c.n(), 3);
        assert_eq!(c.h, 2.0 * p.h);
        assert_eq!(c.alpha, p.alpha);
        // Coefficients stay within the original range.
        assert!(c.a.as_slice().iter().all(|&v| (0.5..1.0).contains(&v)));
    }

    #[test]
    fn transfer_operators_are_adjoint_up_to_scaling() {
        // R = (1/8)·Pᵀ in 3D.
        let mut rng = SmallRng::seed_from_u64(8);
        let u = Grid3d::random_uniform(7, -1.0, 1.0, &mut rng);
        let v = Grid3d::random_uniform(3, -1.0, 1.0, &mut rng);
        let lhs: f64 = restrict(&u)
            .as_slice()
            .iter()
            .zip(v.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f64 = u
            .as_slice()
            .iter()
            .zip(prolong(&v).as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - 0.125 * rhs).abs() < 1e-10);
    }

    #[test]
    fn two_grid_cycle_beats_smoothing_alone() {
        let p = problem(7, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        let f = Grid3d::random_uniform(7, -1.0, 1.0, &mut rng);

        // Pure smoothing.
        let mut phi_s = Grid3d::zeros(7);
        for _ in 0..4 {
            p.sor_sweep(&mut phi_s, &f, 1.2);
        }

        // Two-grid: 2 sweeps, coarse direct correction, 2 sweeps.
        let mut phi = Grid3d::zeros(7);
        p.sor_sweep(&mut phi, &f, 1.2);
        p.sor_sweep(&mut phi, &f, 1.2);
        let r = p.residual(&phi, &f);
        let rc = restrict(&r);
        let coarse = p.coarsen();
        let ec = coarse.direct_solve(&rc);
        let ef = prolong(&ec);
        add_correction(&mut phi, &ef);
        p.sor_sweep(&mut phi, &f, 1.2);
        p.sor_sweep(&mut phi, &f, 1.2);

        let rs = p.residual(&phi_s, &f).rms();
        let rt = p.residual(&phi, &f).rms();
        assert!(
            rt < rs * 0.8,
            "two-grid ({rt}) should beat pure smoothing ({rs})"
        );
    }
}
