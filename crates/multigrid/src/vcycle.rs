//! Reference multigrid V-cycle for the 2D Poisson problem.
//!
//! This fixed-shape cycle validates the substrate (smoother + transfer
//! operators + coarse solve) and provides the baseline the *tunable*
//! cycles in the benchmark crate are compared against. The benchmark
//! version lets the autotuner choose, per recursion level, between
//! recursing, iterating, and solving directly — producing the cycle
//! shapes of Fig. 8.

use crate::grid2d::Grid2d;
use crate::poisson2d;

/// Fixed-shape V-cycle parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcycleOptions {
    /// SOR sweeps before coarse-grid correction.
    pub pre_sweeps: usize,
    /// SOR sweeps after coarse-grid correction.
    pub post_sweeps: usize,
    /// SOR relaxation weight.
    pub omega: f64,
    /// Grid size at or below which the direct solver takes over.
    pub direct_cutoff: usize,
}

impl Default for VcycleOptions {
    fn default() -> Self {
        VcycleOptions {
            pre_sweeps: 2,
            post_sweeps: 2,
            omega: 1.15,
            direct_cutoff: 3,
        }
    }
}

/// One V-cycle on `A·u = b`, updating `u` in place.
///
/// # Panics
///
/// Panics if grid sizes differ or the size is not `2^k − 1`.
pub fn vcycle(u: &mut Grid2d, b: &Grid2d, options: &VcycleOptions) {
    assert_eq!(u.n(), b.n(), "grid sizes must match");
    let n = u.n();
    if n <= options.direct_cutoff {
        *u = poisson2d::direct_solve(b);
        return;
    }
    for _ in 0..options.pre_sweeps {
        poisson2d::sor_sweep(u, b, options.omega);
    }
    let r = poisson2d::residual(u, b);
    // The unscaled stencil absorbs h²: the coarse grid's spacing is 2h,
    // so its right-hand side picks up a factor (2h)²/h² = 4.
    let mut rc = poisson2d::restrict(&r);
    for v in rc.as_mut_slice() {
        *v *= 4.0;
    }
    let mut ec = Grid2d::zeros(rc.n());
    vcycle(&mut ec, &rc, options);
    let ef = poisson2d::prolong(&ec);
    poisson2d::add_correction(u, &ef);
    for _ in 0..options.post_sweeps {
        poisson2d::sor_sweep(u, b, options.omega);
    }
}

/// Solves to a target residual reduction, returning the number of
/// cycles used.
///
/// # Panics
///
/// Panics like [`vcycle`] on malformed grids.
pub fn solve_to_tolerance(
    u: &mut Grid2d,
    b: &Grid2d,
    reduction: f64,
    max_cycles: usize,
    options: &VcycleOptions,
) -> usize {
    let initial = poisson2d::residual(u, b).rms().max(f64::MIN_POSITIVE);
    for cycle in 1..=max_cycles {
        vcycle(u, b, options);
        if poisson2d::residual(u, b).rms() <= reduction * initial {
            return cycle;
        }
    }
    max_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn vcycle_converges_fast() {
        let mut rng = SmallRng::seed_from_u64(9);
        let b = Grid2d::random_uniform(31, -1.0, 1.0, &mut rng);
        let mut u = Grid2d::zeros(31);
        let r0 = poisson2d::residual(&u, &b).rms();
        let options = VcycleOptions::default();
        vcycle(&mut u, &b, &options);
        let r1 = poisson2d::residual(&u, &b).rms();
        assert!(
            r1 < 0.2 * r0,
            "one V-cycle should reduce the residual well: {r1} vs {r0}"
        );
        // Multigrid's hallmark: convergence factor independent of size.
        vcycle(&mut u, &b, &options);
        let r2 = poisson2d::residual(&u, &b).rms();
        assert!(r2 < 0.2 * r1);
    }

    #[test]
    fn solve_to_tolerance_counts_cycles() {
        let mut rng = SmallRng::seed_from_u64(10);
        let b = Grid2d::random_uniform(15, -1.0, 1.0, &mut rng);
        let mut u = Grid2d::zeros(15);
        let cycles = solve_to_tolerance(&mut u, &b, 1e-8, 50, &VcycleOptions::default());
        assert!(cycles < 20, "needed {cycles} cycles");
        assert!(poisson2d::residual(&u, &b).rms() < 1e-8 * b.rms() * 10.0);
    }

    #[test]
    fn tiny_grid_uses_direct_solver() {
        let mut rng = SmallRng::seed_from_u64(11);
        let b = Grid2d::random_uniform(3, -1.0, 1.0, &mut rng);
        let mut u = Grid2d::zeros(3);
        vcycle(&mut u, &b, &VcycleOptions::default());
        assert!(poisson2d::residual(&u, &b).max_abs() < 1e-10);
    }
}
