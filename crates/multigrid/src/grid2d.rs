//! 2D vertex-centered grids of interior points.

use rand::rngs::SmallRng;
use rand::Rng;

/// An `n × n` grid of interior values with an implicit zero Dirichlet
/// boundary. Multigrid coarsening requires `n = 2^k − 1`.
///
/// # Examples
///
/// ```
/// use pb_multigrid::Grid2d;
///
/// let mut g = Grid2d::zeros(7);
/// g.set(3, 3, 1.0);
/// assert_eq!(g.get(3, 3), 1.0);
/// assert!(Grid2d::valid_size(7) && !Grid2d::valid_size(8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2d {
    n: usize,
    data: Vec<f64>,
}

impl Grid2d {
    /// An all-zero grid with `n` interior points per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "grid must be non-empty");
        Grid2d {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Whether `n` is a legal multigrid size (`2^k − 1`).
    pub fn valid_size(n: usize) -> bool {
        n > 0 && (n + 1).is_power_of_two()
    }

    /// The next legal multigrid size at or above `n`.
    pub fn round_up_size(n: usize) -> usize {
        let mut s = 1;
        while s < n {
            s = 2 * s + 1;
        }
        s
    }

    /// A grid with entries drawn uniformly from `[lo, hi)`.
    pub fn random_uniform(n: usize, lo: f64, hi: f64, rng: &mut SmallRng) -> Self {
        let mut g = Grid2d::zeros(n);
        for v in &mut g.data {
            *v = rng.gen_range(lo..hi);
        }
        g
    }

    /// Interior points per dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw values, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at interior coordinates `(i, j)`, 0-based.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets the value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n + j] = value;
    }

    /// Value with the zero boundary applied: out-of-range reads give 0.
    #[inline]
    pub fn get_bc(&self, i: isize, j: isize) -> f64 {
        if i < 0 || j < 0 || i as usize >= self.n || j as usize >= self.n {
            0.0
        } else {
            self.get(i as usize, j as usize)
        }
    }

    /// Root-mean-square of the values (the paper's PDE accuracy metrics
    /// are RMS-error ratios).
    pub fn rms(&self) -> f64 {
        (self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64).sqrt()
    }

    /// Largest absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn size_validation() {
        for n in [1, 3, 7, 15, 31, 63] {
            assert!(Grid2d::valid_size(n), "n={n}");
        }
        for n in [2, 4, 8, 10, 16] {
            assert!(!Grid2d::valid_size(n), "n={n}");
        }
        assert_eq!(Grid2d::round_up_size(1), 1);
        assert_eq!(Grid2d::round_up_size(2), 3);
        assert_eq!(Grid2d::round_up_size(9), 15);
        assert_eq!(Grid2d::round_up_size(15), 15);
    }

    #[test]
    fn boundary_reads_are_zero() {
        let mut g = Grid2d::zeros(3);
        g.set(0, 0, 5.0);
        assert_eq!(g.get_bc(-1, 0), 0.0);
        assert_eq!(g.get_bc(0, 3), 0.0);
        assert_eq!(g.get_bc(0, 0), 5.0);
    }

    #[test]
    fn norms() {
        let mut g = Grid2d::zeros(2);
        g.set(0, 0, 3.0);
        g.set(1, 1, -4.0);
        assert!((g.rms() - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(g.max_abs(), 4.0);
    }

    #[test]
    fn random_fill_within_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Grid2d::random_uniform(7, -2.0, 2.0, &mut rng);
        assert!(g.as_slice().iter().all(|&v| (-2.0..2.0).contains(&v)));
    }
}
