//! The 2D Poisson operator and its multigrid building blocks.
//!
//! Everything works on the scaled 5-point stencil `(4, −1, −1, −1, −1)`
//! with a zero Dirichlet boundary; the right-hand side is assumed
//! pre-multiplied by `h²`, which drops out of the paper's accuracy
//! metric (a ratio of residual RMS values, §6.1.5).

use crate::grid2d::Grid2d;
use pb_linalg::SymmetricBanded;

/// Applies the 5-point stencil: `out = A·u`.
///
/// # Panics
///
/// Panics if the grids have different sizes.
pub fn apply(u: &Grid2d) -> Grid2d {
    let n = u.n();
    let mut out = Grid2d::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let v = 4.0 * u.get(i, j)
                - u.get_bc(i as isize - 1, j as isize)
                - u.get_bc(i as isize + 1, j as isize)
                - u.get_bc(i as isize, j as isize - 1)
                - u.get_bc(i as isize, j as isize + 1);
            out.set(i, j, v);
        }
    }
    out
}

/// Residual `r = b − A·u`.
///
/// # Panics
///
/// Panics if sizes differ.
pub fn residual(u: &Grid2d, b: &Grid2d) -> Grid2d {
    assert_eq!(u.n(), b.n(), "grid sizes must match");
    let au = apply(u);
    let n = u.n();
    let mut r = Grid2d::zeros(n);
    for i in 0..n {
        for j in 0..n {
            r.set(i, j, b.get(i, j) - au.get(i, j));
        }
    }
    r
}

/// One Red-Black SOR sweep with relaxation weight `omega` (updates red
/// points `(i+j) even` first, then black).
///
/// # Panics
///
/// Panics if sizes differ.
pub fn sor_sweep(u: &mut Grid2d, b: &Grid2d, omega: f64) {
    assert_eq!(u.n(), b.n(), "grid sizes must match");
    let n = u.n();
    for color in 0..2usize {
        for i in 0..n {
            for j in 0..n {
                if (i + j) % 2 != color {
                    continue;
                }
                let nb = u.get_bc(i as isize - 1, j as isize)
                    + u.get_bc(i as isize + 1, j as isize)
                    + u.get_bc(i as isize, j as isize - 1)
                    + u.get_bc(i as isize, j as isize + 1);
                let gs = (b.get(i, j) + nb) / 4.0;
                let old = u.get(i, j);
                u.set(i, j, old + omega * (gs - old));
            }
        }
    }
}

/// Full-weighting restriction: an `n`-grid (`n = 2m + 1`) to the
/// `m`-grid, with the standard 1/16·[1 2 1; 2 4 2; 1 2 1] stencil.
///
/// # Panics
///
/// Panics if `n` is not coarsenable (`n < 3` or `n` even).
pub fn restrict(fine: &Grid2d) -> Grid2d {
    let n = fine.n();
    assert!(n >= 3 && n % 2 == 1, "grid of size {n} cannot be coarsened");
    let m = (n - 1) / 2;
    let mut coarse = Grid2d::zeros(m);
    for ci in 0..m {
        for cj in 0..m {
            let fi = (2 * ci + 1) as isize;
            let fj = (2 * cj + 1) as isize;
            let mut acc = 4.0 * fine.get_bc(fi, fj);
            acc += 2.0
                * (fine.get_bc(fi - 1, fj)
                    + fine.get_bc(fi + 1, fj)
                    + fine.get_bc(fi, fj - 1)
                    + fine.get_bc(fi, fj + 1));
            acc += fine.get_bc(fi - 1, fj - 1)
                + fine.get_bc(fi - 1, fj + 1)
                + fine.get_bc(fi + 1, fj - 1)
                + fine.get_bc(fi + 1, fj + 1);
            coarse.set(ci, cj, acc / 16.0);
        }
    }
    coarse
}

/// Bilinear prolongation: an `m`-grid to the `n = 2m + 1` grid.
pub fn prolong(coarse: &Grid2d) -> Grid2d {
    let m = coarse.n();
    let n = 2 * m + 1;
    let mut fine = Grid2d::zeros(n);
    let cv = |i: isize, j: isize| coarse.get_bc(i, j);
    for i in 0..n {
        for j in 0..n {
            // Coarse coordinates: fine point (i, j) sits between coarse
            // points ((i-1)/2, (j-1)/2) and neighbours.
            let v = match (i % 2, j % 2) {
                (1, 1) => cv((i as isize - 1) / 2, (j as isize - 1) / 2),
                (1, 0) => {
                    0.5 * (cv((i as isize - 1) / 2, j as isize / 2 - 1)
                        + cv((i as isize - 1) / 2, j as isize / 2))
                }
                (0, 1) => {
                    0.5 * (cv(i as isize / 2 - 1, (j as isize - 1) / 2)
                        + cv(i as isize / 2, (j as isize - 1) / 2))
                }
                _ => {
                    0.25 * (cv(i as isize / 2 - 1, j as isize / 2 - 1)
                        + cv(i as isize / 2 - 1, j as isize / 2)
                        + cv(i as isize / 2, j as isize / 2 - 1)
                        + cv(i as isize / 2, j as isize / 2))
                }
            };
            fine.set(i, j, v);
        }
    }
    fine
}

/// Adds `delta` into `u` in place (`u += delta`).
///
/// # Panics
///
/// Panics if sizes differ.
pub fn add_correction(u: &mut Grid2d, delta: &Grid2d) {
    assert_eq!(u.n(), delta.n(), "grid sizes must match");
    for (ui, di) in u.as_mut_slice().iter_mut().zip(delta.as_slice()) {
        *ui += di;
    }
}

/// Direct solve `A·u = b` via band Cholesky — the paper's `DPBSV`
/// building block.
///
/// # Panics
///
/// Panics if the (always SPD) stencil factorization fails, which would
/// indicate a bug.
pub fn direct_solve(b: &Grid2d) -> Grid2d {
    let n = b.n();
    let a = SymmetricBanded::poisson_2d(n);
    let x = a
        .solve(b.as_slice())
        .expect("the 5-point Poisson stencil is SPD");
    let mut u = Grid2d::zeros(n);
    u.as_mut_slice().copy_from_slice(&x);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn apply_matches_banded_operator() {
        let mut rng = SmallRng::seed_from_u64(1);
        let u = Grid2d::random_uniform(7, -1.0, 1.0, &mut rng);
        let stencil = apply(&u);
        let banded = SymmetricBanded::poisson_2d(7).matvec(u.as_slice());
        for (a, b) in stencil.as_slice().iter().zip(&banded) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn direct_solve_zeroes_residual() {
        let mut rng = SmallRng::seed_from_u64(2);
        let b = Grid2d::random_uniform(15, -1.0, 1.0, &mut rng);
        let u = direct_solve(&b);
        assert!(residual(&u, &b).max_abs() < 1e-9);
    }

    #[test]
    fn sor_reduces_residual_monotonically() {
        let mut rng = SmallRng::seed_from_u64(3);
        let b = Grid2d::random_uniform(15, -1.0, 1.0, &mut rng);
        let mut u = Grid2d::zeros(15);
        let mut last = residual(&u, &b).rms();
        for _ in 0..10 {
            sor_sweep(&mut u, &b, 1.5);
            let r = residual(&u, &b).rms();
            assert!(r < last, "residual must shrink: {r} !< {last}");
            last = r;
        }
    }

    #[test]
    fn gauss_seidel_is_sor_with_unit_weight() {
        // omega = 1 must still converge (plain Gauss-Seidel).
        let mut rng = SmallRng::seed_from_u64(4);
        let b = Grid2d::random_uniform(7, -1.0, 1.0, &mut rng);
        let mut u = Grid2d::zeros(7);
        let before = residual(&u, &b).rms();
        for _ in 0..50 {
            sor_sweep(&mut u, &b, 1.0);
        }
        assert!(residual(&u, &b).rms() < before * 1e-2);
    }

    #[test]
    fn restriction_and_prolongation_shapes() {
        let fine = Grid2d::zeros(15);
        assert_eq!(restrict(&fine).n(), 7);
        let coarse = Grid2d::zeros(7);
        assert_eq!(prolong(&coarse).n(), 15);
    }

    #[test]
    fn prolong_preserves_constants_in_the_interior() {
        // A constant coarse grid prolongs to the same constant away
        // from the boundary (boundary-adjacent points see the zero BC).
        let mut coarse = Grid2d::zeros(7);
        for v in coarse.as_mut_slice() {
            *v = 1.0;
        }
        let fine = prolong(&coarse);
        for i in 2..13 {
            for j in 2..13 {
                assert!((fine.get(i, j) - 1.0).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn transfer_operators_are_adjoint_up_to_scaling() {
        // Full weighting R = (1/4)·Pᵀ: ⟨R·u, v⟩ = (1/4)·⟨u, P·v⟩.
        let mut rng = SmallRng::seed_from_u64(5);
        let u = Grid2d::random_uniform(15, -1.0, 1.0, &mut rng);
        let v = Grid2d::random_uniform(7, -1.0, 1.0, &mut rng);
        let lhs: f64 = restrict(&u)
            .as_slice()
            .iter()
            .zip(v.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f64 = u
            .as_slice()
            .iter()
            .zip(prolong(&v).as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - 0.25 * rhs).abs() < 1e-10,
            "lhs={lhs} rhs/4={}",
            0.25 * rhs
        );
    }
}
