//! 3D vertex-centered grids of interior points.

use rand::rngs::SmallRng;
use rand::Rng;

/// An `n × n × n` grid of interior values with an implicit zero
/// Dirichlet boundary. Multigrid coarsening requires `n = 2^k − 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3d {
    n: usize,
    data: Vec<f64>,
}

impl Grid3d {
    /// An all-zero grid with `n` interior points per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "grid must be non-empty");
        Grid3d {
            n,
            data: vec![0.0; n * n * n],
        }
    }

    /// A grid filled with `value`.
    pub fn constant(n: usize, value: f64) -> Self {
        let mut g = Grid3d::zeros(n);
        g.data.fill(value);
        g
    }

    /// Whether `n` is a legal multigrid size (`2^k − 1`).
    pub fn valid_size(n: usize) -> bool {
        n > 0 && (n + 1).is_power_of_two()
    }

    /// A grid with entries drawn uniformly from `[lo, hi)`.
    pub fn random_uniform(n: usize, lo: f64, hi: f64, rng: &mut SmallRng) -> Self {
        let mut g = Grid3d::zeros(n);
        for v in &mut g.data {
            *v = rng.gen_range(lo..hi);
        }
        g
    }

    /// Interior points per dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of points (`n³`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has no points (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw values (x-major, then y, then z contiguous).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Linear index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    /// Value at `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Sets the value at `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, value: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = value;
    }

    /// Value with the zero boundary applied.
    #[inline]
    pub fn get_bc(&self, i: isize, j: isize, k: isize) -> f64 {
        let n = self.n as isize;
        if i < 0 || j < 0 || k < 0 || i >= n || j >= n || k >= n {
            0.0
        } else {
            self.get(i as usize, j as usize, k as usize)
        }
    }

    /// Clamped read (for coefficient grids, which extend by nearest
    /// value rather than by zero).
    #[inline]
    pub fn get_clamped(&self, i: isize, j: isize, k: isize) -> f64 {
        let n = self.n as isize;
        let c = |x: isize| x.clamp(0, n - 1) as usize;
        self.get(c(i), c(j), c(k))
    }

    /// Root-mean-square of the values.
    pub fn rms(&self) -> f64 {
        (self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64).sqrt()
    }

    /// Largest absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn indexing_round_trips() {
        let mut g = Grid3d::zeros(5);
        g.set(1, 2, 3, 9.0);
        assert_eq!(g.get(1, 2, 3), 9.0);
        assert_eq!(g.get_bc(1, 2, 3), 9.0);
        assert_eq!(g.get_bc(-1, 2, 3), 0.0);
        assert_eq!(g.get_bc(1, 2, 5), 0.0);
        assert_eq!(g.len(), 125);
    }

    #[test]
    fn clamped_reads_extend_edges() {
        let mut g = Grid3d::zeros(3);
        g.set(0, 1, 1, 4.0);
        assert_eq!(g.get_clamped(-5, 1, 1), 4.0);
        g.set(2, 2, 2, 7.0);
        assert_eq!(g.get_clamped(9, 9, 9), 7.0);
    }

    #[test]
    fn constant_and_random_fill() {
        let c = Grid3d::constant(3, 2.5);
        assert!(c.as_slice().iter().all(|&v| v == 2.5));
        let mut rng = SmallRng::seed_from_u64(1);
        let r = Grid3d::random_uniform(3, 0.5, 1.0, &mut rng);
        assert!(r.as_slice().iter().all(|&v| (0.5..1.0).contains(&v)));
    }

    #[test]
    fn valid_sizes() {
        assert!(Grid3d::valid_size(7));
        assert!(!Grid3d::valid_size(8));
    }
}
