//! 2D/3D multigrid substrate with tunable building blocks.
//!
//! The paper's two PDE benchmarks — the 2D Poisson solver (§6.1.5) and
//! the 3D variable-coefficient Helmholtz solver (§6.1.3) — are built
//! from "one direct, one iterative (Red-Black Successive Over
//! Relaxation), and one recursive (multigrid)" algorithmic building
//! block each. This crate supplies those blocks:
//!
//! * [`grid2d`] / [`grid3d`] — simple vertex-centered grids with
//!   `2^k − 1` interior points per dimension.
//! * [`poisson2d`] — the 5-point Laplacian: operator application,
//!   residuals, Red-Black SOR sweeps, full-weighting restriction,
//!   bilinear prolongation, and a banded-Cholesky direct solve.
//! * [`helmholtz3d`] — the variable-coefficient operator
//!   `α·a·φ − β·∇·(b·∇φ)` with face-averaged coefficients, Red-Black
//!   SOR, 3D transfer operators, coefficient coarsening, and a dense
//!   direct solve for coarse levels.
//! * [`vcycle`] — a reference V-cycle used to validate the machinery
//!   (the *tunable* cycle shapes live in the benchmark crate, where the
//!   autotuner owns the per-level decisions).

pub mod grid2d;
pub mod grid3d;
pub mod helmholtz3d;
pub mod poisson2d;
pub mod vcycle;

pub use grid2d::Grid2d;
pub use grid3d::Grid3d;
pub use helmholtz3d::HelmholtzProblem;
