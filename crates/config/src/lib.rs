//! Choice configuration files, decision trees, and tunable schemas.
//!
//! The PetaBricks compiler and autotuner represent candidate algorithms as
//! *choice configuration files* (§5.2): an assignment of decisions to all
//! available choices. This crate provides that representation:
//!
//! * [`Schema`] — the inventory of tunables extracted from a program by
//!   static analysis (part of the *training information file*, §5.3):
//!   algorithm-choice sites, cutoffs, switches, accuracy variables, and
//!   user-defined parameters.
//! * [`DecisionTree`] — input-size → algorithm decision trees used for
//!   each choice site.
//! * [`Config`] — one candidate algorithm: a value for every tunable,
//!   serializable to/from JSON config files.
//! * [`AccuracyBins`] — the discretized accuracy targets for which the
//!   tuner must produce optimized algorithms (§4.2).
//!
//! # Examples
//!
//! ```
//! use pb_config::{Schema, TunableKind};
//!
//! let mut schema = Schema::new("kmeans");
//! schema.add_choice_site("initial_centroids", 2);
//! schema.add_accuracy_variable("k", 1, 1024);
//! schema.add_accuracy_variable("for_enough_iters", 1, 1_000);
//! let config = schema.default_config();
//! assert_eq!(config.len(), 3);
//! assert!(schema.tunable("k").is_some());
//! # let _ = TunableKind::Switch { num_values: 2 };
//! ```

pub mod bins;
pub mod config;
pub mod schema;
pub mod tree;
pub mod value;

pub use bins::AccuracyBins;
pub use config::{Config, ConfigError};
pub use schema::{Schema, Tunable, TunableId, TunableKind};
pub use tree::DecisionTree;
pub use value::Value;
