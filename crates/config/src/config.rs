//! Choice configuration files (§5.2).
//!
//! A [`Config`] is one candidate algorithm: an assignment of a value to
//! every tunable declared in a [`Schema`]. Configurations are what the
//! genetic tuner mutates, what gets written to disk after training, and
//! what the runtime consults when executing a transform.

use crate::schema::{Schema, TunableId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when validating or querying a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The configuration has a different number of values than the
    /// schema has tunables.
    LengthMismatch {
        /// Values present in the config.
        config: usize,
        /// Tunables declared by the schema.
        schema: usize,
    },
    /// A tunable name was not found in the schema.
    UnknownTunable(String),
    /// A value has the wrong variant or is out of range for its tunable.
    IllegalValue {
        /// The offending tunable's name.
        tunable: String,
        /// Debug rendering of the offending value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LengthMismatch { config, schema } => write!(
                f,
                "configuration has {config} values but the schema declares {schema} tunables"
            ),
            ConfigError::UnknownTunable(name) => {
                write!(f, "unknown tunable {name:?}")
            }
            ConfigError::IllegalValue { tunable, value } => {
                write!(f, "value {value} is illegal for tunable {tunable:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One candidate algorithm: a value for every tunable in a schema.
///
/// # Examples
///
/// ```
/// use pb_config::{Schema, Value};
///
/// let mut schema = Schema::new("sort");
/// schema.add_choice_site("sorter", 3);
/// schema.add_cutoff("insertion_cutoff", 1, 1024);
/// let mut cfg = schema.default_config();
/// cfg.set_by_name(&schema, "insertion_cutoff", Value::Int(64)).unwrap();
/// assert_eq!(cfg.int(&schema, "insertion_cutoff").unwrap(), 64);
/// assert_eq!(cfg.choice(&schema, "sorter", 10_000).unwrap(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    transform: String,
    values: Vec<Value>,
}

impl Config {
    /// Builds a configuration directly from values (callers normally use
    /// [`Schema::default_config`] instead).
    pub fn from_values(transform: String, values: Vec<Value>) -> Self {
        Config { transform, values }
    }

    /// Name of the transform this configuration belongs to.
    pub fn transform(&self) -> &str {
        &self.transform
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in schema (tunable-id) order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns the value for a tunable id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: TunableId) -> &Value {
        &self.values[id.0]
    }

    /// Mutable access to the value for a tunable id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: TunableId) -> &mut Value {
        &mut self.values[id.0]
    }

    /// Replaces the value for a tunable id without validation (the tuner
    /// clamps through the schema before calling this).
    pub fn set(&mut self, id: TunableId, value: Value) {
        self.values[id.0] = value;
    }

    /// Sets a value by tunable name, validating it against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownTunable`] for a bad name and
    /// [`ConfigError::IllegalValue`] if the value is out of range or of
    /// the wrong variant.
    pub fn set_by_name(
        &mut self,
        schema: &Schema,
        name: &str,
        value: Value,
    ) -> Result<(), ConfigError> {
        let (id, tunable) = schema
            .tunable(name)
            .ok_or_else(|| ConfigError::UnknownTunable(name.to_owned()))?;
        if !tunable.accepts(&value) {
            return Err(ConfigError::IllegalValue {
                tunable: name.to_owned(),
                value: format!("{value:?}"),
            });
        }
        self.set(id, value);
        Ok(())
    }

    /// Reads an integer tunable (cutoff, accuracy variable, or user
    /// parameter) by name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or non-integer tunables.
    pub fn int(&self, schema: &Schema, name: &str) -> Result<i64, ConfigError> {
        let (id, _) = schema
            .tunable(name)
            .ok_or_else(|| ConfigError::UnknownTunable(name.to_owned()))?;
        self.get(id)
            .as_int()
            .ok_or_else(|| ConfigError::IllegalValue {
                tunable: name.to_owned(),
                value: format!("{:?}", self.get(id)),
            })
    }

    /// Reads a float tunable by name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or non-float tunables.
    pub fn float(&self, schema: &Schema, name: &str) -> Result<f64, ConfigError> {
        let (id, _) = schema
            .tunable(name)
            .ok_or_else(|| ConfigError::UnknownTunable(name.to_owned()))?;
        self.get(id)
            .as_float()
            .ok_or_else(|| ConfigError::IllegalValue {
                tunable: name.to_owned(),
                value: format!("{:?}", self.get(id)),
            })
    }

    /// Reads a switch tunable by name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or non-switch tunables.
    pub fn switch(&self, schema: &Schema, name: &str) -> Result<usize, ConfigError> {
        let (id, _) = schema
            .tunable(name)
            .ok_or_else(|| ConfigError::UnknownTunable(name.to_owned()))?;
        self.get(id)
            .as_switch()
            .ok_or_else(|| ConfigError::IllegalValue {
                tunable: name.to_owned(),
                value: format!("{:?}", self.get(id)),
            })
    }

    /// Like [`Config::int`] with a pre-resolved [`TunableId`], for hot
    /// paths that cache name resolution (same errors as the by-name
    /// accessor, minus the unknown-name case the id rules out).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::IllegalValue`] for non-integer tunables.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this configuration.
    pub fn int_by_id(&self, schema: &Schema, id: TunableId) -> Result<i64, ConfigError> {
        self.get(id)
            .as_int()
            .ok_or_else(|| ConfigError::IllegalValue {
                tunable: schema.tunable_by_id(id).name().to_owned(),
                value: format!("{:?}", self.get(id)),
            })
    }

    /// Like [`Config::choice`] with a pre-resolved [`TunableId`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::IllegalValue`] for non-choice tunables.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this configuration.
    pub fn choice_by_id(
        &self,
        schema: &Schema,
        id: TunableId,
        n: u64,
    ) -> Result<usize, ConfigError> {
        self.get(id)
            .as_tree()
            .map(|t| t.select(n))
            .ok_or_else(|| ConfigError::IllegalValue {
                tunable: schema.tunable_by_id(id).name().to_owned(),
                value: format!("{:?}", self.get(id)),
            })
    }

    /// Resolves the algorithm index for choice site `name` at input size
    /// `n` by consulting its decision tree.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or non-choice-site tunables.
    pub fn choice(&self, schema: &Schema, name: &str, n: u64) -> Result<usize, ConfigError> {
        let (id, _) = schema
            .tunable(name)
            .ok_or_else(|| ConfigError::UnknownTunable(name.to_owned()))?;
        self.get(id)
            .as_tree()
            .map(|t| t.select(n))
            .ok_or_else(|| ConfigError::IllegalValue {
                tunable: name.to_owned(),
                value: format!("{:?}", self.get(id)),
            })
    }

    /// Validates every value against the schema.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, schema: &Schema) -> Result<(), ConfigError> {
        if self.values.len() != schema.len() {
            return Err(ConfigError::LengthMismatch {
                config: self.values.len(),
                schema: schema.len(),
            });
        }
        for (id, tunable) in schema.iter() {
            let value = self.get(id);
            if !tunable.accepts(value) {
                return Err(ConfigError::IllegalValue {
                    tunable: tunable.name().to_owned(),
                    value: format!("{value:?}"),
                });
            }
        }
        Ok(())
    }

    /// Serializes to a pretty JSON config file body.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("Config serialization cannot fail")
    }

    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.transform)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTree;

    fn schema() -> Schema {
        let mut s = Schema::new("demo");
        s.add_choice_site("algo", 3);
        s.add_cutoff("block", 1, 4096);
        s.add_switch("layout", 2);
        s.add_accuracy_variable("iters", 1, 1000);
        s
    }

    #[test]
    fn typed_getters_work() {
        let s = schema();
        let c = s.default_config();
        assert_eq!(c.int(&s, "block").unwrap(), 1);
        assert_eq!(c.switch(&s, "layout").unwrap(), 0);
        assert_eq!(c.choice(&s, "algo", 123).unwrap(), 0);
        assert_eq!(c.int(&s, "iters").unwrap(), 1);
    }

    #[test]
    fn wrong_kind_getter_errors() {
        let s = schema();
        let c = s.default_config();
        assert!(matches!(
            c.int(&s, "algo"),
            Err(ConfigError::IllegalValue { .. })
        ));
        assert!(matches!(
            c.choice(&s, "block", 1),
            Err(ConfigError::IllegalValue { .. })
        ));
        assert!(matches!(
            c.int(&s, "missing"),
            Err(ConfigError::UnknownTunable(_))
        ));
    }

    #[test]
    fn by_id_getters_match_by_name() {
        let s = schema();
        let c = s.default_config();
        let (block, _) = s.tunable("block").unwrap();
        assert_eq!(c.int_by_id(&s, block).unwrap(), c.int(&s, "block").unwrap());
        let (algo, _) = s.tunable("algo").unwrap();
        assert_eq!(
            c.choice_by_id(&s, algo, 77).unwrap(),
            c.choice(&s, "algo", 77).unwrap()
        );
        // Wrong-kind errors render identically to the by-name path.
        assert_eq!(c.int_by_id(&s, algo), c.int(&s, "algo"));
        assert_eq!(c.choice_by_id(&s, block, 1), c.choice(&s, "block", 1));
    }

    #[test]
    fn set_by_name_validates() {
        let s = schema();
        let mut c = s.default_config();
        c.set_by_name(&s, "block", Value::Int(64)).unwrap();
        assert_eq!(c.int(&s, "block").unwrap(), 64);
        assert!(c.set_by_name(&s, "block", Value::Int(0)).is_err());
        assert!(c.set_by_name(&s, "block", Value::Switch(1)).is_err());
        assert!(c.set_by_name(&s, "missing", Value::Int(1)).is_err());
    }

    #[test]
    fn decision_tree_choice_resolves_by_size() {
        let s = schema();
        let mut c = s.default_config();
        let mut tree = DecisionTree::single(2);
        tree.add_level(100, 1);
        c.set_by_name(&s, "algo", Value::Tree(tree)).unwrap();
        assert_eq!(c.choice(&s, "algo", 10).unwrap(), 1);
        assert_eq!(c.choice(&s, "algo", 100).unwrap(), 2);
    }

    #[test]
    fn validate_catches_violations() {
        let s = schema();
        let mut c = s.default_config();
        assert!(c.validate(&s).is_ok());
        // Bypass validation with raw set, then check validate() notices.
        let (id, _) = s.tunable("iters").unwrap();
        c.set(id, Value::Int(0));
        assert!(matches!(
            c.validate(&s),
            Err(ConfigError::IllegalValue { .. })
        ));
    }

    #[test]
    fn validate_catches_length_mismatch() {
        let s = schema();
        let c = Config::from_values("demo".into(), vec![Value::Int(1)]);
        assert!(matches!(
            c.validate(&s),
            Err(ConfigError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn json_round_trip() {
        let s = schema();
        let mut c = s.default_config();
        c.set_by_name(&s, "block", Value::Int(256)).unwrap();
        let json = c.to_json();
        let back = Config::from_json(&json).unwrap();
        assert_eq!(c, back);
        assert!(back.validate(&s).is_ok());
    }

    #[test]
    fn display_mentions_transform_name() {
        let s = schema();
        let c = s.default_config();
        let shown = c.to_string();
        assert!(shown.starts_with("demo{"));
    }
}
