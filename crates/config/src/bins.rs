//! Accuracy bins: the discretized optimal frontier (§4.2, §5.5.4).
//!
//! "It is not possible to evaluate the entire optimal frontier … Instead,
//! to make this problem tractable, we discretize the space of accuracies
//! by placing each allowable accuracy into a bin." Bins may be specified
//! by the user (`accuracy_bins`) or inferred by the compiler when a
//! transform is called with a specific accuracy.

use serde::{Deserialize, Serialize};

/// A sorted set of accuracy targets the tuner must satisfy.
///
/// Accuracies in this system follow the paper's convention: **larger is
/// more accurate**. (Benchmarks whose natural metric is
/// smaller-is-better, such as bin packing's `bins/OPT` ratio, negate or
/// invert their metric in the accuracy transform.)
///
/// # Examples
///
/// ```
/// use pb_config::AccuracyBins;
///
/// let mut bins = AccuracyBins::new(vec![0.5, 0.2, 0.95]);
/// assert_eq!(bins.targets(), &[0.2, 0.5, 0.95]);
/// bins.add_target(0.5); // duplicate: ignored
/// bins.add_target(0.75);
/// assert_eq!(bins.targets(), &[0.2, 0.5, 0.75, 0.95]);
/// assert_eq!(bins.bin_for(0.6), Some(1)); // meets 0.5 but not 0.75
/// assert_eq!(bins.bin_for(0.1), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyBins {
    targets: Vec<f64>,
}

impl AccuracyBins {
    /// Creates bins from the given targets (sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or contains NaN.
    pub fn new(mut targets: Vec<f64>) -> Self {
        assert!(
            !targets.is_empty(),
            "at least one accuracy target is required"
        );
        assert!(
            targets.iter().all(|t| !t.is_nan()),
            "accuracy targets must not be NaN"
        );
        targets.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        targets.dedup();
        AccuracyBins { targets }
    }

    /// The default range used when the programmer gives no
    /// `accuracy_bins`: targets 0.0 to 1.0 in steps of 0.1 (§3.2: "the
    /// default range of accuracies is 0 to 1.0").
    pub fn default_range() -> Self {
        AccuracyBins::new((0..=10).map(|i| i as f64 / 10.0).collect())
    }

    /// The sorted accuracy targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether there are no bins (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Adds an extra target of interest (e.g. when the compiler sees a
    /// call with a specific accuracy, §4.2). Duplicates are ignored.
    pub fn add_target(&mut self, target: f64) {
        assert!(!target.is_nan(), "accuracy target must not be NaN");
        match self
            .targets
            .binary_search_by(|t| t.partial_cmp(&target).expect("no NaN stored"))
        {
            Ok(_) => {}
            Err(i) => self.targets.insert(i, target),
        }
    }

    /// The index of the most demanding bin that `accuracy` satisfies
    /// (highest target ≤ `accuracy`), or `None` if it satisfies no bin.
    pub fn bin_for(&self, accuracy: f64) -> Option<usize> {
        let mut best = None;
        for (i, &t) in self.targets.iter().enumerate() {
            if accuracy >= t {
                best = Some(i);
            } else {
                break;
            }
        }
        best
    }

    /// The target value of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn target(&self, index: usize) -> f64 {
        self.targets[index]
    }

    /// The index of the least accurate bin whose target is at least
    /// `required` — the bin to *run* when a caller asks for accuracy
    /// `required` at runtime ("we support dynamically looking up the
    /// correct bin that will obtain a requested accuracy", §4.2).
    pub fn bin_meeting(&self, required: f64) -> Option<usize> {
        self.targets.iter().position(|&t| t >= required)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_deduped_on_construction() {
        let bins = AccuracyBins::new(vec![3.0, 1.0, 2.0, 1.0]);
        assert_eq!(bins.targets(), &[1.0, 2.0, 3.0]);
        assert_eq!(bins.len(), 3);
    }

    #[test]
    fn default_range_covers_zero_to_one() {
        let bins = AccuracyBins::default_range();
        assert_eq!(bins.len(), 11);
        assert_eq!(bins.target(0), 0.0);
        assert_eq!(bins.target(10), 1.0);
    }

    #[test]
    fn bin_for_picks_highest_satisfied() {
        let bins = AccuracyBins::new(vec![0.2, 0.5, 0.95]);
        assert_eq!(bins.bin_for(1.0), Some(2));
        assert_eq!(bins.bin_for(0.95), Some(2));
        assert_eq!(bins.bin_for(0.94), Some(1));
        assert_eq!(bins.bin_for(0.2), Some(0));
        assert_eq!(bins.bin_for(0.19), None);
    }

    #[test]
    fn bin_meeting_picks_cheapest_sufficient() {
        let bins = AccuracyBins::new(vec![0.2, 0.5, 0.95]);
        assert_eq!(bins.bin_meeting(0.3), Some(1));
        assert_eq!(bins.bin_meeting(0.5), Some(1));
        assert_eq!(bins.bin_meeting(0.96), None);
        assert_eq!(bins.bin_meeting(0.0), Some(0));
    }

    #[test]
    fn add_target_inserts_in_order() {
        let mut bins = AccuracyBins::new(vec![1.0, 3.0]);
        bins.add_target(2.0);
        assert_eq!(bins.targets(), &[1.0, 2.0, 3.0]);
        bins.add_target(2.0);
        assert_eq!(bins.len(), 3);
    }

    #[test]
    fn negative_targets_supported() {
        // Image compression uses log-scale accuracies that can be
        // negative; bins must not assume [0, 1].
        let bins = AccuracyBins::new(vec![-1.0, 0.0, 2.0]);
        assert_eq!(bins.bin_for(-0.5), Some(0));
        assert_eq!(bins.bin_meeting(-2.0), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one accuracy target")]
    fn empty_targets_rejected() {
        AccuracyBins::new(vec![]);
    }
}
