//! Input-size decision trees for algorithm-choice sites.
//!
//! Each choice site in a PetaBricks program is tuned with a decision tree
//! that maps the current input size to an algorithm (§5.2, §5.4).
//! "Initially decision trees are very simple, set to use just a single
//! algorithm"; mutators later add levels with cutoffs initialized to
//! `3N/4` of the current training size, leaving behaviour for smaller
//! inputs unchanged.

use serde::{Deserialize, Serialize};

/// One interior level of a decision tree: inputs strictly smaller than
/// `cutoff` take `choice` (unless an earlier level with a smaller cutoff
/// claims them first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Level {
    /// Inputs with `n < cutoff` select this level's choice.
    pub cutoff: u64,
    /// Algorithm index chosen below the cutoff.
    pub choice: usize,
}

/// A decision tree mapping input size to an algorithm index.
///
/// Represented as a sorted list of `(cutoff, choice)` levels plus the
/// choice used at and above the largest cutoff. A freshly created tree
/// has no levels and always returns its top-level choice.
///
/// # Examples
///
/// ```
/// use pb_config::DecisionTree;
///
/// let mut tree = DecisionTree::single(0);
/// tree.add_level(100, 1); // use algorithm 1 for n < 100
/// assert_eq!(tree.select(10), 1);
/// assert_eq!(tree.select(100), 0);
/// assert_eq!(tree.select(1_000_000), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecisionTree {
    levels: Vec<Level>,
    top_choice: usize,
}

impl DecisionTree {
    /// A tree that always selects `choice`, regardless of input size.
    pub fn single(choice: usize) -> Self {
        DecisionTree {
            levels: Vec::new(),
            top_choice: choice,
        }
    }

    /// The algorithm used for inputs at or above every cutoff.
    pub fn top_choice(&self) -> usize {
        self.top_choice
    }

    /// Replaces the top-level (largest inputs) choice.
    pub fn set_top_choice(&mut self, choice: usize) {
        self.top_choice = choice;
    }

    /// The interior levels, sorted by ascending cutoff.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of interior levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Selects the algorithm for input size `n`.
    pub fn select(&self, n: u64) -> usize {
        for level in &self.levels {
            if n < level.cutoff {
                return level.choice;
            }
        }
        self.top_choice
    }

    /// Adds a level: inputs below `cutoff` (and above any smaller
    /// existing cutoff) will use `choice`. If a level with the same
    /// cutoff exists, its choice is replaced instead.
    pub fn add_level(&mut self, cutoff: u64, choice: usize) {
        match self.levels.binary_search_by_key(&cutoff, |l| l.cutoff) {
            Ok(i) => self.levels[i].choice = choice,
            Err(i) => self.levels.insert(i, Level { cutoff, choice }),
        }
    }

    /// Removes the level at `index` (0 = smallest cutoff). Returns the
    /// removed level, or `None` if out of range.
    pub fn remove_level(&mut self, index: usize) -> Option<Level> {
        if index < self.levels.len() {
            Some(self.levels.remove(index))
        } else {
            None
        }
    }

    /// Replaces the choice at level `index`; `index == depth()` addresses
    /// the top-level choice. Returns `false` if out of range.
    pub fn set_choice(&mut self, index: usize, choice: usize) -> bool {
        if index < self.levels.len() {
            self.levels[index].choice = choice;
            true
        } else if index == self.levels.len() {
            self.top_choice = choice;
            true
        } else {
            false
        }
    }

    /// Rescales the cutoff at level `index` by `factor` (used by the
    /// log-normal scaling mutators), keeping the level list sorted and
    /// the cutoff at least 1. Returns `false` if out of range.
    pub fn scale_cutoff(&mut self, index: usize, factor: f64) -> bool {
        if index >= self.levels.len() {
            return false;
        }
        let old = self.levels[index].cutoff;
        let scaled = ((old as f64) * factor).round().max(1.0) as u64;
        let choice = self.levels[index].choice;
        self.levels.remove(index);
        self.add_level(scaled, choice);
        true
    }

    /// The set of distinct choices this tree can ever return.
    pub fn reachable_choices(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.levels.iter().map(|l| l.choice).collect();
        out.push(self.top_choice);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks that every choice in the tree is below `num_algorithms`.
    pub fn is_valid_for(&self, num_algorithms: usize) -> bool {
        self.top_choice < num_algorithms && self.levels.iter().all(|l| l.choice < num_algorithms)
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree::single(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tree_ignores_size() {
        let t = DecisionTree::single(2);
        assert_eq!(t.select(0), 2);
        assert_eq!(t.select(u64::MAX), 2);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.reachable_choices(), vec![2]);
    }

    #[test]
    fn levels_partition_the_size_axis() {
        let mut t = DecisionTree::single(0);
        t.add_level(10, 1);
        t.add_level(100, 2);
        assert_eq!(t.select(5), 1);
        assert_eq!(t.select(10), 2);
        assert_eq!(t.select(99), 2);
        assert_eq!(t.select(100), 0);
    }

    #[test]
    fn add_level_keeps_sorted_regardless_of_insert_order() {
        let mut t = DecisionTree::single(0);
        t.add_level(100, 2);
        t.add_level(10, 1);
        let cutoffs: Vec<u64> = t.levels().iter().map(|l| l.cutoff).collect();
        assert_eq!(cutoffs, vec![10, 100]);
    }

    #[test]
    fn duplicate_cutoff_replaces_choice() {
        let mut t = DecisionTree::single(0);
        t.add_level(10, 1);
        t.add_level(10, 3);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.select(5), 3);
    }

    #[test]
    fn remove_level_restores_upper_behaviour() {
        let mut t = DecisionTree::single(0);
        t.add_level(10, 1);
        let removed = t.remove_level(0).unwrap();
        assert_eq!(
            removed,
            Level {
                cutoff: 10,
                choice: 1
            }
        );
        assert_eq!(t.select(5), 0);
        assert!(t.remove_level(0).is_none());
    }

    #[test]
    fn set_choice_addresses_top_level_past_end() {
        let mut t = DecisionTree::single(0);
        t.add_level(10, 1);
        assert!(t.set_choice(0, 5));
        assert!(t.set_choice(1, 6)); // top level
        assert!(!t.set_choice(2, 7));
        assert_eq!(t.select(1), 5);
        assert_eq!(t.select(100), 6);
    }

    #[test]
    fn scale_cutoff_keeps_order_and_min_one() {
        let mut t = DecisionTree::single(0);
        t.add_level(100, 1);
        assert!(t.scale_cutoff(0, 0.0001));
        assert_eq!(t.levels()[0].cutoff, 1);
        assert!(t.scale_cutoff(0, 1000.0));
        assert_eq!(t.levels()[0].cutoff, 1000);
        assert!(!t.scale_cutoff(5, 2.0));
    }

    #[test]
    fn validity_checks_all_choices() {
        let mut t = DecisionTree::single(1);
        t.add_level(10, 3);
        assert!(t.is_valid_for(4));
        assert!(!t.is_valid_for(3));
        assert!(!t.is_valid_for(1));
    }

    #[test]
    fn serde_round_trip() {
        let mut t = DecisionTree::single(0);
        t.add_level(64, 2);
        t.add_level(4096, 1);
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
