//! Values that a single tunable can take.

use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The value assigned to one tunable inside a [`crate::Config`].
///
/// The variant must match the tunable's [`crate::TunableKind`]:
/// integer-like kinds (cutoffs, accuracy variables, user parameters) use
/// [`Value::Int`], switches use [`Value::Switch`], and algorithm-choice
/// sites use [`Value::Tree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An integer-valued tunable (cutoff, accuracy variable, user
    /// parameter).
    Int(i64),
    /// A continuous tunable (e.g. a relaxation weight).
    Float(f64),
    /// A small categorical switch.
    Switch(usize),
    /// A decision tree for an algorithm-choice site.
    Tree(DecisionTree),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the switch payload, if this is a [`Value::Switch`].
    pub fn as_switch(&self) -> Option<usize> {
        match self {
            Value::Switch(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the decision tree, if this is a [`Value::Tree`].
    pub fn as_tree(&self) -> Option<&DecisionTree> {
        match self {
            Value::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// Mutable access to the decision tree, if this is a [`Value::Tree`].
    pub fn as_tree_mut(&mut self) -> Option<&mut DecisionTree> {
        match self {
            Value::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Switch(_) => "switch",
            Value::Tree(_) => "tree",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Switch(v) => write!(f, "#{v}"),
            Value::Tree(t) => {
                write!(f, "tree[")?;
                for l in t.levels() {
                    write!(f, "<{}:{} ", l.cutoff, l.choice)?;
                }
                write!(f, "*:{}]", t.top_choice())
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<DecisionTree> for Value {
    fn from(t: DecisionTree) -> Self {
        Value::Tree(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Switch(1).as_switch(), Some(1));
        let t = Value::Tree(DecisionTree::single(4));
        assert_eq!(t.as_tree().unwrap().top_choice(), 4);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Switch(2).to_string(), "#2");
        let mut tree = DecisionTree::single(0);
        tree.add_level(16, 1);
        assert_eq!(Value::Tree(tree).to_string(), "tree[<16:1 *:0]");
    }

    #[test]
    fn serde_round_trip_all_variants() {
        for v in [
            Value::Int(42),
            Value::Float(0.5),
            Value::Switch(3),
            Value::Tree(DecisionTree::single(1)),
        ] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            assert_eq!(v, back);
        }
    }
}
