//! Tunable inventories extracted by static analysis.
//!
//! The compiler's training-information file describes "all the logical
//! constructs in the configuration file" (§5.3). A [`Schema`] is that
//! description: the ordered list of tunables, each with a kind and legal
//! range, from which the tuner generates its mutator pool fully
//! automatically (§5.4).

use crate::config::Config;
use crate::tree::DecisionTree;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a tunable within its [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TunableId(pub usize);

impl fmt::Display for TunableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The category of a tunable, which determines its value representation
/// and which mutators apply to it (§5.2, §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TunableKind {
    /// An algorithmic choice site, tuned with a [`DecisionTree`] over
    /// input sizes. `num_algorithms` rules can satisfy this site.
    ChoiceSite {
        /// How many alternative algorithms exist at this site.
        num_algorithms: usize,
    },
    /// A size-like cutoff (blocking size, sequential/parallel switch
    /// point). Mutated with log-normal scaling.
    Cutoff {
        /// Smallest legal value.
        min: i64,
        /// Largest legal value.
        max: i64,
    },
    /// A small categorical switch (e.g. storage layout). Mutated with a
    /// discrete uniform draw.
    Switch {
        /// Number of legal values (`0..num_values`).
        num_values: usize,
    },
    /// An `accuracy_variable` (§3.2): an algorithm-specific parameter
    /// that influences accuracy, such as the iteration count of a
    /// `for_enough` loop or the number of clusters `k`.
    AccuracyVariable {
        /// Smallest legal value.
        min: i64,
        /// Largest legal value.
        max: i64,
    },
    /// A continuous parameter (e.g. an over-relaxation weight).
    FloatParam {
        /// Smallest legal value.
        min: f64,
        /// Largest legal value.
        max: f64,
    },
    /// A user-defined integer parameter passed through untouched except
    /// for range clamping.
    UserDefined {
        /// Smallest legal value.
        min: i64,
        /// Largest legal value.
        max: i64,
    },
}

impl TunableKind {
    /// Whether mutations to this tunable can change program accuracy.
    ///
    /// The tuner "conservatively assumes all mutators affect accuracy"
    /// when retesting (§5.4), but *guided mutation* (§5.5.3) hill-climbs
    /// only on tunables for which this returns `true`.
    pub fn affects_accuracy(&self) -> bool {
        matches!(
            self,
            TunableKind::AccuracyVariable { .. } | TunableKind::ChoiceSite { .. }
        )
    }

    /// Whether the tunable holds a size-like magnitude best mutated with
    /// log-normal scaling ("small changes have larger effects on small
    /// values than large values", §5.4).
    pub fn is_log_scaled(&self) -> bool {
        matches!(
            self,
            TunableKind::Cutoff { .. } | TunableKind::AccuracyVariable { .. }
        )
    }
}

/// One tunable: a named decision the autotuner controls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tunable {
    name: String,
    kind: TunableKind,
    default: Value,
}

impl Tunable {
    /// The tunable's name (unique within its schema).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tunable's kind.
    pub fn kind(&self) -> &TunableKind {
        &self.kind
    }

    /// The default value used for fresh configurations.
    pub fn default_value(&self) -> &Value {
        &self.default
    }

    /// Checks that `value` has the right variant and is within range.
    pub fn accepts(&self, value: &Value) -> bool {
        match (&self.kind, value) {
            (TunableKind::ChoiceSite { num_algorithms }, Value::Tree(t)) => {
                t.is_valid_for(*num_algorithms)
            }
            (TunableKind::Cutoff { min, max }, Value::Int(v))
            | (TunableKind::AccuracyVariable { min, max }, Value::Int(v))
            | (TunableKind::UserDefined { min, max }, Value::Int(v)) => v >= min && v <= max,
            (TunableKind::Switch { num_values }, Value::Switch(v)) => v < num_values,
            (TunableKind::FloatParam { min, max }, Value::Float(v)) => {
                v.is_finite() && v >= min && v <= max
            }
            _ => false,
        }
    }

    /// Clamps `value` into this tunable's legal range (variant must
    /// already match; decision-tree values are returned unchanged if
    /// valid).
    pub fn clamp(&self, value: Value) -> Value {
        match (&self.kind, value) {
            (TunableKind::Cutoff { min, max }, Value::Int(v))
            | (TunableKind::AccuracyVariable { min, max }, Value::Int(v))
            | (TunableKind::UserDefined { min, max }, Value::Int(v)) => {
                Value::Int(v.clamp(*min, *max))
            }
            (TunableKind::Switch { num_values }, Value::Switch(v)) => {
                Value::Switch(v.min(num_values.saturating_sub(1)))
            }
            (TunableKind::FloatParam { min, max }, Value::Float(v)) => {
                Value::Float(v.clamp(*min, *max))
            }
            (_, v) => v,
        }
    }
}

/// The full tunable inventory for one transform.
///
/// # Examples
///
/// ```
/// use pb_config::{Schema, TunableKind};
///
/// let mut schema = Schema::new("binpacking");
/// let site = schema.add_choice_site("pack_algorithm", 13);
/// let k = schema.add_user_param("almost_worst_k", 2, 16);
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.tunable_by_id(site).name(), "pack_algorithm");
/// assert!(matches!(
///     schema.tunable_by_id(k).kind(),
///     TunableKind::UserDefined { .. }
/// ));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    tunables: Vec<Tunable>,
    #[serde(skip)]
    by_name: HashMap<String, TunableId>,
}

impl Schema {
    /// Creates an empty schema for the transform `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            tunables: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The transform name this schema belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tunables.
    pub fn len(&self) -> usize {
        self.tunables.len()
    }

    /// Whether the schema has no tunables.
    pub fn is_empty(&self) -> bool {
        self.tunables.is_empty()
    }

    /// Iterates over `(id, tunable)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TunableId, &Tunable)> {
        self.tunables
            .iter()
            .enumerate()
            .map(|(i, t)| (TunableId(i), t))
    }

    /// Looks a tunable up by name.
    pub fn tunable(&self, name: &str) -> Option<(TunableId, &Tunable)> {
        let id = *self.by_name.get(name)?;
        Some((id, &self.tunables[id.0]))
    }

    /// Returns the tunable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tunable_by_id(&self, id: TunableId) -> &Tunable {
        &self.tunables[id.0]
    }

    /// Adds a tunable with an explicit kind and default.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or the default is not legal
    /// for the kind.
    pub fn add(&mut self, name: impl Into<String>, kind: TunableKind, default: Value) -> TunableId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate tunable name {name:?}"
        );
        let tunable = Tunable {
            name: name.clone(),
            kind,
            default,
        };
        assert!(
            tunable.accepts(&tunable.default),
            "default value {:?} is illegal for tunable {name:?} of kind {kind:?}",
            tunable.default
        );
        let id = TunableId(self.tunables.len());
        self.tunables.push(tunable);
        self.by_name.insert(name, id);
        id
    }

    /// Adds an algorithm-choice site with `num_algorithms` rules; the
    /// default decision tree always picks rule 0.
    pub fn add_choice_site(&mut self, name: impl Into<String>, num_algorithms: usize) -> TunableId {
        assert!(
            num_algorithms > 0,
            "a choice site needs at least one algorithm"
        );
        self.add(
            name,
            TunableKind::ChoiceSite { num_algorithms },
            Value::Tree(DecisionTree::single(0)),
        )
    }

    /// Adds a size-like cutoff defaulting to its minimum.
    pub fn add_cutoff(&mut self, name: impl Into<String>, min: i64, max: i64) -> TunableId {
        assert!(min <= max, "cutoff range is empty");
        self.add(name, TunableKind::Cutoff { min, max }, Value::Int(min))
    }

    /// Adds a categorical switch defaulting to value 0.
    pub fn add_switch(&mut self, name: impl Into<String>, num_values: usize) -> TunableId {
        assert!(num_values > 0, "a switch needs at least one value");
        self.add(name, TunableKind::Switch { num_values }, Value::Switch(0))
    }

    /// Adds an `accuracy_variable` defaulting to its minimum.
    pub fn add_accuracy_variable(
        &mut self,
        name: impl Into<String>,
        min: i64,
        max: i64,
    ) -> TunableId {
        self.add_accuracy_variable_with_default(name, min, max, min)
    }

    /// Adds an `accuracy_variable` with an explicit default (useful
    /// when the range minimum — e.g. zero relaxations — produces a
    /// degenerate starting algorithm the mutators would have to climb
    /// out of).
    pub fn add_accuracy_variable_with_default(
        &mut self,
        name: impl Into<String>,
        min: i64,
        max: i64,
        default: i64,
    ) -> TunableId {
        assert!(min <= max, "accuracy variable range is empty");
        assert!((min..=max).contains(&default), "default outside the range");
        self.add(
            name,
            TunableKind::AccuracyVariable { min, max },
            Value::Int(default),
        )
    }

    /// Adds a continuous parameter defaulting to the range midpoint.
    pub fn add_float_param(&mut self, name: impl Into<String>, min: f64, max: f64) -> TunableId {
        assert!(
            min <= max && min.is_finite() && max.is_finite(),
            "bad float range"
        );
        self.add(
            name,
            TunableKind::FloatParam { min, max },
            Value::Float(0.5 * (min + max)),
        )
    }

    /// Adds a user-defined integer parameter defaulting to its minimum.
    pub fn add_user_param(&mut self, name: impl Into<String>, min: i64, max: i64) -> TunableId {
        assert!(min <= max, "user parameter range is empty");
        self.add(name, TunableKind::UserDefined { min, max }, Value::Int(min))
    }

    /// Builds the default configuration (every tunable at its default).
    pub fn default_config(&self) -> Config {
        Config::from_values(
            self.name.clone(),
            self.tunables.iter().map(|t| t.default.clone()).collect(),
        )
    }

    /// Ids of tunables whose kind [`TunableKind::affects_accuracy`],
    /// used by guided mutation (§5.5.3).
    pub fn accuracy_tunables(&self) -> Vec<TunableId> {
        self.iter()
            .filter(|(_, t)| t.kind().affects_accuracy())
            .map(|(id, _)| id)
            .collect()
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .tunables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), TunableId(i)))
            .collect();
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.tunables == other.tunables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        let mut s = Schema::new("demo");
        s.add_choice_site("algo", 3);
        s.add_cutoff("block", 1, 4096);
        s.add_switch("layout", 2);
        s.add_accuracy_variable("iters", 1, 1000);
        s.add_float_param("omega", 0.5, 2.0);
        s.add_user_param("k", 2, 16);
        s
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let s = sample_schema();
        let (id, t) = s.tunable("iters").unwrap();
        assert_eq!(t.name(), "iters");
        assert_eq!(s.tunable_by_id(id).name(), "iters");
        assert!(s.tunable("nonexistent").is_none());
    }

    #[test]
    fn default_config_is_valid() {
        let s = sample_schema();
        let c = s.default_config();
        assert_eq!(c.len(), s.len());
        assert!(c.validate(&s).is_ok());
    }

    #[test]
    fn accuracy_tunables_are_choice_sites_and_accuracy_vars() {
        let s = sample_schema();
        let ids = s.accuracy_tunables();
        let names: Vec<&str> = ids.iter().map(|&id| s.tunable_by_id(id).name()).collect();
        assert_eq!(names, vec!["algo", "iters"]);
    }

    #[test]
    fn accepts_enforces_ranges() {
        let s = sample_schema();
        let (_, block) = s.tunable("block").unwrap();
        assert!(block.accepts(&Value::Int(1)));
        assert!(block.accepts(&Value::Int(4096)));
        assert!(!block.accepts(&Value::Int(0)));
        assert!(!block.accepts(&Value::Int(5000)));
        assert!(!block.accepts(&Value::Switch(1)), "wrong variant rejected");

        let (_, layout) = s.tunable("layout").unwrap();
        assert!(layout.accepts(&Value::Switch(1)));
        assert!(!layout.accepts(&Value::Switch(2)));

        let (_, algo) = s.tunable("algo").unwrap();
        assert!(algo.accepts(&Value::Tree(DecisionTree::single(2))));
        assert!(!algo.accepts(&Value::Tree(DecisionTree::single(3))));
    }

    #[test]
    fn clamp_pulls_values_into_range() {
        let s = sample_schema();
        let (_, block) = s.tunable("block").unwrap();
        assert_eq!(block.clamp(Value::Int(0)), Value::Int(1));
        assert_eq!(block.clamp(Value::Int(10_000)), Value::Int(4096));
        let (_, omega) = s.tunable("omega").unwrap();
        assert_eq!(omega.clamp(Value::Float(9.0)), Value::Float(2.0));
    }

    #[test]
    #[should_panic(expected = "duplicate tunable name")]
    fn duplicate_names_rejected() {
        let mut s = Schema::new("x");
        s.add_switch("a", 2);
        s.add_switch("a", 3);
    }

    #[test]
    fn log_scaled_kinds() {
        assert!(TunableKind::Cutoff { min: 1, max: 2 }.is_log_scaled());
        assert!(TunableKind::AccuracyVariable { min: 1, max: 2 }.is_log_scaled());
        assert!(!TunableKind::Switch { num_values: 2 }.is_log_scaled());
        assert!(!TunableKind::ChoiceSite { num_algorithms: 2 }.is_log_scaled());
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let s = sample_schema();
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(s, back);
        assert!(back.tunable("omega").is_some());
    }
}
