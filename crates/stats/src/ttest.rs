//! Welch's two-sample t-test.
//!
//! Step 1 of the paper's comparison heuristic (§5.5.1) uses "statistical
//! hypothesis testing (a t-test) to estimate the probability
//! P(observed results | C1 = C2)". We implement Welch's unequal-variance
//! variant, which is the appropriate test when two candidate algorithms
//! have different timing variances.

use crate::online::OnlineStats;
use crate::special::student_t_cdf;

/// Result of a two-sample Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic (positive when the first sample mean is larger).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value: probability of observing a difference at least
    /// this extreme if the two populations have equal means.
    pub p_value: f64,
}

impl TTest {
    /// Whether the test rejects the null hypothesis of equal means at the
    /// given significance level (e.g. `0.05`).
    pub fn rejects_equality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Performs Welch's t-test on two pre-accumulated sample summaries.
///
/// Degenerate inputs are handled conservatively:
///
/// * If either sample has fewer than 2 observations, or both variances
///   are zero with equal means, the p-value is `1.0` (no evidence of
///   difference).
/// * If both variances are zero and the means differ, the p-value is
///   `0.0` (the samples are deterministic and unequal).
///
/// # Examples
///
/// ```
/// use pb_stats::{welch_t_test, OnlineStats};
///
/// let fast: OnlineStats = [1.0, 1.1, 0.9, 1.05, 0.95].into_iter().collect();
/// let slow: OnlineStats = [2.0, 2.1, 1.9, 2.05, 1.95].into_iter().collect();
/// let test = welch_t_test(&fast, &slow);
/// assert!(test.rejects_equality(0.05));
/// ```
pub fn welch_t_test(a: &OnlineStats, b: &OnlineStats) -> TTest {
    let na = a.count() as f64;
    let nb = b.count() as f64;
    if a.count() < 2 || b.count() < 2 {
        return TTest {
            t: 0.0,
            df: 1.0,
            p_value: 1.0,
        };
    }
    let va = a.variance();
    let vb = b.variance();
    let sa = va / na;
    let sb = vb / nb;
    let denom = (sa + sb).sqrt();
    if denom == 0.0 {
        // Both samples are deterministic.
        let p = if a.mean() == b.mean() { 1.0 } else { 0.0 };
        return TTest {
            t: if p == 1.0 { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p_value: p,
        };
    }
    let t = (a.mean() - b.mean()) / denom;
    // Welch–Satterthwaite degrees of freedom.
    let df = (sa + sb).powi(2) / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0));
    let df = df.max(1.0);
    let p = 2.0 * student_t_cdf(-t.abs(), df);
    TTest {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(xs: &[f64]) -> OnlineStats {
        xs.iter().copied().collect()
    }

    #[test]
    fn identical_samples_do_not_reject() {
        let a = stats(&[1.0, 2.0, 3.0, 4.0]);
        let test = welch_t_test(&a, &a.clone());
        assert!(!test.rejects_equality(0.05));
        assert!((test.t).abs() < 1e-12);
        assert!(test.p_value > 0.99);
    }

    #[test]
    fn well_separated_samples_reject() {
        let a = stats(&[1.0, 1.1, 0.9, 1.0, 1.05, 0.95]);
        let b = stats(&[5.0, 5.1, 4.9, 5.0, 5.05, 4.95]);
        let test = welch_t_test(&a, &b);
        assert!(test.rejects_equality(0.001));
        assert!(test.t < 0.0, "first mean smaller gives negative t");
    }

    #[test]
    fn known_textbook_value() {
        // Reference values computed independently from the Welch
        // formulas: t = -2.70778, df = 26.9527, p ~ 0.0116.
        let a = stats(&[
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ]);
        let b = stats(&[
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5,
        ]);
        let test = welch_t_test(&a, &b);
        assert!((test.t - (-2.70778)).abs() < 1e-4, "t = {}", test.t);
        assert!((test.df - 26.9527).abs() < 1e-3, "df = {}", test.df);
        assert!((test.p_value - 0.0116).abs() < 5e-4, "p = {}", test.p_value);
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let a = stats(&[1.0]);
        let b = stats(&[100.0, 101.0, 99.0]);
        let test = welch_t_test(&a, &b);
        assert_eq!(test.p_value, 1.0);
    }

    #[test]
    fn deterministic_unequal_samples_reject() {
        let a = stats(&[2.0, 2.0, 2.0]);
        let b = stats(&[3.0, 3.0, 3.0]);
        let test = welch_t_test(&a, &b);
        assert_eq!(test.p_value, 0.0);
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = stats(&[1.0, 2.0, 3.0, 2.5]);
        let b = stats(&[4.0, 5.0, 3.5, 4.5]);
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        assert!((ab.t + ba.t).abs() < 1e-12);
    }
}
