//! Special functions needed by the statistical tests.
//!
//! Implemented from scratch (no external numerics dependency): the error
//! function, the log-gamma function, and the regularized incomplete beta
//! function (via Lentz's continued fraction), which underlies the
//! Student's t CDF used by [`crate::welch_t_test`].

/// Error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26
/// refined with the Numerical Recipes rational Chebyshev fit).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x)`.
///
/// Uses the Numerical Recipes `erfccheb`-style rational approximation,
/// accurate to better than 1e-12 over the real line.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients for erfc (Numerical Recipes, 3rd ed.).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Evaluated with Lentz's modified continued fraction, using the symmetry
/// transformation for fast convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "beta_inc requires positive shape parameters"
    );
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        assert!((erf(0.0)).abs() < 1e-14);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-9);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-9);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-9);
    }

    #[test]
    fn erfc_is_complement() {
        for &x in &[-2.5, -1.0, -0.1, 0.0, 0.3, 1.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..12u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_boundaries() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.7, 0.9, 0.6), (10.0, 3.0, 0.8)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn student_t_cdf_symmetric() {
        for &df in &[1.0, 2.0, 5.0, 30.0] {
            for &t in &[0.5, 1.0, 2.5] {
                let p = student_t_cdf(t, df);
                let q = student_t_cdf(-t, df);
                assert!((p + q - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn student_t_cdf_known_values() {
        // t = 2.0, df = 10 -> CDF ~ 0.96331.
        assert!((student_t_cdf(2.0, 10.0) - 0.963306).abs() < 1e-4);
        // df = 1 is the Cauchy distribution: CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        // Large df approaches the normal distribution.
        let normal = 0.5 * (1.0 + erf(1.96 / std::f64::consts::SQRT_2));
        assert!((student_t_cdf(1.96, 1e6) - normal).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "x in [0, 1]")]
    fn beta_inc_rejects_bad_x() {
        beta_inc(1.0, 1.0, 1.5);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// erf is odd, bounded, and monotone.
        #[test]
        fn erf_shape(x in -6.0f64..6.0, y in -6.0f64..6.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            prop_assert!(erf(x).abs() <= 1.0);
            if x < y {
                prop_assert!(erf(x) <= erf(y) + 1e-15);
            }
        }

        /// Gamma recurrence: ln Γ(x+1) = ln Γ(x) + ln x.
        #[test]
        fn gamma_recurrence(x in 0.1f64..30.0) {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
        }

        /// The regularized incomplete beta is a CDF in x: monotone,
        /// bounded, symmetric under (a,b,x) -> (b,a,1-x).
        #[test]
        fn beta_inc_is_a_cdf(
            a in 0.2f64..20.0,
            b in 0.2f64..20.0,
            x in 0.0f64..1.0,
            y in 0.0f64..1.0,
        ) {
            let fx = beta_inc(a, b, x);
            prop_assert!((0.0..=1.0).contains(&fx));
            if x < y {
                prop_assert!(fx <= beta_inc(a, b, y) + 1e-12);
            }
            let sym = 1.0 - beta_inc(b, a, 1.0 - x);
            prop_assert!((fx - sym).abs() < 1e-9);
        }

        /// Student-t CDF is a proper CDF and symmetric.
        #[test]
        fn student_t_is_a_cdf(t in -20.0f64..20.0, df in 0.5f64..100.0) {
            let p = student_t_cdf(t, df);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((p + student_t_cdf(-t, df) - 1.0).abs() < 1e-10);
        }
    }
}
