//! Adaptive trial-count comparison of two candidates (§5.5.1).
//!
//! "With too few tests, random deviations may cause non-optimal decisions
//! to be made, while with too many tests, autotuning will take an
//! unacceptably long time." The paper's heuristic runs additional trials
//! only while the comparison is still ambiguous:
//!
//! 1. A t-test with p < 0.05 decides the candidates are *different*.
//! 2. If there is ≥95% probability that the mean difference is below 1%,
//!    the candidates are declared the *same*.
//! 3. If both candidates hit the maximum trial budget, declare *same*.
//! 4. Otherwise run one more trial on whichever candidate yields the
//!    highest expected reduction in standard error, and repeat.

use crate::online::OnlineStats;
use crate::robust::{Robustness, SampleStats};
use crate::ttest::welch_t_test;
use std::collections::HashMap;

/// Outcome of comparing two candidates on a single metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOutcome {
    /// The first candidate's metric is statistically lower.
    Less,
    /// The first candidate's metric is statistically higher.
    Greater,
    /// No statistically meaningful difference was established within the
    /// trial budget.
    Same,
}

/// Which side of a comparison the protocol wants more data on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Which {
    /// The first candidate.
    A,
    /// The second candidate.
    B,
}

/// One step of the resumable comparison protocol: either the decision
/// is already determined by the accumulated statistics, or the
/// protocol needs more trials on one side before it can re-decide.
///
/// This is the *decision core* of §5.5.1 with the trial execution
/// factored out, so a scheduler can collect many comparisons' pending
/// draws into one batch (see `pb_tuner`'s tournament pruning) instead
/// of running them one at a time on the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareStep {
    /// The comparison is decided; no further trials are needed.
    Decided(CompareOutcome),
    /// Run `draws` more trial(s) on `which`, fold them into that
    /// side's statistics, and call [`Comparator::decide`] again.
    NeedMore {
        /// The side that should receive the next trial(s).
        which: Which,
        /// How many trials to run before re-deciding (more than one
        /// only while a side is below the minimum trial count).
        draws: u64,
    },
}

impl CompareOutcome {
    /// Flips `Less` and `Greater` (for comparing in the opposite order).
    pub fn reverse(self) -> Self {
        match self {
            CompareOutcome::Less => CompareOutcome::Greater,
            CompareOutcome::Greater => CompareOutcome::Less,
            CompareOutcome::Same => CompareOutcome::Same,
        }
    }
}

/// A source of additional measurements for a candidate: each call to
/// [`SampleSource::draw`] runs one more test and returns the measured
/// value (e.g. execution time in seconds).
pub trait SampleSource {
    /// Runs one more trial and returns the observation.
    fn draw(&mut self) -> f64;
}

impl<F: FnMut() -> f64> SampleSource for F {
    fn draw(&mut self) -> f64 {
        self()
    }
}

/// Tuning knobs for the comparison protocol. The defaults are the
/// "typical values" quoted in the paper: 3–25 trials, α = 0.05, and a
/// same-threshold of a 95% probability of a < 1% difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorConfig {
    /// Minimum number of trials per candidate before any decision.
    pub min_trials: u64,
    /// Maximum number of trials per candidate.
    pub max_trials: u64,
    /// Significance level below which candidates are declared different.
    pub alpha: f64,
    /// Relative difference considered negligible (e.g. `0.01` = 1%).
    pub same_epsilon: f64,
    /// Confidence required to declare the difference negligible.
    pub same_confidence: f64,
    /// How sample-retaining statistics are summarized before testing
    /// (see [`Robustness`]). Only consulted by the sample-aware entry
    /// points ([`Comparator::decide_samples`] and
    /// [`Comparator::decide_pair_samples`]); the plain
    /// [`OnlineStats`]-based paths have no samples to robustify.
    pub robustness: Robustness,
}

impl Default for ComparatorConfig {
    fn default() -> Self {
        ComparatorConfig {
            min_trials: 3,
            max_trials: 25,
            alpha: 0.05,
            same_epsilon: 0.01,
            same_confidence: 0.95,
            robustness: Robustness::Mean,
        }
    }
}

/// Implements the adaptive comparison loop from §5.5.1.
///
/// # Examples
///
/// ```
/// use pb_stats::{Comparator, CompareOutcome, OnlineStats};
///
/// let comparator = Comparator::default();
/// let mut fast = OnlineStats::new();
/// let mut slow = OnlineStats::new();
/// let (mut ta, mut tb) = (0u64, 0u64);
/// let outcome = comparator.compare(
///     &mut fast,
///     &mut || { ta += 1; 1.0 + 0.001 * (ta % 3) as f64 },
///     &mut slow,
///     &mut || { tb += 1; 2.0 + 0.001 * (tb % 5) as f64 },
/// );
/// assert_eq!(outcome, CompareOutcome::Less);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Comparator {
    config: ComparatorConfig,
}

impl Comparator {
    /// Creates a comparator with the given configuration.
    pub fn new(config: ComparatorConfig) -> Self {
        Comparator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ComparatorConfig {
        &self.config
    }

    /// The decision core of §5.5.1: given both candidates' accumulated
    /// statistics, either the comparison is already decided or the
    /// protocol names the side that should run more trials.
    ///
    /// Pure in the statistics — no trials run here — so a scheduler
    /// can evaluate many comparisons' pending draws as one batch and
    /// re-decide after merging the outcomes. [`Comparator::compare`]
    /// is the blocking wrapper that consumes these steps one at a
    /// time, so the two paths request identical draw sequences.
    pub fn decide(&self, a_stats: &OnlineStats, b_stats: &OnlineStats) -> CompareStep {
        self.decide_counts(a_stats.count(), a_stats, b_stats.count(), b_stats)
    }

    /// [`Comparator::decide`] over sample-retaining statistics: each
    /// side's observations are first summarized under the configured
    /// [`Robustness`] policy, then tested. Trial-count bookkeeping
    /// (minimum fill, budget) uses the *raw* sample counts, so a
    /// trimmed summary never tricks the protocol into re-running
    /// trials it already has.
    ///
    /// Under [`Robustness::Mean`] this is bit-identical to
    /// [`Comparator::decide`] on the pass-through accumulators.
    pub fn decide_samples(&self, a_stats: &SampleStats, b_stats: &SampleStats) -> CompareStep {
        match self.config.robustness {
            // No copies on the hot (deterministic-tuning) path.
            Robustness::Mean => self.decide_counts(
                a_stats.count(),
                a_stats.online(),
                b_stats.count(),
                b_stats.online(),
            ),
            policy => {
                let a_summary = a_stats.summary(policy);
                let b_summary = b_stats.summary(policy);
                self.decide_counts(a_stats.count(), &a_summary, b_stats.count(), &b_summary)
            }
        }
    }

    /// The shared decision core: `a_count` / `b_count` are the raw
    /// trial counts (driving minimum-fill and budget bookkeeping),
    /// `a_stats` / `b_stats` the summaries to test — identical to the
    /// raw accumulators on the classic path, robustified on the
    /// sample-aware path.
    fn decide_counts(
        &self,
        a_count: u64,
        a_stats: &OnlineStats,
        b_count: u64,
        b_stats: &OnlineStats,
    ) -> CompareStep {
        let cfg = &self.config;
        // Non-finite summaries decide immediately: a candidate
        // quarantined after repeated trial faults carries a worst-cost
        // sentinel (`+inf`, or NaN once mixed with finite samples) and
        // must lose deterministically — without burning trial draws on
        // a side that can never produce a finite mean. Never fires for
        // healthy measurements (empty stats have mean 0.0).
        let a_bad = !a_stats.mean().is_finite();
        let b_bad = !b_stats.mean().is_finite();
        if a_bad || b_bad {
            return CompareStep::Decided(match (a_bad, b_bad) {
                (true, false) => CompareOutcome::Greater,
                (false, true) => CompareOutcome::Less,
                _ => CompareOutcome::Same,
            });
        }
        // Bring both candidates up to the minimum trial count (A
        // first, matching the blocking loop's fill order).
        if a_count < cfg.min_trials {
            return CompareStep::NeedMore {
                which: Which::A,
                draws: cfg.min_trials - a_count,
            };
        }
        if b_count < cfg.min_trials {
            return CompareStep::NeedMore {
                which: Which::B,
                draws: cfg.min_trials - b_count,
            };
        }

        // Step 1: t-test for difference.
        let test = welch_t_test(a_stats, b_stats);
        if test.rejects_equality(cfg.alpha) {
            return CompareStep::Decided(if a_stats.mean() < b_stats.mean() {
                CompareOutcome::Less
            } else {
                CompareOutcome::Greater
            });
        }

        // Step 2: is the relative difference negligible with high
        // probability? Fit a normal to the percentage difference of
        // the means via error propagation.
        if self.relative_difference_negligible(a_stats, b_stats) {
            return CompareStep::Decided(CompareOutcome::Same);
        }

        // Step 3: both candidates exhausted their budget.
        let a_full = a_count >= cfg.max_trials;
        let b_full = b_count >= cfg.max_trials;
        if a_full && b_full {
            return CompareStep::Decided(CompareOutcome::Same);
        }

        // Step 4: one more trial on the candidate with the highest
        // expected standard-error reduction that still has budget.
        let gain_a = if a_full {
            f64::NEG_INFINITY
        } else {
            se_reduction(a_stats)
        };
        let gain_b = if b_full {
            f64::NEG_INFINITY
        } else {
            se_reduction(b_stats)
        };
        CompareStep::NeedMore {
            which: if gain_a >= gain_b { Which::A } else { Which::B },
            draws: 1,
        }
    }

    /// Compares two candidates, drawing extra samples on demand.
    ///
    /// `a_stats` / `b_stats` accumulate every drawn observation, so
    /// repeated comparisons against other candidates reuse earlier
    /// trials — mirroring the paper, where tests on a candidate are
    /// cached for its lifetime in the population.
    ///
    /// A thin blocking wrapper over [`Comparator::decide`]: it draws
    /// exactly the trials the decision core requests, in the order it
    /// requests them.
    pub fn compare(
        &self,
        a_stats: &mut OnlineStats,
        a_source: &mut dyn SampleSource,
        b_stats: &mut OnlineStats,
        b_source: &mut dyn SampleSource,
    ) -> CompareOutcome {
        loop {
            match self.decide(a_stats, b_stats) {
                CompareStep::Decided(outcome) => return outcome,
                CompareStep::NeedMore {
                    which: Which::A,
                    draws,
                } => {
                    for _ in 0..draws {
                        a_stats.push(a_source.draw());
                    }
                }
                CompareStep::NeedMore {
                    which: Which::B,
                    draws,
                } => {
                    for _ in 0..draws {
                        b_stats.push(b_source.draw());
                    }
                }
            }
        }
    }

    /// Step 2 of the heuristic: P(|relative difference| < ε) ≥ confidence.
    fn relative_difference_negligible(&self, a: &OnlineStats, b: &OnlineStats) -> bool {
        let cfg = &self.config;
        let scale = 0.5 * (a.mean().abs() + b.mean().abs());
        if scale == 0.0 {
            // Both means are exactly zero: identical.
            return true;
        }
        let diff = (a.mean() - b.mean()) / scale;
        // Std of the difference of the means via independent error
        // propagation, expressed relative to the common scale.
        let se = (a.std_err().powi(2) + b.std_err().powi(2)).sqrt() / scale;
        if se == 0.0 {
            return diff.abs() < cfg.same_epsilon;
        }
        let dist = crate::normal::Normal::new(diff, se);
        let p_within = dist.cdf(cfg.same_epsilon) - dist.cdf(-cfg.same_epsilon);
        p_within >= cfg.same_confidence
    }
}

/// A session-scoped memo of decided pair verdicts, keyed by the
/// *unordered* pair of caller-supplied identities (e.g. candidate
/// ids): the fingerprint of a comparison is `(min(a, b), max(a, b))`,
/// and a verdict recorded for `(a, b)` answers the reversed query
/// `(b, a)` with the outcome [reversed](CompareOutcome::reverse).
///
/// This is the pair-identity hook of the decision core: once
/// [`Comparator::decide_pair`] has decided a pair, every later query
/// in the same session — a re-sort touching the same two candidates, a
/// tournament bracket replaying an earlier head-to-head — returns the
/// recorded verdict without consuming trials, even if the candidates'
/// statistics have since accumulated more observations.
///
/// The memo is deliberately session-scoped (one pruning call, one
/// merge phase): across sessions candidates' statistics evolve enough
/// that re-deciding is the honest choice.
#[derive(Debug, Default)]
pub struct PairMemo {
    verdicts: HashMap<(u64, u64), CompareOutcome>,
    queries: u64,
    hits: u64,
}

impl PairMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        PairMemo::default()
    }

    /// Number of distinct decided pairs recorded.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Whether no verdict has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Total verdict lookups (each [`Comparator::decide_pair`] call).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Lookups answered from a recorded verdict.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// The recorded verdict for `(a, b)`, if any, oriented for that
    /// query order. Counts the query and (on success) the hit.
    pub fn lookup(&mut self, a: u64, b: u64) -> Option<CompareOutcome> {
        self.queries += 1;
        let outcome = if a <= b {
            self.verdicts.get(&(a, b)).copied()
        } else {
            self.verdicts
                .get(&(b, a))
                .copied()
                .map(CompareOutcome::reverse)
        };
        if outcome.is_some() {
            self.hits += 1;
        }
        outcome
    }

    /// Records the verdict of comparing `a` to `b` (in that order).
    pub fn record(&mut self, a: u64, b: u64, outcome: CompareOutcome) {
        if a <= b {
            self.verdicts.insert((a, b), outcome);
        } else {
            self.verdicts.insert((b, a), outcome.reverse());
        }
    }
}

impl Comparator {
    /// [`Comparator::decide`] with pair-identity memoization: a pair
    /// already decided in `memo` returns its recorded verdict without
    /// touching the statistics; a fresh decision that reaches
    /// [`CompareStep::Decided`] is recorded before being returned.
    ///
    /// `a_id` / `b_id` are caller-chosen stable identities for the two
    /// sides (the tuner uses candidate ids). The memo key is
    /// unordered, so `decide_pair(m, x, sx, y, sy)` and the reversed
    /// `decide_pair(m, y, sy, x, sx)` share one verdict.
    pub fn decide_pair(
        &self,
        memo: &mut PairMemo,
        a_id: u64,
        a_stats: &OnlineStats,
        b_id: u64,
        b_stats: &OnlineStats,
    ) -> CompareStep {
        if let Some(outcome) = memo.lookup(a_id, b_id) {
            return CompareStep::Decided(outcome);
        }
        let step = self.decide(a_stats, b_stats);
        if let CompareStep::Decided(outcome) = step {
            memo.record(a_id, b_id, outcome);
        }
        step
    }

    /// [`Comparator::decide_pair`] over sample-retaining statistics
    /// (see [`Comparator::decide_samples`]): the tuner's comparison
    /// arena routes every contest through here so the configured
    /// [`Robustness`] policy governs all tuning decisions.
    pub fn decide_pair_samples(
        &self,
        memo: &mut PairMemo,
        a_id: u64,
        a_stats: &SampleStats,
        b_id: u64,
        b_stats: &SampleStats,
    ) -> CompareStep {
        if let Some(outcome) = memo.lookup(a_id, b_id) {
            return CompareStep::Decided(outcome);
        }
        let step = self.decide_samples(a_stats, b_stats);
        if let CompareStep::Decided(outcome) = step {
            memo.record(a_id, b_id, outcome);
        }
        step
    }
}

/// Expected reduction in standard error from one more sample:
/// `s * (1/sqrt(n) - 1/sqrt(n+1))`.
fn se_reduction(stats: &OnlineStats) -> f64 {
    let n = stats.count() as f64;
    if n == 0.0 {
        return f64::INFINITY;
    }
    stats.std_dev() * (1.0 / n.sqrt() - 1.0 / (n + 1.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random stream for tests.
    struct Lcg(u64);

    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) as f64) / (u32::MAX as f64 * 2.0)
        }
    }

    fn run_compare(
        comparator: &Comparator,
        mut gen_a: impl FnMut() -> f64,
        mut gen_b: impl FnMut() -> f64,
    ) -> (CompareOutcome, u64, u64) {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let out = comparator.compare(&mut a, &mut gen_a, &mut b, &mut gen_b);
        (out, a.count(), b.count())
    }

    #[test]
    fn clearly_different_candidates_need_few_trials() {
        let comparator = Comparator::default();
        let mut rng = Lcg(1);
        let mut rng2 = Lcg(2);
        let (out, na, nb) = run_compare(
            &comparator,
            move || 1.0 + 0.01 * rng.next_f64(),
            move || 10.0 + 0.01 * rng2.next_f64(),
        );
        assert_eq!(out, CompareOutcome::Less);
        // "larger differences can be verified with fewer tests".
        assert!(na <= 5 && nb <= 5, "na={na} nb={nb}");
    }

    #[test]
    fn identical_candidates_declared_same() {
        let comparator = Comparator::default();
        let mut rng = Lcg(3);
        let mut rng2 = Lcg(4);
        let (out, _, _) = run_compare(
            &comparator,
            move || 5.0 + 0.001 * rng.next_f64(),
            move || 5.0 + 0.001 * rng2.next_f64(),
        );
        assert_eq!(out, CompareOutcome::Same);
    }

    #[test]
    fn budget_is_respected() {
        // Two overlapping noisy candidates close enough that the test
        // cannot separate them: the comparator must stop at max_trials.
        let comparator = Comparator::new(ComparatorConfig {
            max_trials: 10,
            ..ComparatorConfig::default()
        });
        let mut rng = Lcg(5);
        let mut rng2 = Lcg(6);
        let (out, na, nb) = run_compare(
            &comparator,
            move || 5.0 + rng.next_f64(),
            move || 5.05 + rng2.next_f64(),
        );
        assert!(na <= 10 && nb <= 10);
        // Either conclusion is statistically defensible here; what
        // matters is termination within budget.
        let _ = out;
    }

    #[test]
    fn greater_is_reported_for_slower_first_candidate() {
        let comparator = Comparator::default();
        let (out, _, _) = run_compare(&comparator, || 10.0, || 1.0);
        assert_eq!(out, CompareOutcome::Greater);
    }

    #[test]
    fn reverse_flips_order() {
        assert_eq!(CompareOutcome::Less.reverse(), CompareOutcome::Greater);
        assert_eq!(CompareOutcome::Greater.reverse(), CompareOutcome::Less);
        assert_eq!(CompareOutcome::Same.reverse(), CompareOutcome::Same);
    }

    #[test]
    fn deterministic_equal_sources_same() {
        let comparator = Comparator::default();
        let (out, na, nb) = run_compare(&comparator, || 2.0, || 2.0);
        assert_eq!(out, CompareOutcome::Same);
        assert_eq!(na, 3);
        assert_eq!(nb, 3);
    }

    /// Drives `decide` by hand the way a batch scheduler would and
    /// checks it reproduces `compare` exactly: same outcome, same
    /// number of draws on each side.
    #[test]
    fn decide_steps_replay_compare_exactly() {
        for (seed_a, seed_b, offset) in [(1u64, 2u64, 9.0), (3, 4, 0.0), (5, 6, 0.05)] {
            let comparator = Comparator::new(ComparatorConfig {
                max_trials: 10,
                ..ComparatorConfig::default()
            });
            let mut rng_a = Lcg(seed_a);
            let mut rng_b = Lcg(seed_b);
            let mut gen_a = move || 1.0 + rng_a.next_f64();
            let mut gen_b = move || 1.0 + offset + rng_b.next_f64();
            let (blocking, na, nb) = run_compare(&comparator, &mut gen_a, &mut gen_b);

            // Replay: identical sources, but stepped via `decide`.
            let mut rng_a = Lcg(seed_a);
            let mut rng_b = Lcg(seed_b);
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            let stepped = loop {
                match comparator.decide(&a, &b) {
                    CompareStep::Decided(outcome) => break outcome,
                    CompareStep::NeedMore {
                        which: Which::A,
                        draws,
                    } => (0..draws).for_each(|_| a.push(1.0 + rng_a.next_f64())),
                    CompareStep::NeedMore {
                        which: Which::B,
                        draws,
                    } => (0..draws).for_each(|_| b.push(1.0 + offset + rng_b.next_f64())),
                }
            };
            assert_eq!(stepped, blocking);
            assert_eq!(a.count(), na);
            assert_eq!(b.count(), nb);
        }
    }

    #[test]
    fn decide_requests_min_trials_in_bulk() {
        let comparator = Comparator::default();
        let empty = OnlineStats::new();
        assert_eq!(
            comparator.decide(&empty, &empty),
            CompareStep::NeedMore {
                which: Which::A,
                draws: comparator.config().min_trials,
            }
        );
        let full: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(
            comparator.decide(&full, &empty),
            CompareStep::NeedMore {
                which: Which::B,
                draws: comparator.config().min_trials,
            }
        );
    }

    #[test]
    fn pair_memo_reverses_orientation_and_counts() {
        let comparator = Comparator::default();
        let mut memo = PairMemo::new();
        let fast: OnlineStats = [1.0, 1.0, 1.0].into_iter().collect();
        let slow: OnlineStats = [9.0, 9.0, 9.0].into_iter().collect();
        // First decision is fresh (one query, no hit) and is recorded.
        assert_eq!(
            comparator.decide_pair(&mut memo, 7, &fast, 3, &slow),
            CompareStep::Decided(CompareOutcome::Less)
        );
        assert_eq!((memo.queries(), memo.hits(), memo.len()), (1, 0, 1));
        // The reversed query answers from the memo, reversed.
        assert_eq!(
            comparator.decide_pair(&mut memo, 3, &slow, 7, &fast),
            CompareStep::Decided(CompareOutcome::Greater)
        );
        assert_eq!((memo.queries(), memo.hits(), memo.len()), (2, 1, 1));
        // A memoized verdict wins even over changed statistics.
        let empty = OnlineStats::new();
        assert_eq!(
            comparator.decide_pair(&mut memo, 7, &empty, 3, &empty),
            CompareStep::Decided(CompareOutcome::Less)
        );
        assert_eq!(memo.hits(), 2);
    }

    #[test]
    fn pair_memo_does_not_record_undecided_steps() {
        let comparator = Comparator::default();
        let mut memo = PairMemo::new();
        let empty = OnlineStats::new();
        assert!(matches!(
            comparator.decide_pair(&mut memo, 1, &empty, 2, &empty),
            CompareStep::NeedMore { .. }
        ));
        assert!(memo.is_empty());
        assert_eq!((memo.queries(), memo.hits()), (1, 0));
    }

    #[test]
    fn non_finite_summaries_lose_immediately() {
        let comparator = Comparator::default();
        let healthy: OnlineStats = [1.0, 1.0, 1.0].into_iter().collect();
        let mut poisoned = OnlineStats::new();
        poisoned.push(f64::INFINITY);
        // Even below min_trials, the quarantined side loses without
        // requesting a single draw: its summary can never become
        // finite, so extra trials would be wasted.
        assert_eq!(
            comparator.decide(&poisoned, &healthy),
            CompareStep::Decided(CompareOutcome::Greater)
        );
        assert_eq!(
            comparator.decide(&healthy, &poisoned),
            CompareStep::Decided(CompareOutcome::Less)
        );
        assert_eq!(
            comparator.decide(&poisoned, &poisoned),
            CompareStep::Decided(CompareOutcome::Same)
        );
        // Mixing finite samples in degrades the mean to NaN — still
        // non-finite, still an immediate loss.
        poisoned.push(1.0);
        assert!(poisoned.mean().is_nan());
        assert_eq!(
            comparator.decide(&poisoned, &healthy),
            CompareStep::Decided(CompareOutcome::Greater)
        );
    }

    #[test]
    fn decide_samples_under_mean_policy_matches_decide_bitwise() {
        let comparator = Comparator::default();
        let data_a = [1.0, 3.0, 2.0, 5.0];
        let data_b = [4.0, 4.5];
        let sa: SampleStats = data_a.into_iter().collect();
        let sb: SampleStats = data_b.into_iter().collect();
        let oa: OnlineStats = data_a.into_iter().collect();
        let ob: OnlineStats = data_b.into_iter().collect();
        assert_eq!(
            comparator.decide_samples(&sa, &sb),
            comparator.decide(&oa, &ob)
        );
    }

    #[test]
    fn winsorized_policy_recovers_verdict_flipped_by_outliers() {
        // Candidate A is truly faster (1.0 vs 2.0), but one of its ten
        // trials caught a 40x measurement outlier; B is steady. Under
        // the mean policy the outlier drags A's mean above B's *and*
        // inflates its variance enough to drown the t-test, so the
        // protocol exhausts the budget undecided — selection cannot
        // prefer the genuinely faster candidate. Winsorizing clamps
        // the outlier and recovers the true verdict from the same
        // observations.
        let base = ComparatorConfig {
            min_trials: 3,
            max_trials: 10,
            ..ComparatorConfig::default()
        };
        let mean_cmp = Comparator::new(base);
        let robust_cmp = Comparator::new(ComparatorConfig {
            robustness: Robustness::Winsorized { fraction: 0.1 },
            ..base
        });
        let a: SampleStats = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 40.0]
            .into_iter()
            .collect();
        let b: SampleStats = [2.0, 2.05, 1.95, 2.0, 2.05, 1.95, 2.0, 2.05, 1.95, 2.0]
            .into_iter()
            .collect();
        assert!(a.mean() > b.mean(), "the outlier must flip the raw means");
        assert_eq!(
            mean_cmp.decide_samples(&a, &b),
            CompareStep::Decided(CompareOutcome::Same),
            "mean policy cannot separate the candidates"
        );
        assert_eq!(
            robust_cmp.decide_samples(&a, &b),
            CompareStep::Decided(CompareOutcome::Less),
            "winsorized policy recovers the true ordering"
        );
    }

    #[test]
    fn higher_variance_candidate_gets_more_trials() {
        let comparator = Comparator::new(ComparatorConfig {
            max_trials: 40,
            ..ComparatorConfig::default()
        });
        let mut rng = Lcg(7);
        let mut rng2 = Lcg(8);
        let (_, na, nb) = run_compare(
            &comparator,
            move || 5.0 + 0.01 * rng.next_f64(),
            move || 5.0 + 4.0 * rng2.next_f64(),
        );
        assert!(
            nb >= na,
            "noisy candidate should be sampled at least as much: na={na} nb={nb}"
        );
    }
}
