//! Total orderings over `f64` metrics.
//!
//! Candidate selection (`best_accuracy_index`, `fastest_meeting`,
//! rough sorts) must never let a NaN statistic shadow real
//! measurements: `partial_cmp(..).unwrap_or(Equal)` is not a total
//! order, and under `max_by`/`min_by` a NaN can win simply because
//! every comparison against it reports `Equal`. These helpers build on
//! [`f64::total_cmp`] with an explicit NaN rule so selection is total
//! and NaN always loses.

use std::cmp::Ordering;

/// Ascending total order with every NaN sorting **after** every
/// number (use with `min_by`/ascending sorts: NaN never wins a
/// minimum).
///
/// Non-NaN values follow [`f64::total_cmp`], so `-0.0 < 0.0` and
/// infinities order naturally.
pub fn total_cmp_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Ascending total order with every NaN sorting **before** every
/// number (use with `max_by`: NaN never wins a maximum).
pub fn total_cmp_nan_first(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_last_sorts_nan_after_everything() {
        let mut v = [f64::NAN, 1.0, f64::INFINITY, -1.0, f64::NEG_INFINITY];
        v.sort_by(|a, b| total_cmp_nan_last(*a, *b));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(v[3], f64::INFINITY);
        assert!(v[4].is_nan());
    }

    #[test]
    fn nan_never_wins_min_or_max() {
        let v = [f64::NAN, 3.0, 1.0, f64::NAN, 2.0];
        let min = v
            .iter()
            .copied()
            .min_by(|a, b| total_cmp_nan_last(*a, *b))
            .unwrap();
        assert_eq!(min, 1.0);
        let max = v
            .iter()
            .copied()
            .max_by(|a, b| total_cmp_nan_first(*a, *b))
            .unwrap();
        assert_eq!(max, 3.0);
    }

    #[test]
    fn all_nan_is_still_total() {
        assert_eq!(total_cmp_nan_last(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(total_cmp_nan_first(f64::NAN, f64::NAN), Ordering::Equal);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        assert_eq!(total_cmp_nan_last(-0.0, 0.0), Ordering::Less);
    }
}
