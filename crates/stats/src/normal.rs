//! Fitted normal distributions with confidence bounds.
//!
//! The autotuner represents both timing and accuracy observations as
//! normal distributions fit by least squares (§5.5.1), which for a normal
//! model coincides with the sample mean and variance. When a programmer
//! supplies hand-proven fixed accuracies, the fit degenerates to a point
//! mass ([`Normal::point`]).

use crate::online::OnlineStats;
use crate::special::erf;

/// A normal distribution, typically fit to observed timings or accuracies.
///
/// # Examples
///
/// ```
/// use pb_stats::Normal;
///
/// let n = Normal::fit(&[9.8, 10.1, 10.0, 9.9, 10.2]);
/// assert!((n.mean() - 10.0).abs() < 0.01);
/// // 95% lower confidence bound on the mean is slightly below the mean.
/// assert!(n.lower_confidence_bound(0.95) < n.mean());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    /// Number of samples the fit was computed from (0 for analytic point
    /// distributions).
    samples: u64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is NaN.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            !mean.is_nan() && !std_dev.is_nan(),
            "parameters must not be NaN"
        );
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Normal {
            mean,
            std_dev,
            samples: 0,
        }
    }

    /// A degenerate point distribution at `value`, used for hand-proven
    /// fixed accuracies (§5.5.1: "the normal distributions will become
    /// singular points").
    pub fn point(value: f64) -> Self {
        Normal::new(value, 0.0)
    }

    /// Fits a normal distribution to samples (sample mean / sample
    /// standard deviation, the least-squares estimator for the normal
    /// family).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[f64]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot fit a distribution to no samples"
        );
        let stats: OnlineStats = samples.iter().copied().collect();
        Normal::from_stats(&stats)
    }

    /// Fits from a pre-accumulated [`OnlineStats`].
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn from_stats(stats: &OnlineStats) -> Self {
        assert!(!stats.is_empty(), "cannot fit a distribution to no samples");
        Normal {
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            samples: stats.count(),
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Number of samples used for the fit (zero for analytic
    /// distributions).
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Whether this is a degenerate (zero-variance) point distribution.
    pub fn is_point(&self) -> bool {
        self.std_dev == 0.0
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.is_point() {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        0.5 * (1.0 + erf((x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2)))
    }

    /// Quantile (inverse CDF) via bisection on the CDF.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        if self.is_point() {
            return self.mean;
        }
        // Bracket +-10 sigma and bisect; 80 iterations gives ~1e-18
        // relative bracket width, far below f64 precision.
        let mut lo = self.mean - 10.0 * self.std_dev;
        let mut hi = self.mean + 10.0 * self.std_dev;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// One-sided lower confidence bound on the distribution mean at the
    /// given confidence level, based on the standard error of the fit.
    ///
    /// For a point distribution the bound is the point itself. The paper
    /// uses such bounds to state "with 95% confidence the accuracy is at
    /// least X" for statistical accuracy guarantees (§3.3).
    pub fn lower_confidence_bound(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        if self.is_point() || self.samples <= 1 {
            return self.mean;
        }
        let se = self.std_dev / (self.samples as f64).sqrt();
        let z = standard_normal_quantile(confidence);
        self.mean - z * se
    }

    /// One-sided upper confidence bound on the distribution mean.
    pub fn upper_confidence_bound(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        if self.is_point() || self.samples <= 1 {
            return self.mean;
        }
        let se = self.std_dev / (self.samples as f64).sqrt();
        let z = standard_normal_quantile(confidence);
        self.mean + z * se
    }

    /// Probability that a draw from this distribution is below `x`
    /// (alias of [`Normal::cdf`], provided for readability at call
    /// sites that reason about accuracy thresholds).
    pub fn prob_below(&self, x: f64) -> f64 {
        self.cdf(x)
    }
}

/// Quantile of the standard normal distribution via bisection.
fn standard_normal_quantile(p: f64) -> f64 {
    let n = Normal::new(0.0, 1.0);
    n.quantile(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_mean_and_std() {
        let n = Normal::fit(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((n.mean() - 3.0).abs() < 1e-12);
        assert!((n.std_dev() - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(n.sample_count(), 5);
    }

    #[test]
    fn point_distribution_cdf_is_step() {
        let p = Normal::point(7.0);
        assert!(p.is_point());
        assert_eq!(p.cdf(6.999), 0.0);
        assert_eq!(p.cdf(7.0), 1.0);
        assert_eq!(p.quantile(0.5), 7.0);
        assert_eq!(p.lower_confidence_bound(0.95), 7.0);
    }

    #[test]
    fn cdf_standard_values() {
        let n = Normal::new(0.0, 1.0);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((n.cdf(-1.96) - 0.0249979).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(3.0, 2.0);
        for &p in &[0.05, 0.25, 0.5, 0.9, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn confidence_bounds_bracket_mean() {
        let n = Normal::fit(&[9.0, 10.0, 11.0, 10.0, 9.5, 10.5]);
        let lo = n.lower_confidence_bound(0.95);
        let hi = n.upper_confidence_bound(0.95);
        assert!(lo < n.mean() && n.mean() < hi);
        // Higher confidence widens the interval.
        assert!(n.lower_confidence_bound(0.99) < lo);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn fit_rejects_empty() {
        Normal::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn new_rejects_negative_std() {
        Normal::new(0.0, -1.0);
    }
}
