//! Ordinary least squares line fitting.
//!
//! Used by the autotuner for trend estimation across input sizes and to
//! fit distributions to observed percentage differences (§5.5.1).

/// Result of fitting `y = slope * x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]` (1 for a perfect fit;
    /// defined as 1 when the response is constant).
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a straight line to `(x, y)` pairs by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two points,
/// or if all `x` values are identical (the system is singular).
///
/// # Examples
///
/// ```
/// use pb_stats::linear_fit;
///
/// let fit = linear_fit(&[0.0, 1.0, 2.0, 3.0], &[1.0, 3.0, 5.0, 7.0]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x and y must have the same length");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "all x values are identical; the fit is singular");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_is_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 10.0).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 10.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(6.0) + 8.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r_squared() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.3, 4.7];
        let fit = linear_fit(&xs, &ys);
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
        assert!((fit.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn constant_response_has_zero_slope() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        linear_fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn identical_xs_panic() {
        linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }
}
