//! Streaming sample statistics via Welford's algorithm.

/// Numerically stable streaming mean and variance accumulator.
///
/// Uses Welford's online algorithm so that adding millions of timing
/// samples never loses precision to catastrophic cancellation.
///
/// # Examples
///
/// ```
/// use pb_stats::OnlineStats;
///
/// let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean. Returns `0.0` for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation, or `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (Bessel-corrected). Zero when fewer than
    /// two observations have been recorded.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (biased) variance. Zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`), zero when empty.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed all observations into a single accumulator.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_textbook_formulas() {
        let data = [1.5, 2.5, 3.5, 4.5, 5.5];
        let s: OnlineStats = data.into_iter().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a: OnlineStats = a_data.into_iter().collect();
        let b: OnlineStats = b_data.into_iter().collect();
        a.merge(&b);
        let all: OnlineStats = a_data.into_iter().chain(b_data).collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [5.0, 6.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn huge_offset_remains_stable() {
        // Welford should survive a large common offset where the naive
        // sum-of-squares formula would lose all precision.
        let offset = 1e9;
        let s: OnlineStats = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .into_iter()
            .collect();
        assert!((s.variance() - 30.0).abs() < 1e-6);
    }
}
