//! Statistics engine for the PetaBricks variable-accuracy autotuner.
//!
//! The autotuner described in §5.5.1 of the paper measures both execution
//! time and accuracy of candidate algorithms, fits normal distributions to
//! the observations, and uses statistical hypothesis testing (Welch's
//! t-test) to decide — with as few trials as possible — whether two
//! candidates differ. This crate provides those primitives:
//!
//! * [`OnlineStats`] — numerically stable streaming mean/variance
//!   (Welford's algorithm).
//! * [`Normal`] — a fitted normal distribution with CDF/quantile and
//!   confidence bounds.
//! * [`welch_t_test`] — two-sample t-test with unequal variances,
//!   returning a real p-value via the regularized incomplete beta
//!   function.
//! * [`Comparator`] — the adaptive trial-count comparison protocol from
//!   §5.5.1 (run more trials only when the decision is still ambiguous).
//! * [`SampleStats`] / [`Robustness`] — sample-retaining statistics and
//!   the winsorized/trimmed summary policies that keep the comparison
//!   protocol honest under noisy (wall-clock) measurement.
//! * [`linear_fit`] — least-squares line fit used for trend estimation.
//!
//! # Examples
//!
//! ```
//! use pb_stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     s.push(x);
//! }
//! assert_eq!(s.mean(), 2.5);
//! assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
//! ```

pub mod compare;
pub mod lsq;
pub mod normal;
pub mod online;
pub mod order;
pub mod robust;
pub mod special;
pub mod ttest;

pub use compare::{
    Comparator, ComparatorConfig, CompareOutcome, CompareStep, PairMemo, SampleSource, Which,
};
pub use lsq::{linear_fit, LinearFit};
pub use normal::Normal;
pub use online::OnlineStats;
pub use order::{total_cmp_nan_first, total_cmp_nan_last};
pub use robust::{Robustness, SampleStats};
pub use ttest::{welch_t_test, TTest};
