//! Outlier-robust summary statistics for noisy measurements.
//!
//! Wall-clock timings are contaminated by rare, large positive
//! outliers (page faults, scheduler preemption, frequency transitions)
//! that inflate both the mean and the variance the §5.5.1 comparison
//! protocol feeds to Welch's t-test. [`SampleStats`] retains the raw
//! observations alongside a pass-through [`OnlineStats`] accumulator,
//! and a [`Robustness`] policy turns them into the summary the
//! comparator actually tests: the untouched Welford accumulator
//! ([`Robustness::Mean`]), a winsorized summary (extreme observations
//! clamped to interior quantiles), or a trimmed summary (extreme
//! observations dropped).
//!
//! `Robustness::Mean` returns the pass-through accumulator verbatim —
//! not a recomputation — so virtual-cost tuning runs stay bit-identical
//! to the pre-robustness comparator.

use crate::online::OnlineStats;

/// How a [`SampleStats`] collapses its observations into the summary
/// the comparison protocol tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Robustness {
    /// The plain Welford accumulator, untouched. The default, and the
    /// right choice for deterministic (virtual-cost) measurements.
    #[default]
    Mean,
    /// Winsorized summary: the lowest and highest `fraction` of the
    /// sorted observations are clamped to the nearest interior value.
    /// Keeps the sample count (and thus the t-test's degrees of
    /// freedom) while bounding each outlier's leverage.
    Winsorized {
        /// Fraction of observations clamped at *each* end (e.g. `0.1`
        /// clamps the bottom 10% and the top 10%).
        fraction: f64,
    },
    /// Trimmed summary: the lowest and highest `fraction` of the
    /// sorted observations are dropped entirely.
    Trimmed {
        /// Fraction of observations dropped at *each* end.
        fraction: f64,
    },
}

impl Robustness {
    /// Number of observations affected at each end of a sorted sample
    /// of `len` observations: `floor(fraction · len)`, capped so at
    /// least one observation always survives in the middle.
    fn tail_len(fraction: f64, len: usize) -> usize {
        if len == 0 || fraction <= 0.0 {
            return 0;
        }
        let k = (fraction * len as f64).floor() as usize;
        k.min((len - 1) / 2)
    }
}

/// Sample-retaining statistics: a Welford accumulator plus the raw
/// observations, so robust summaries can be recomputed under any
/// [`Robustness`] policy.
///
/// The comparison protocol bounds samples per candidate per size at
/// `max_trials` (25 by default), so retention is a few hundred bytes
/// per candidate, not an unbounded log.
///
/// # Examples
///
/// ```
/// use pb_stats::{Robustness, SampleStats};
///
/// let s: SampleStats = [1.0, 1.0, 1.0, 1.0, 100.0].into_iter().collect();
/// assert_eq!(s.mean(), 20.8);
/// let w = s.summary(Robustness::Winsorized { fraction: 0.2 });
/// assert_eq!(w.mean(), 1.0); // the outlier is clamped to 1.0
/// assert_eq!(w.count(), 5); // winsorizing keeps the count
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    online: OnlineStats,
    samples: Vec<f64>,
}

impl Default for SampleStats {
    fn default() -> Self {
        SampleStats {
            // `OnlineStats::new()`, not the derived zeroed default, so
            // the pass-through accumulator is bit-identical to one
            // built by pushing the same observations directly.
            online: OnlineStats::new(),
            samples: Vec::new(),
        }
    }
}

impl SampleStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SampleStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.online.push(x);
        self.samples.push(x);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.online.count()
    }

    /// Returns `true` if no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Sample mean of the raw (un-robustified) observations. `0.0`
    /// when empty.
    pub fn mean(&self) -> f64 {
        self.online.mean()
    }

    /// The pass-through Welford accumulator over the raw observations.
    pub fn online(&self) -> &OnlineStats {
        &self.online
    }

    /// The raw observations, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The summary the comparison protocol should test under `policy`.
    ///
    /// [`Robustness::Mean`] returns the pass-through accumulator
    /// verbatim (bit-identical to having never retained samples); the
    /// robust policies sort a copy of the observations (total order,
    /// NaN last) and rebuild a Welford accumulator from the clamped or
    /// trimmed values.
    pub fn summary(&self, policy: Robustness) -> OnlineStats {
        match policy {
            Robustness::Mean => self.online,
            Robustness::Winsorized { fraction } => {
                let mut sorted = self.samples.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let k = Robustness::tail_len(fraction, sorted.len());
                if k > 0 {
                    let lo = sorted[k];
                    let hi = sorted[sorted.len() - 1 - k];
                    for x in &mut sorted[..k] {
                        *x = lo;
                    }
                    let len = sorted.len();
                    for x in &mut sorted[len - k..] {
                        *x = hi;
                    }
                }
                sorted.into_iter().collect()
            }
            Robustness::Trimmed { fraction } => {
                let mut sorted = self.samples.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let k = Robustness::tail_len(fraction, sorted.len());
                sorted[k..sorted.len() - k].iter().copied().collect()
            }
        }
    }
}

impl FromIterator<f64> for SampleStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for SampleStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_policy_is_the_passthrough_accumulator() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s: SampleStats = data.into_iter().collect();
        let direct: OnlineStats = data.into_iter().collect();
        // Bitwise equality, not approximate: the Mean policy must be
        // indistinguishable from never having retained samples.
        assert_eq!(s.summary(Robustness::Mean), direct);
        assert_eq!(s.count(), 8);
        assert_eq!(s.samples().len(), 8);
    }

    #[test]
    fn winsorized_clamps_outliers_but_keeps_count() {
        let s: SampleStats = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1000.0]
            .into_iter()
            .collect();
        let w = s.summary(Robustness::Winsorized { fraction: 0.1 });
        assert_eq!(w.count(), 10);
        assert_eq!(w.mean(), 1.0);
        assert_eq!(w.variance(), 0.0);
        // The raw accumulator still sees the outlier.
        assert!(s.mean() > 100.0);
    }

    #[test]
    fn trimmed_drops_outliers_and_reduces_count() {
        let s: SampleStats = [0.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 50.0]
            .into_iter()
            .collect();
        let t = s.summary(Robustness::Trimmed { fraction: 0.1 });
        assert_eq!(t.count(), 8);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    fn tiny_samples_are_never_emptied() {
        for len in 1..=4usize {
            let s: SampleStats = (0..len).map(|i| i as f64).collect();
            for policy in [
                Robustness::Winsorized { fraction: 0.49 },
                Robustness::Trimmed { fraction: 0.49 },
            ] {
                let summary = s.summary(policy);
                assert!(
                    summary.count() >= 1,
                    "len={len} policy={policy:?} emptied the sample"
                );
            }
        }
    }

    #[test]
    fn zero_fraction_is_equivalent_to_mean_for_values() {
        let s: SampleStats = [5.0, 3.0, 8.0].into_iter().collect();
        let w = s.summary(Robustness::Winsorized { fraction: 0.0 });
        assert_eq!(w.count(), 3);
        assert!((w.mean() - s.mean()).abs() < 1e-12);
    }

    #[test]
    fn nan_sorts_last_and_gets_clamped() {
        // A NaN observation (a faulted wall-clock read) sorts last
        // under total order, so winsorizing clamps it to a finite
        // interior value instead of poisoning the summary.
        let s: SampleStats = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, f64::NAN]
            .into_iter()
            .collect();
        let w = s.summary(Robustness::Winsorized { fraction: 0.1 });
        assert_eq!(w.mean(), 1.0);
        assert!(s.mean().is_nan());
    }
}
