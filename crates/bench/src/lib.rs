//! Figure/table regeneration harness.
//!
//! One binary per artifact in the paper's evaluation (§6):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig6 <benchmark>` | Fig. 6(a)–(f): speedup vs input size per accuracy level |
//! | `fig7` | Fig. 7: best bin-packing algorithm per (accuracy, size) |
//! | `table1` | Table 1: tuned k-means choices per accuracy (n = 2048) |
//! | `fig8` | Fig. 8: tuned Helmholtz cycle shapes |
//! | `programmability` | §6.5: code-size comparison |
//! | `ablations` | DESIGN.md §4: tuner design-choice ablations |
//!
//! Costs are measured with the deterministic virtual-cost model, which
//! tracks operation counts; speedup *shapes* (who wins, crossovers,
//! orders of magnitude) reproduce the paper, while absolute numbers
//! reflect this substrate rather than the authors' 2009 Xeon testbed.

use pb_config::AccuracyBins;
use pb_runtime::{TrialRunner, TunedProgram};
use pb_tuner::{Autotuner, TunerOptions};

/// Number of measurement trials per (config, size) cell.
pub const MEASURE_TRIALS: u64 = 3;

/// Trains a runner over the given bins with a budget preset scaled for
/// harness use.
///
/// # Panics
///
/// Panics if tuning fails (the bins are chosen to be reachable).
pub fn train(
    runner: &dyn TrialRunner,
    bins: &AccuracyBins,
    max_size: u64,
    seed: u64,
) -> TunedProgram {
    let mut options = TunerOptions::fast_preset(max_size, seed);
    options.rounds_per_size = 5;
    options.mutation_attempts = 16;
    Autotuner::new(runner, bins.clone(), options)
        .tune()
        .unwrap_or_else(|e| panic!("tuning {} failed: {e}", runner.name()))
}

/// Mean cost of a configuration at one input size.
pub fn mean_cost(runner: &dyn TrialRunner, config: &pb_config::Config, n: u64) -> f64 {
    let mut total = 0.0;
    for trial in 0..MEASURE_TRIALS {
        total += runner
            .run_trial(config, n, 0xC0FFEE ^ (n << 8) ^ trial)
            .time;
    }
    total / MEASURE_TRIALS as f64
}

/// One row of a Fig. 6 speedup series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Input size.
    pub n: u64,
    /// Accuracy-bin target.
    pub target: f64,
    /// `cost(highest bin) / cost(this bin)` at this size.
    pub speedup: f64,
}

/// Generates the Fig. 6 speedup series for a tuned program: for every
/// size and bin, the ratio of the *highest*-accuracy configuration's
/// cost to this bin's configuration's cost.
pub fn speedup_series(
    runner: &dyn TrialRunner,
    tuned: &TunedProgram,
    sizes: &[u64],
) -> Vec<SpeedupPoint> {
    let top = tuned.entries().last().expect("at least one bin");
    let mut out = Vec::new();
    for &n in sizes {
        let top_cost = mean_cost(runner, &top.config, n);
        for entry in tuned.entries() {
            let cost = mean_cost(runner, &entry.config, n);
            out.push(SpeedupPoint {
                n,
                target: entry.target,
                speedup: if cost > 0.0 { top_cost / cost } else { 1.0 },
            });
        }
    }
    out
}

/// Renders a speedup series as the rows of one Fig. 6 panel.
pub fn format_speedups(title: &str, points: &[SpeedupPoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(
        s,
        "{:>10} {:>14} {:>12}",
        "input_size", "accuracy", "speedup"
    );
    for p in points {
        let _ = writeln!(s, "{:>10} {:>14.4} {:>12.2}", p.n, p.target, p.speedup);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Schema;
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    struct Iterate;

    impl Transform for Iterate {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "iterate"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("iterate");
            s.add_accuracy_variable("iters", 1, 4096);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let iters = ctx.param("iters").unwrap() as f64;
            ctx.charge(iters * ctx.size() as f64);
            1.0 - 1.0 / (1.0 + iters)
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    #[test]
    fn harness_produces_monotone_speedups() {
        let runner = TransformRunner::new(Iterate, CostModel::Virtual);
        let bins = AccuracyBins::new(vec![0.5, 0.99]);
        let tuned = train(&runner, &bins, 8, 1);
        let points = speedup_series(&runner, &tuned, &[4, 8]);
        assert_eq!(points.len(), 4);
        // The loose bin is faster than the tight bin (speedup > 1);
        // the tight bin's self-speedup is exactly 1.
        for p in &points {
            if p.target == 0.99 {
                assert!((p.speedup - 1.0).abs() < 1e-9);
            } else {
                assert!(p.speedup > 1.0, "{p:?}");
            }
        }
        let rendered = format_speedups("test", &points);
        assert!(rendered.contains("input_size"));
    }
}
