//! Regenerates Fig. 7: the best bin-packing algorithm for each
//! (required accuracy, input size) cell — "best" meaning on the
//! optimal frontier: no other algorithm has better cost while meeting
//! the accuracy requirement on average.

use pb_benchmarks::binpacking::{generate_input, pack_with, ALGORITHM_NAMES};
use pb_benchmarks::BinPacking;
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Average `(bins/OPT ratio, cost)` per algorithm at one size.
fn profile(n: u64, trials: u64) -> Vec<(f64, f64)> {
    let t = BinPacking;
    let schema = t.schema();
    let config = schema.default_config();
    let mut out = vec![(0.0, 0.0); ALGORITHM_NAMES.len()];
    for trial in 0..trials {
        let mut rng = SmallRng::seed_from_u64(0xF17 ^ (n << 8) ^ trial);
        let input = generate_input(n, &mut rng);
        for (alg, acc) in out.iter_mut().enumerate() {
            let mut ctx = ExecCtx::new(&schema, &config, n, trial);
            let packing = pack_with(alg, &input.items, 2, usize::MAX, &mut ctx);
            acc.0 += packing.bins() as f64 / input.opt_bins.max(1) as f64;
            acc.1 += ctx.virtual_cost();
        }
    }
    for acc in &mut out {
        acc.0 /= trials as f64;
        acc.1 /= trials as f64;
    }
    out
}

fn main() {
    let sizes: Vec<u64> = (3..=14).map(|k| 1u64 << k).collect();
    let ratios: Vec<f64> = (0..=10).map(|i| 1.0 + 0.05 * i as f64).collect();

    println!("# Fig 7: best algorithm per (required bins/OPT ratio, input size)");
    print!("{:>8}", "size");
    for r in &ratios {
        print!(" {:>6.2}", r);
    }
    println!();

    for &n in &sizes {
        let profiles = profile(n, 3);
        print!("{:>8}", n);
        for &r in &ratios {
            // Cheapest algorithm whose mean ratio meets the requirement.
            let best = profiles
                .iter()
                .enumerate()
                .filter(|(_, (ratio, _))| *ratio <= r)
                .min_by(|(_, (_, ca)), (_, (_, cb))| ca.partial_cmp(cb).expect("finite costs"))
                .map(|(alg, _)| alg);
            match best {
                Some(alg) => print!(" {:>6}", abbreviate(ALGORITHM_NAMES[alg])),
                None => print!(" {:>6}", "-"),
            }
        }
        println!();
    }

    println!("\nLegend:");
    for name in ALGORITHM_NAMES {
        println!("  {:>6} = {name}", abbreviate(name));
    }
}

/// Short labels for the grid cells.
fn abbreviate(name: &str) -> String {
    let mut s: String = name.chars().filter(|c| c.is_ascii_uppercase()).collect();
    if s.is_empty() {
        s = name.chars().take(4).collect();
    }
    s
}
