//! §6.5 programmability: code-size comparison with and without the
//! variable-accuracy language extensions.
//!
//! The paper reports that rewriting the 2D Poisson benchmark with the
//! new constructs shrank it 15.6×, because the extensions subsume the
//! hand-written training harness, per-level accuracy bookkeeping, and
//! duplicated variants. We reproduce the comparison qualitatively: the
//! same k-means benchmark written (a) in the DSL with the extensions
//! and (b) with the extensions manually erased — every `accuracy_*`
//! header expanded into explicit parameters, the `for_enough` loop
//! into a hand-managed counter scheme, and each algorithmic choice
//! into a separately maintained variant plus hand-rolled driver code.

/// The kmeans program with the variable-accuracy extensions (Fig. 3).
const WITH_EXTENSIONS: &str = r#"
transform kmeans
accuracy_metric kmeansaccuracy
accuracy_variable k 1 4096
from Points[2, n]
through Centroids[2, k]
to Assignments[n]
{
    to (Centroids c) from (Points p) {
        for (i in 0 .. cols(c)) {
            let src = floor(rand(0, cols(p)));
            c[0, i] = p[0, src];
            c[1, i] = p[1, src];
        }
    }
    to (Centroids c) from (Points p) {
        CenterPlus(c, p);
    }
    to (Assignments a) from (Points p, Centroids c) {
        for_enough {
            let change = AssignClusters(a, p, c);
            if (change == 0) { return; }
            NewClusterLocations(c, p, a);
        }
    }
}
transform kmeansaccuracy
from Assignments[n], Points[2, n]
to Accuracy
{
    to (Accuracy acc) from (Assignments a, Points p) {
        acc = sqrt(2 * len(a) / SumClusterDistanceSquared(a, p));
    }
}
"#;

/// The same program with the extensions manually erased, in the style
/// the paper describes for the pre-extension Poisson benchmark:
/// specialized training transforms, explicit parameter plumbing, one
/// copy of the pipeline per (init × iteration-policy) combination, and
/// a hand-written accuracy search driver.
const WITHOUT_EXTENSIONS: &str = r#"
transform kmeans_rand_once from Points[2, n] to Assignments[n] {
    to (Assignments a) from (Points p) {
        let k = ReadParamFile(p, 0);
        InitRandom(a, p, k);
        AssignClusters(a, p, a);
    }
}
transform kmeans_rand_iter from Points[2, n] to Assignments[n] {
    to (Assignments a) from (Points p) {
        let k = ReadParamFile(p, 0);
        let iters = ReadParamFile(p, 1);
        InitRandom(a, p, k);
        let i = 0;
        while (i < iters) {
            let change = AssignClusters(a, p, a);
            if (change == 0) { return; }
            NewClusterLocations(a, p, a);
            i = i + 1;
        }
    }
}
transform kmeans_rand_fixpoint from Points[2, n] to Assignments[n] {
    to (Assignments a) from (Points p) {
        let k = ReadParamFile(p, 0);
        InitRandom(a, p, k);
        while (1) {
            let change = AssignClusters(a, p, a);
            if (change == 0) { return; }
            NewClusterLocations(a, p, a);
        }
    }
}
transform kmeans_pp_once from Points[2, n] to Assignments[n] {
    to (Assignments a) from (Points p) {
        let k = ReadParamFile(p, 0);
        InitCenterPlus(a, p, k);
        AssignClusters(a, p, a);
    }
}
transform kmeans_pp_iter from Points[2, n] to Assignments[n] {
    to (Assignments a) from (Points p) {
        let k = ReadParamFile(p, 0);
        let iters = ReadParamFile(p, 1);
        InitCenterPlus(a, p, k);
        let i = 0;
        while (i < iters) {
            let change = AssignClusters(a, p, a);
            if (change == 0) { return; }
            NewClusterLocations(a, p, a);
            i = i + 1;
        }
    }
}
transform kmeans_pp_fixpoint from Points[2, n] to Assignments[n] {
    to (Assignments a) from (Points p) {
        let k = ReadParamFile(p, 0);
        InitCenterPlus(a, p, k);
        while (1) {
            let change = AssignClusters(a, p, a);
            if (change == 0) { return; }
            NewClusterLocations(a, p, a);
        }
    }
}
transform kmeans_train_k from Points[2, n] to BestK {
    to (BestK best) from (Points p) {
        let k = 1;
        let bestacc = 0;
        while (k < 4096) {
            WriteParamFile(p, 0, k);
            let acc = RunCandidateAndMeasure(p, k);
            if (acc > bestacc) { bestacc = acc; best = k; }
            k = k * 2;
        }
        WriteParamFile(p, 0, best);
    }
}
transform kmeans_train_iters from Points[2, n] to BestIters {
    to (BestIters best) from (Points p) {
        let i = 1;
        let bestacc = 0;
        while (i < 500) {
            WriteParamFile(p, 1, i);
            let acc = RunCandidateAndMeasure(p, i);
            if (acc > bestacc) { bestacc = acc; best = i; }
            i = i * 2;
        }
        WriteParamFile(p, 1, best);
    }
}
transform kmeans_train_variant from Points[2, n] to BestVariant {
    to (BestVariant best) from (Points p) {
        let v = 0;
        let bestacc = 0;
        while (v < 6) {
            let acc = RunVariantAndMeasure(p, v);
            if (acc > bestacc) { bestacc = acc; best = v; }
            v = v + 1;
        }
        WriteParamFile(p, 2, best);
    }
}
transform kmeansaccuracy
from Assignments[n], Points[2, n]
to Accuracy
{
    to (Accuracy acc) from (Assignments a, Points p) {
        acc = sqrt(2 * len(a) / SumClusterDistanceSquared(a, p));
    }
}
"#;

fn loc(source: &str) -> usize {
    source
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count()
}

fn main() {
    // Both versions must actually be valid programs in our language.
    let with_ext = pb_lang::parse_program(WITH_EXTENSIONS).expect("extended program parses");
    let without_ext = pb_lang::parse_program(WITHOUT_EXTENSIONS).expect("manual program parses");
    pb_lang::check_program(&with_ext).expect("extended program is well-formed");
    pb_lang::check_program(&without_ext).expect("manual program is well-formed");

    let a = loc(WITH_EXTENSIONS);
    let b = loc(WITHOUT_EXTENSIONS);
    println!("# §6.5 programmability (qualitative reproduction)");
    println!("k-means with variable-accuracy extensions:    {a:>4} LoC");
    println!("k-means with extensions manually erased:      {b:>4} LoC");
    println!(
        "code-size ratio:                              {:.1}x",
        b as f64 / a as f64
    );
    println!();
    println!(
        "(The paper reports 15.6x for its 2D Poisson benchmark, whose manual \
         version also duplicated per-level multigrid accuracy plumbing; the \
         manual k-means above still under-counts the real burden since \
         ReadParamFile/RunCandidateAndMeasure hide a hand-written tuner.)"
    );
}
