//! Tuner design-choice ablations (DESIGN.md §4).
//!
//! Each ablation tunes the same diminishing-returns benchmark under a
//! modified tuner and reports trials executed plus the quality of the
//! resulting frontier, quantifying the paper's design choices:
//! adaptive trial counts (§5.5.1), guided mutation (§5.5.3), the
//! exponential input-size schedule (§5.1), and the keep-K pruning
//! width (§5.5.4).

use pb_config::{AccuracyBins, Schema};
use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner, TrialRunner};
use pb_stats::ComparatorConfig;
use pb_tuner::{Autotuner, TunerOptions};
use rand::rngs::SmallRng;
use rand::Rng;

/// Noisy diminishing-returns benchmark: accuracy = 1 − 1/(1+iters)
/// with multiplicative cost noise, so adaptive trial counts matter.
struct Noisy;

impl Transform for Noisy {
    type Input = ();
    type Output = f64;
    fn name(&self) -> &str {
        "noisy"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("noisy");
        s.add_accuracy_variable("iters", 1, 4096);
        s.add_cutoff("block", 1, 1024);
        s
    }
    fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
    fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
        let iters = ctx.param("iters").unwrap() as f64;
        let noise: f64 = ctx.rng().gen_range(0.9..1.1);
        ctx.charge(iters * ctx.size() as f64 * noise);
        1.0 - 1.0 / (1.0 + iters)
    }
    fn accuracy(&self, _i: &(), o: &f64) -> f64 {
        *o
    }
}

fn frontier_cost(runner: &dyn TrialRunner, tuned: &pb_runtime::TunedProgram, n: u64) -> f64 {
    tuned
        .entries()
        .iter()
        .map(|e| {
            (0..3)
                .map(|t| runner.run_trial(&e.config, n, t).time)
                .sum::<f64>()
                / 3.0
        })
        .sum()
}

fn run_case(name: &str, options: TunerOptions) {
    let runner = TransformRunner::new(Noisy, CostModel::Virtual);
    let bins = AccuracyBins::new(vec![0.5, 0.9, 0.99]);
    match Autotuner::new(&runner, bins, options).tune_outcome() {
        Ok(outcome) => {
            let quality = frontier_cost(&runner, &outcome.program, options.max_size);
            println!(
                "{name:<28} trials={:<6} children={:<5} accepted={:<5} guided={:<3} frontier_cost={quality:.0}",
                outcome.stats.trials,
                outcome.stats.children_created,
                outcome.stats.children_accepted,
                outcome.stats.guided_runs,
            );
        }
        Err(e) => println!("{name:<28} FAILED: {e}"),
    }
}

fn main() {
    let base = TunerOptions {
        max_size: 64,
        seed: 0xAB1A,
        ..TunerOptions::fast_preset(64, 0xAB1A)
    };

    println!("# Ablation: adaptive trial counts (paper §5.5.1)");
    run_case("adaptive (3..25 trials)", base);
    run_case(
        "fixed 25 trials",
        TunerOptions {
            comparator: ComparatorConfig {
                min_trials: 25,
                max_trials: 25,
                ..ComparatorConfig::default()
            },
            min_trials: 25,
            ..base
        },
    );
    println!();

    println!("# Ablation: guided mutation (paper §5.5.3)");
    run_case("guided mutation on", base);
    run_case(
        "guided mutation off",
        TunerOptions {
            guided_max_steps: 0,
            ..base
        },
    );
    println!();

    println!("# Ablation: input-size schedule (paper §5.1)");
    run_case("exponential 2..64", base);
    run_case(
        "direct-to-64",
        TunerOptions {
            initial_size: 64,
            ..base
        },
    );
    println!();

    println!("# Ablation: pruning width K (paper §5.5.4)");
    for k in [1, 2, 4, 8] {
        run_case(
            &format!("keep_per_bin = {k}"),
            TunerOptions {
                keep_per_bin: k,
                ..base
            },
        );
    }
}
