//! Regenerates Fig. 6(a)–(f): speedups for each accuracy level and
//! input size, compared to the highest accuracy level.
//!
//! Usage: `fig6 [binpacking|clustering|helmholtz|imagecompression|poisson|preconditioner|all]`

use bench::{format_speedups, speedup_series, train};
use pb_benchmarks::binpacking::ratio_to_accuracy;
use pb_benchmarks::{
    BinPacking, Clustering, Helmholtz3d, ImageCompression, Poisson2d, Preconditioner,
};
use pb_config::AccuracyBins;
use pb_runtime::{CostModel, Transform, TransformRunner};

fn panel<T>(title: &str, transform: T, bins: AccuracyBins, train_size: u64, sizes: &[u64])
where
    T: Transform + Send + Sync,
{
    let runner = TransformRunner::new(transform, CostModel::Virtual);
    let tuned = train(&runner, &bins, train_size, 0xF16);
    let points = speedup_series(&runner, &tuned, sizes);
    print!("{}", format_speedups(title, &points));
    println!();
}

fn run(which: &str) -> bool {
    match which {
        "binpacking" => {
            // Paper levels are bins/OPT ratios 1.01–1.4; convert to the
            // larger-is-better metric.
            let ratios = [1.4, 1.3, 1.2, 1.1, 1.01];
            let bins = AccuracyBins::new(ratios.iter().map(|&r| ratio_to_accuracy(r)).collect());
            panel(
                "Fig 6(a) Bin Packing (accuracy = 2 - bins/OPT)",
                BinPacking,
                bins,
                1 << 10,
                &[8, 64, 512, 4096, 16384],
            );
        }
        "clustering" => {
            let bins = AccuracyBins::new(vec![0.05, 0.10, 0.20, 0.50, 0.75, 0.95]);
            panel(
                "Fig 6(b) Clustering",
                Clustering,
                bins,
                256,
                &[16, 64, 256, 1024],
            );
        }
        "helmholtz" => {
            let bins = AccuracyBins::new(vec![1.0, 3.0, 5.0, 7.0, 9.0]);
            panel(
                "Fig 6(c) Helmholtz (accuracy = orders of magnitude)",
                Helmholtz3d,
                bins,
                7,
                &[3, 7, 15],
            );
        }
        "imagecompression" => {
            let bins = AccuracyBins::new(vec![0.3, 0.6, 0.8, 1.0, 1.5, 2.0]);
            panel(
                "Fig 6(d) Image Compression (accuracy = log10 RMS ratio)",
                ImageCompression,
                bins,
                48,
                &[8, 16, 32, 64],
            );
        }
        "poisson" => {
            let bins = AccuracyBins::new(vec![1.0, 3.0, 5.0, 7.0, 9.0]);
            panel(
                "Fig 6(e) Poisson (accuracy = orders of magnitude)",
                Poisson2d,
                bins,
                31,
                &[7, 15, 31, 63],
            );
        }
        "preconditioner" => {
            let bins = AccuracyBins::new(vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0]);
            panel(
                "Fig 6(f) Preconditioner (accuracy = orders of magnitude)",
                Preconditioner,
                bins,
                24,
                &[8, 16, 32, 64],
            );
        }
        _ => return false,
    }
    true
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = [
        "binpacking",
        "clustering",
        "helmholtz",
        "imagecompression",
        "poisson",
        "preconditioner",
    ];
    if arg == "all" {
        for b in all {
            assert!(run(b));
        }
    } else if !run(&arg) {
        eprintln!("unknown benchmark `{arg}`; expected one of {all:?} or `all`");
        std::process::exit(1);
    }
}
