//! Trace inspection: validates and summarizes a Chrome trace-event
//! file emitted by `tuner_throughput --trace` / `vm_opt --trace`
//! (the `pb_trace` Chrome exporter).
//!
//! Validation (the CI gate): the file must parse as a trace-event
//! JSON object, every event must carry finite non-negative
//! timestamps, and the event list must be sorted by start time — the
//! exporter's contract, and what Perfetto expects.
//!
//! Summaries: per-phase pool batch deltas, top-N hottest VM chunks
//! (by instructions retired, with fused- and specialized-opcode
//! shares — the latter is the share of retired ops running in the
//! `O3` typed-specialization forms, i.e. how much of the chunk's work
//! the facts actually covered), pool utilization per worker thread,
//! and the arena round-width histogram.
//!
//! Usage: `tuner_trace <trace.json> [--top N] [--require-phases]
//! [--require-chunks]`
//!
//! `--require-phases` fails unless the trace carries per-phase pool
//! deltas (a tuning-run trace); `--require-chunks` fails unless it
//! carries a VM chunk profile (a VM workload trace).
//!
//! Diff mode: `tuner_trace diff <a.json> <b.json> [--top N]` compares
//! two trace summaries — per-phase wall time / dispatch deltas and
//! per-chunk instruction deltas, sorted by where the time (or work)
//! moved — so a perf regression can be localized to a tuning phase or
//! a VM chunk without opening either trace in a viewer.

use pb_lang::{opcode_is_fused, opcode_is_specialized, OPCODE_NAMES};
use pb_trace::{ChromeEvent, ChromeTrace};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("tuner_trace: {msg}");
    ExitCode::FAILURE
}

/// The exporter's structural contract, checked event by event.
fn validate(events: &[ChromeEvent]) -> Result<(), String> {
    let mut prev_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        if e.ph != "X" && e.ph != "i" {
            return Err(format!(
                "event {i} ({}): unknown phase type {:?}",
                e.name, e.ph
            ));
        }
        if !e.ts.is_finite() || e.ts < 0.0 {
            return Err(format!("event {i} ({}): bad timestamp {}", e.name, e.ts));
        }
        if !e.dur.is_finite() || e.dur < 0.0 {
            return Err(format!("event {i} ({}): bad duration {}", e.name, e.dur));
        }
        if e.ts < prev_ts {
            return Err(format!(
                "event {i} ({}): timestamps not monotonic ({} after {})",
                e.name, e.ts, prev_ts
            ));
        }
        prev_ts = e.ts;
    }
    Ok(())
}

/// Reads, parses, and structurally validates one trace file.
fn load(path: &str) -> Result<ChromeTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace: ChromeTrace = serde_json::from_str(&text)
        .map_err(|e| format!("{path} is not a valid Chrome trace: {e:?}"))?;
    validate(&trace.traceEvents).map_err(|msg| format!("{path}: {msg}"))?;
    Ok(trace)
}

/// `diff a b`: where did the wall time (and the VM work) move?
fn diff(path_a: &str, path_b: &str, top: usize) -> ExitCode {
    let (a, b) = match (load(path_a), load(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    println!("# diff {path_a} -> {path_b}");

    // Per-phase movement: union of phase names, sorted by absolute
    // wall-time delta so the biggest mover tops the report.
    let index = |t: &ChromeTrace| -> BTreeMap<String, pb_trace::PhaseDelta> {
        t.otherData
            .phases
            .iter()
            .map(|p| (p.phase.clone(), p.clone()))
            .collect()
    };
    let (pa, pb) = (index(&a), index(&b));
    if pa.is_empty() && pb.is_empty() {
        println!("\n(no per-phase pool deltas in either trace)");
    } else {
        let mut names: Vec<&String> = pa.keys().chain(pb.keys()).collect();
        names.sort();
        names.dedup();
        let mut rows: Vec<(&str, pb_trace::PhaseDelta, pb_trace::PhaseDelta)> = names
            .into_iter()
            .map(|name| {
                let da = pa.get(name).cloned().unwrap_or_default();
                let db = pb.get(name).cloned().unwrap_or_default();
                (name.as_str(), da, db)
            })
            .collect();
        rows.sort_by_key(|(_, da, db)| std::cmp::Reverse(da.wall_ns.abs_diff(db.wall_ns)));
        let (total_a, total_b): (u64, u64) = rows.iter().fold((0, 0), |(x, y), (_, da, db)| {
            (x + da.wall_ns, y + db.wall_ns)
        });
        println!(
            "\n## per-phase wall time ({:.2} ms -> {:.2} ms, {:+.2} ms)",
            total_a as f64 / 1e6,
            total_b as f64 / 1e6,
            (total_b as f64 - total_a as f64) / 1e6
        );
        println!(
            "{:>14} {:>10} {:>10} {:>10} {:>8} {:>10} {:>9}",
            "phase", "a ms", "b ms", "delta ms", "spans", "dispatched", "tasks"
        );
        for (name, da, db) in &rows {
            println!(
                "{:>14} {:>10.2} {:>10.2} {:>+10.2} {:>+8} {:>+10} {:>+9}",
                name,
                da.wall_ns as f64 / 1e6,
                db.wall_ns as f64 / 1e6,
                (db.wall_ns as f64 - da.wall_ns as f64) / 1e6,
                db.count as i64 - da.count as i64,
                db.dispatched as i64 - da.dispatched as i64,
                db.tasks as i64 - da.tasks as i64
            );
        }
    }

    // Per-chunk movement by instructions retired. Each chunk maps to
    // its `(executions, instructions)` pair per trace.
    type ExecInstr = (u64, u64);
    let chunk_index = |t: &ChromeTrace| -> BTreeMap<String, ExecInstr> {
        t.otherData
            .chunks
            .iter()
            .map(|c| (c.label.clone(), (c.executions, c.instructions())))
            .collect()
    };
    let (ca, cb) = (chunk_index(&a), chunk_index(&b));
    if ca.is_empty() && cb.is_empty() {
        println!("\n(no VM chunk profile in either trace)");
    } else {
        let mut labels: Vec<&String> = ca.keys().chain(cb.keys()).collect();
        labels.sort();
        labels.dedup();
        let mut rows: Vec<(&str, ExecInstr, ExecInstr)> = labels
            .into_iter()
            .map(|l| {
                (
                    l.as_str(),
                    ca.get(l).copied().unwrap_or_default(),
                    cb.get(l).copied().unwrap_or_default(),
                )
            })
            .collect();
        rows.sort_by_key(|&(_, (_, ia), (_, ib))| std::cmp::Reverse(ia.abs_diff(ib)));
        println!("\n## per-chunk instructions (top {top} movers)");
        println!(
            "{:>24} {:>14} {:>14} {:>14} {:>10}",
            "chunk", "a instr", "b instr", "delta", "exec delta"
        );
        for (label, (ea, ia), (eb, ib)) in rows.iter().take(top) {
            println!(
                "{:>24} {:>14} {:>14} {:>+14} {:>+10}",
                label,
                ia,
                ib,
                *ib as i64 - *ia as i64,
                *eb as i64 - *ea as i64
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut free = Vec::new();
    let mut top = 10usize;
    let mut require_phases = false;
    let mut require_chunks = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return fail("--top requires a number"),
            },
            "--require-phases" => require_phases = true,
            "--require-chunks" => require_chunks = true,
            other => free.push(other.to_string()),
        }
    }
    if free.first().map(String::as_str) == Some("diff") {
        return match &free[1..] {
            [a, b] => diff(a, b, top),
            _ => fail("usage: tuner_trace diff <a.json> <b.json> [--top N]"),
        };
    }
    let path = match &free[..] {
        [p] => p.clone(),
        _ => {
            return fail(
                "usage: tuner_trace <trace.json> [--top N] [--require-phases] [--require-chunks]\n       tuner_trace diff <a.json> <b.json> [--top N]",
            )
        }
    };

    let trace = match load(&path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let meta = &trace.otherData;
    if require_phases && meta.phases.is_empty() {
        return fail(&format!("{path}: no per-phase pool deltas recorded"));
    }
    if require_chunks && meta.chunks.is_empty() {
        return fail(&format!("{path}: no VM chunk profile recorded"));
    }

    println!(
        "# {path}: {} events, {} dropped, {} profiled chunks — valid",
        trace.traceEvents.len(),
        meta.dropped,
        meta.chunks.len()
    );

    // Per-phase pool batch deltas (aggregated by the exporter).
    if !meta.phases.is_empty() {
        println!("\n## per-phase pool batch deltas");
        println!(
            "{:>14} {:>7} {:>10} {:>10} {:>8} {:>9} {:>9}",
            "phase", "spans", "wall ms", "dispatched", "inline", "tasks", "max batch"
        );
        for p in &meta.phases {
            println!(
                "{:>14} {:>7} {:>10.2} {:>10} {:>8} {:>9} {:>9}",
                p.phase,
                p.count,
                p.wall_ns as f64 / 1e6,
                p.dispatched,
                p.inline,
                p.tasks,
                p.max_batch
            );
        }
    }

    // Hottest chunks by instructions retired.
    if !meta.chunks.is_empty() {
        let mut chunks = meta.chunks.clone();
        chunks.sort_by(|a, b| {
            b.instructions()
                .cmp(&a.instructions())
                .then_with(|| a.label.cmp(&b.label))
        });
        println!("\n## hottest chunks (top {top})");
        println!(
            "{:>24} {:>12} {:>14} {:>12} {:>8} {:>8}  top opcodes",
            "chunk", "executions", "instructions", "instr/exec", "fused", "spec"
        );
        for c in chunks.iter().take(top) {
            let instr = c.instructions();
            let fused: u64 = c
                .opcodes
                .iter()
                .enumerate()
                .filter(|&(i, _)| opcode_is_fused(i))
                .map(|(_, &n)| n)
                .sum();
            let spec: u64 = c
                .opcodes
                .iter()
                .enumerate()
                .filter(|&(i, _)| opcode_is_specialized(i))
                .map(|(_, &n)| n)
                .sum();
            let mut by_count: Vec<(usize, u64)> = c
                .opcodes
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .collect();
            by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let names: Vec<String> = by_count
                .iter()
                .take(3)
                .map(|&(i, n)| {
                    let name = OPCODE_NAMES.get(i).copied().unwrap_or("?");
                    format!("{name}:{n}")
                })
                .collect();
            println!(
                "{:>24} {:>12} {:>14} {:>12.1} {:>7.1}% {:>7.1}%  {}",
                c.label,
                c.executions,
                instr,
                if c.executions > 0 {
                    instr as f64 / c.executions as f64
                } else {
                    0.0
                },
                if instr > 0 {
                    100.0 * fused as f64 / instr as f64
                } else {
                    0.0
                },
                if instr > 0 {
                    100.0 * spec as f64 / instr as f64
                } else {
                    0.0
                },
                names.join(" ")
            );
        }
    }

    // Pool utilization: per-thread busy time from executed job spans.
    let jobs: Vec<&ChromeEvent> = trace
        .traceEvents
        .iter()
        .filter(|e| e.name == "pool_job")
        .collect();
    if !jobs.is_empty() {
        let span_start = trace
            .traceEvents
            .iter()
            .map(|e| e.ts)
            .fold(f64::INFINITY, f64::min);
        let span_end = trace
            .traceEvents
            .iter()
            .map(|e| e.ts + e.dur)
            .fold(0.0f64, f64::max);
        let span = (span_end - span_start).max(1e-9);
        // `pool_steal` args.c is the locality bit: 0 = within-shard
        // (an own-shard peer's deque), 1 = cross-shard.
        let (mut local_steals, mut remote_steals) = (0u64, 0u64);
        for e in trace.traceEvents.iter().filter(|e| e.name == "pool_steal") {
            if e.args.c == 0 {
                local_steals += 1;
            } else {
                remote_steals += 1;
            }
        }
        let mut per_tid: BTreeMap<u32, (u64, f64)> = BTreeMap::new();
        for j in &jobs {
            let slot = per_tid.entry(j.tid).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += j.dur;
        }
        println!(
            "\n## pool utilization ({} jobs, {local_steals} local + {remote_steals} remote steals, {:.1} ms trace span)",
            jobs.len(),
            span / 1e3
        );
        println!(
            "{:>8} {:>8} {:>10} {:>6}",
            "thread", "jobs", "busy ms", "util"
        );
        for (tid, (count, busy)) in &per_tid {
            println!(
                "{:>8} {:>8} {:>10.2} {:>5.1}%",
                tid,
                count,
                busy / 1e3,
                100.0 * busy / span
            );
        }
    }

    // Arena round widths (planned draws per batched round).
    let widths: Vec<u64> = trace
        .traceEvents
        .iter()
        .filter(|e| e.name == "arena_round")
        .map(|e| e.args.a)
        .collect();
    if !widths.is_empty() {
        let mut buckets: BTreeMap<u32, u64> = BTreeMap::new();
        for &w in &widths {
            // Power-of-two buckets: 1, 2-3, 4-7, 8-15, …
            buckets
                .entry(u64::BITS - w.max(1).leading_zeros())
                .and_modify(|n| *n += 1)
                .or_insert(1);
        }
        let total: u64 = widths.iter().sum();
        println!(
            "\n## arena round widths ({} rounds, {} draws, mean {:.2})",
            widths.len(),
            total,
            total as f64 / widths.len() as f64
        );
        for (bucket, count) in &buckets {
            let lo = 1u64 << (bucket - 1);
            let hi = (1u64 << bucket) - 1;
            let label = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            println!("{label:>10} draws: {count:>6} rounds");
        }
    }

    ExitCode::SUCCESS
}
