//! Trace inspection: validates and summarizes a Chrome trace-event
//! file emitted by `tuner_throughput --trace` / `vm_opt --trace`
//! (the `pb_trace` Chrome exporter).
//!
//! Validation (the CI gate): the file must parse as a trace-event
//! JSON object, every event must carry finite non-negative
//! timestamps, and the event list must be sorted by start time — the
//! exporter's contract, and what Perfetto expects.
//!
//! Summaries: per-phase pool batch deltas, top-N hottest VM chunks
//! (by instructions retired, with fused- and specialized-opcode
//! shares — the latter is the share of retired ops running in the
//! `O3` typed-specialization forms, i.e. how much of the chunk's work
//! the facts actually covered), pool utilization per worker thread,
//! and the arena round-width histogram.
//!
//! Usage: `tuner_trace <trace.json> [--top N] [--require-phases]
//! [--require-chunks]`
//!
//! `--require-phases` fails unless the trace carries per-phase pool
//! deltas (a tuning-run trace); `--require-chunks` fails unless it
//! carries a VM chunk profile (a VM workload trace).

use pb_lang::{opcode_is_fused, opcode_is_specialized, OPCODE_NAMES};
use pb_trace::{ChromeEvent, ChromeTrace};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("tuner_trace: {msg}");
    ExitCode::FAILURE
}

/// The exporter's structural contract, checked event by event.
fn validate(events: &[ChromeEvent]) -> Result<(), String> {
    let mut prev_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        if e.ph != "X" && e.ph != "i" {
            return Err(format!(
                "event {i} ({}): unknown phase type {:?}",
                e.name, e.ph
            ));
        }
        if !e.ts.is_finite() || e.ts < 0.0 {
            return Err(format!("event {i} ({}): bad timestamp {}", e.name, e.ts));
        }
        if !e.dur.is_finite() || e.dur < 0.0 {
            return Err(format!("event {i} ({}): bad duration {}", e.name, e.dur));
        }
        if e.ts < prev_ts {
            return Err(format!(
                "event {i} ({}): timestamps not monotonic ({} after {})",
                e.name, e.ts, prev_ts
            ));
        }
        prev_ts = e.ts;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut top = 10usize;
    let mut require_phases = false;
    let mut require_chunks = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return fail("--top requires a number"),
            },
            "--require-phases" => require_phases = true,
            "--require-chunks" => require_chunks = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return fail(
            "usage: tuner_trace <trace.json> [--top N] [--require-phases] [--require-chunks]",
        );
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let trace: ChromeTrace = match serde_json::from_str(&text) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{path} is not a valid Chrome trace: {e:?}")),
    };
    if let Err(msg) = validate(&trace.traceEvents) {
        return fail(&format!("{path}: {msg}"));
    }
    let meta = &trace.otherData;
    if require_phases && meta.phases.is_empty() {
        return fail(&format!("{path}: no per-phase pool deltas recorded"));
    }
    if require_chunks && meta.chunks.is_empty() {
        return fail(&format!("{path}: no VM chunk profile recorded"));
    }

    println!(
        "# {path}: {} events, {} dropped, {} profiled chunks — valid",
        trace.traceEvents.len(),
        meta.dropped,
        meta.chunks.len()
    );

    // Per-phase pool batch deltas (aggregated by the exporter).
    if !meta.phases.is_empty() {
        println!("\n## per-phase pool batch deltas");
        println!(
            "{:>14} {:>7} {:>10} {:>10} {:>8} {:>9} {:>9}",
            "phase", "spans", "wall ms", "dispatched", "inline", "tasks", "max batch"
        );
        for p in &meta.phases {
            println!(
                "{:>14} {:>7} {:>10.2} {:>10} {:>8} {:>9} {:>9}",
                p.phase,
                p.count,
                p.wall_ns as f64 / 1e6,
                p.dispatched,
                p.inline,
                p.tasks,
                p.max_batch
            );
        }
    }

    // Hottest chunks by instructions retired.
    if !meta.chunks.is_empty() {
        let mut chunks = meta.chunks.clone();
        chunks.sort_by(|a, b| {
            b.instructions()
                .cmp(&a.instructions())
                .then_with(|| a.label.cmp(&b.label))
        });
        println!("\n## hottest chunks (top {top})");
        println!(
            "{:>24} {:>12} {:>14} {:>12} {:>8} {:>8}  top opcodes",
            "chunk", "executions", "instructions", "instr/exec", "fused", "spec"
        );
        for c in chunks.iter().take(top) {
            let instr = c.instructions();
            let fused: u64 = c
                .opcodes
                .iter()
                .enumerate()
                .filter(|&(i, _)| opcode_is_fused(i))
                .map(|(_, &n)| n)
                .sum();
            let spec: u64 = c
                .opcodes
                .iter()
                .enumerate()
                .filter(|&(i, _)| opcode_is_specialized(i))
                .map(|(_, &n)| n)
                .sum();
            let mut by_count: Vec<(usize, u64)> = c
                .opcodes
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .collect();
            by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let names: Vec<String> = by_count
                .iter()
                .take(3)
                .map(|&(i, n)| {
                    let name = OPCODE_NAMES.get(i).copied().unwrap_or("?");
                    format!("{name}:{n}")
                })
                .collect();
            println!(
                "{:>24} {:>12} {:>14} {:>12.1} {:>7.1}% {:>7.1}%  {}",
                c.label,
                c.executions,
                instr,
                if c.executions > 0 {
                    instr as f64 / c.executions as f64
                } else {
                    0.0
                },
                if instr > 0 {
                    100.0 * fused as f64 / instr as f64
                } else {
                    0.0
                },
                if instr > 0 {
                    100.0 * spec as f64 / instr as f64
                } else {
                    0.0
                },
                names.join(" ")
            );
        }
    }

    // Pool utilization: per-thread busy time from executed job spans.
    let jobs: Vec<&ChromeEvent> = trace
        .traceEvents
        .iter()
        .filter(|e| e.name == "pool_job")
        .collect();
    if !jobs.is_empty() {
        let span_start = trace
            .traceEvents
            .iter()
            .map(|e| e.ts)
            .fold(f64::INFINITY, f64::min);
        let span_end = trace
            .traceEvents
            .iter()
            .map(|e| e.ts + e.dur)
            .fold(0.0f64, f64::max);
        let span = (span_end - span_start).max(1e-9);
        let steals = trace
            .traceEvents
            .iter()
            .filter(|e| e.name == "pool_steal")
            .count();
        let mut per_tid: BTreeMap<u32, (u64, f64)> = BTreeMap::new();
        for j in &jobs {
            let slot = per_tid.entry(j.tid).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += j.dur;
        }
        println!(
            "\n## pool utilization ({} jobs, {steals} steals, {:.1} ms trace span)",
            jobs.len(),
            span / 1e3
        );
        println!(
            "{:>8} {:>8} {:>10} {:>6}",
            "thread", "jobs", "busy ms", "util"
        );
        for (tid, (count, busy)) in &per_tid {
            println!(
                "{:>8} {:>8} {:>10.2} {:>5.1}%",
                tid,
                count,
                busy / 1e3,
                100.0 * busy / span
            );
        }
    }

    // Arena round widths (planned draws per batched round).
    let widths: Vec<u64> = trace
        .traceEvents
        .iter()
        .filter(|e| e.name == "arena_round")
        .map(|e| e.args.a)
        .collect();
    if !widths.is_empty() {
        let mut buckets: BTreeMap<u32, u64> = BTreeMap::new();
        for &w in &widths {
            // Power-of-two buckets: 1, 2-3, 4-7, 8-15, …
            buckets
                .entry(u64::BITS - w.max(1).leading_zeros())
                .and_modify(|n| *n += 1)
                .or_insert(1);
        }
        let total: u64 = widths.iter().sum();
        println!(
            "\n## arena round widths ({} rounds, {} draws, mean {:.2})",
            widths.len(),
            total,
            total as f64 / widths.len() as f64
        );
        for (bucket, count) in &buckets {
            let lo = 1u64 << (bucket - 1);
            let hi = (1u64 << bucket) - 1;
            let label = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            println!("{label:>10} draws: {count:>6} rounds");
        }
    }

    ExitCode::SUCCESS
}
