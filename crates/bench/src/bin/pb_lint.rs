//! `pb_lint` — the DSL linter and chunk-verifier front-end.
//!
//! ```text
//! pb_lint [--deny-warnings] <file-or-dir>...
//! ```
//!
//! Each argument is a `.pb` source file or a directory walked
//! recursively for `.pb` files. Every file is parsed, sema-checked,
//! compiled, and run through [`pb_lang::lint_program`]: rule chunks
//! are verified at `O0` and pass-by-pass through the `O2` pipeline,
//! tunable references are checked against the transform's schema, and
//! DSL-level lints (dead accuracy variables, range-collapsed tunables,
//! unconsumed rule products, tree-walking fallbacks) are reported as
//! warnings.
//!
//! Exit codes: `0` clean, `1` any error (or any warning under
//! `--deny-warnings`), `2` usage or I/O failure — so CI can gate on it
//! directly.

use pb_lang::{check_program, lint_program, parse_program, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_sources(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect_sources(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "pb") {
        out.push(path.to_path_buf());
    } else if !path.exists() {
        return Err(format!("{}: no such file or directory", path.display()));
    }
    Ok(())
}

fn line_col(source: &str, offset: usize) -> (usize, usize) {
    pb_lang::token::Span::new(offset, offset).line_col(source)
}

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut roots = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("usage: pb_lint [--deny-warnings] <file-or-dir>...");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("pb_lint: unknown flag `{arg}`");
                return ExitCode::from(2);
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        eprintln!("usage: pb_lint [--deny-warnings] <file-or-dir>...");
        return ExitCode::from(2);
    }

    let mut files = Vec::new();
    for root in &roots {
        if let Err(e) = collect_sources(root, &mut files) {
            eprintln!("pb_lint: {e}");
            return ExitCode::from(2);
        }
    }
    if files.is_empty() {
        eprintln!("pb_lint: no .pb files under {roots:?}");
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pb_lint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let path = file.display();
        let program = match parse_program(&source) {
            Ok(p) => p,
            Err(e) => {
                println!("{path}: error: parse failed: {e}");
                errors += 1;
                continue;
            }
        };
        if let Err(es) = check_program(&program) {
            for e in es {
                let (line, col) = line_col(&source, e.span.start);
                println!("{path}:{line}:{col}: error: {}", e.message);
                errors += 1;
            }
            continue;
        }
        for lint in lint_program(&program) {
            let loc = match lint.span {
                Some(span) => {
                    let (line, col) = line_col(&source, span.start);
                    format!("{path}:{line}:{col}")
                }
                None => format!("{path}"),
            };
            println!("{loc}: {}: {}", lint.severity, lint.message);
            match lint.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
    }

    let failed = errors > 0 || (deny_warnings && warnings > 0);
    println!(
        "pb_lint: {} file(s), {errors} error(s), {warnings} warning(s){}",
        files.len(),
        if failed { " — FAILED" } else { "" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
