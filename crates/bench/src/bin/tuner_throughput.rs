//! Tuner throughput: trials/sec in sequential vs parallel evaluation
//! mode, plus trial-cache effectiveness, for the kmeans and
//! bin-packing tuning workloads.
//!
//! Writes `BENCH_tuner.json` (in the working directory) so the perf
//! trajectory is recorded across PRs, and prints a human-readable
//! summary. Every run also cross-checks the determinism guarantee:
//! the parallel tuned program must equal the sequential one bitwise.
//!
//! Usage: `tuner_throughput [--smoke] [--trace <path>]`
//!
//! `--smoke` shrinks the workloads for CI; the JSON is still written.
//! `--trace <path>` records the whole bench through `pb_trace` and
//! writes a Chrome trace-event file loadable in Perfetto (tracing is
//! decision-neutral, so the bit-identicality cross-check still runs).
//! In either mode the run *gates* the comparison-arena counters on the
//! bin-packing workload: the pair-verdict memo must be hit (no
//! re-tested verdicts) and the mean arena round width must beat the
//! pre-arena baseline (~1.07 draws/round, when only pruning batched
//! and every child-vs-parent draw ran blocking).

use pb_benchmarks::binpacking::ratio_to_accuracy;
use pb_benchmarks::{BinPacking, Clustering};
use pb_config::AccuracyBins;
use pb_runtime::parallel::available_threads;
use pb_runtime::pool::PoolBatchStats;
use pb_runtime::{CostModel, Transform, TransformRunner};
use pb_tuner::{Autotuner, TunerOptions, TuningOutcome};
use serde::Serialize;
use std::time::Instant;

/// `num / den`, or `0.0` when the denominator is zero.
fn rate(num: u64, den: u64) -> f64 {
    if den > 0 {
        num as f64 / den as f64
    } else {
        0.0
    }
}

/// One window of work-stealing-pool batch counters.
#[derive(Debug, Serialize)]
struct PoolWindow {
    dispatched: u64,
    inline: u64,
    tasks: u64,
    max_batch: u64,
    /// Queued jobs executed by a thread of their home shard.
    local_jobs: u64,
    /// Queued jobs executed cross-shard (remote steals, per job).
    remote_jobs: u64,
}

impl From<PoolBatchStats> for PoolWindow {
    fn from(s: PoolBatchStats) -> Self {
        PoolWindow {
            dispatched: s.dispatched,
            inline: s.inline,
            tasks: s.tasks,
            max_batch: s.max_batch,
            local_jobs: s.local_jobs,
            remote_jobs: s.remote_jobs,
        }
    }
}

/// Per-shard counter deltas over the sharded pass (one entry per
/// active shard, from [`Pool::shard_stats`] snapshots).
#[derive(Debug, Serialize)]
struct ShardWindow {
    shard: usize,
    /// Thread slots assigned to the shard (caller slot included).
    threads: usize,
    /// Jobs routed to this shard's injector at submission.
    dispatched: u64,
    /// Jobs this shard's threads ran that were homed here.
    local_jobs: u64,
    /// Jobs this shard's threads ran that were homed elsewhere
    /// (cross-shard steals).
    remote_jobs: u64,
}

/// One workload re-timed with the pool split into shards.
#[derive(Debug, Serialize)]
struct ShardedReport {
    name: String,
    /// Active shard count during the pass.
    shards: usize,
    trials_per_sec: f64,
    /// Best sharded-vs-1-shard throughput ratio across paired
    /// attempts: the gate fails below 0.9 — sharding must never cost
    /// more than 10%.
    relative_throughput: f64,
    /// Whether the sharded run reproduced the 1-shard tuned program
    /// and statistics bitwise (it must — sharding is pure scheduling).
    bit_identical: bool,
    per_shard: Vec<ShardWindow>,
}

/// One timed tuning run.
#[derive(Debug, Serialize)]
struct ModeReport {
    wall_seconds: f64,
    /// Trials actually executed (cache misses + uncached paths).
    trials_executed: u64,
    /// Executed trials per wall-clock second.
    trials_per_sec: f64,
    cache_hits: u64,
    /// Hits served by entries preloaded from a cross-run sidecar
    /// (zero here: the bench runs cold by design).
    cache_hits_warm: u64,
    cache_misses: u64,
    /// Intra-batch duplicates that shared another request's execution
    /// (neither hits nor misses).
    cache_coalesced: u64,
    /// `hits / (hits + warm + misses + coalesced)`: true cache reuse.
    cache_hit_rate: f64,
    /// Pruning arena rounds that issued a trial batch (§5.5.4).
    prune_rounds: u64,
    /// Comparator draws executed through pruning batches.
    prune_draws: u64,
    /// `draws / rounds`: average pruning batch size.
    prune_draws_per_round: f64,
    /// Largest single pruning batch.
    prune_max_batch: u64,
    /// Child-vs-parent merge arena rounds that issued a trial batch.
    merge_rounds: u64,
    /// Comparator draws executed through merge batches.
    merge_draws: u64,
    /// Largest single merge batch.
    merge_max_batch: u64,
    /// Mean comparator draws per arena round, across pruning and
    /// merging (the pre-arena baseline on bin packing was ~1.07, with
    /// merge draws not batched at all).
    arena_mean_round_width: f64,
    /// Widest arena round of the run.
    arena_max_round_width: u64,
    /// Pair-verdict memo lookups across all arena sessions.
    pair_memo_queries: u64,
    /// Lookups answered from a recorded verdict (re-sorts and bracket
    /// replays that neither re-decided nor re-tested).
    pair_memo_hits: u64,
    /// `hits / queries`.
    pair_memo_hit_rate: f64,
    /// Trial attempts that panicked (caught and retried by the
    /// evaluator's fault isolation; zero on these healthy workloads).
    trial_panics: u64,
    /// Trial attempts that overran the soft deadline.
    trial_timeouts: u64,
    /// Trial attempts that reported a non-finite cost.
    trial_nonfinite: u64,
    /// Re-executions triggered by faulting attempts.
    trial_retries: u64,
    /// Trials quarantined after exhausting their retries.
    quarantined: u64,
    /// Every pool batch during this tuning run (trial fan-out plus
    /// kernel-level batches inside trial executions).
    pool_total: PoolWindow,
    /// Pool batches while trial batches were executing (the
    /// evaluator's windows).
    pool_trial: PoolWindow,
    /// Batches outside trial windows (`total − trial`): kernel-level
    /// parallelism the tuner did not directly request.
    pool_kernel_dispatched: u64,
    pool_kernel_inline: u64,
    pool_kernel_tasks: u64,
}

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    max_size: u64,
    sequential: ModeReport,
    parallel: ModeReport,
    /// `parallel.trials_per_sec / sequential.trials_per_sec`.
    speedup: f64,
    /// Whether the two modes produced bitwise-equal tuned programs
    /// and run statistics (they must).
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    threads: usize,
    smoke: bool,
    /// Context for reading the speedup numbers (e.g. flags a
    /// single-thread budget, where parallel mode runs inline and
    /// speedup is ~1.0 by construction).
    note: String,
    workloads: Vec<WorkloadReport>,
    /// The parallel pass re-run with the pool split into shard-local
    /// injectors (one entry per workload).
    sharded: Vec<ShardedReport>,
    /// Cumulative work-stealing pool counters across the whole bench
    /// process (both modes, all workloads): how many batches reached
    /// the queues vs ran inline, and how wide they were.
    pool_batches_dispatched: u64,
    pool_batches_inline: u64,
    pool_tasks: u64,
    pool_max_batch: u64,
    /// Cumulative job-locality counters: queued jobs executed on their
    /// home shard vs drained cross-shard.
    pool_local_jobs: u64,
    pool_remote_jobs: u64,
}

/// Tuning runs are deterministic, so repeated runs produce identical
/// outcomes; we keep the best wall time to damp scheduler noise.
const TIMING_RUNS: usize = 3;

/// PR 4's observed mean pruning batch width on bin packing (the only
/// batched comparator path before the arena): the gate the unified
/// arena must beat.
const PRE_ARENA_MEAN_ROUND_WIDTH: f64 = 1.07;

fn timed_tune<T>(
    transform: T,
    bins: &[f64],
    max_size: u64,
    seed: u64,
    parallel: bool,
) -> (TuningOutcome, ModeReport)
where
    T: Transform + Send + Sync + Copy,
{
    let mut best: Option<(TuningOutcome, f64)> = None;
    for _ in 0..TIMING_RUNS {
        let runner = TransformRunner::new(transform, CostModel::Virtual);
        let mut options = TunerOptions::fast_preset(max_size, seed);
        options.parallel_trials = parallel;
        let start = Instant::now();
        let outcome = Autotuner::new(&runner, AccuracyBins::new(bins.to_vec()), options)
            .tune_outcome()
            .unwrap_or_else(|e| panic!("tuning failed: {e}"));
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        if best.as_ref().map(|(_, w)| wall < *w).unwrap_or(true) {
            best = Some((outcome, wall));
        }
    }
    let (outcome, wall) = best.expect("at least one timing run");
    let stats = outcome.stats;
    let requested =
        stats.cache_hits + stats.cache_hits_warm + stats.cache_misses + stats.cache_coalesced;
    let arena_rounds = stats.prune_rounds + stats.merge_rounds;
    let arena_draws = stats.prune_draws + stats.merge_draws;
    let report = ModeReport {
        wall_seconds: wall,
        trials_executed: stats.trials,
        trials_per_sec: stats.trials as f64 / wall,
        cache_hits: stats.cache_hits,
        cache_hits_warm: stats.cache_hits_warm,
        cache_misses: stats.cache_misses,
        cache_coalesced: stats.cache_coalesced,
        cache_hit_rate: rate(stats.cache_hits, requested),
        prune_rounds: stats.prune_rounds,
        prune_draws: stats.prune_draws,
        prune_draws_per_round: rate(stats.prune_draws, stats.prune_rounds),
        prune_max_batch: stats.prune_max_batch,
        merge_rounds: stats.merge_rounds,
        merge_draws: stats.merge_draws,
        merge_max_batch: stats.merge_max_batch,
        arena_mean_round_width: rate(arena_draws, arena_rounds),
        arena_max_round_width: stats.prune_max_batch.max(stats.merge_max_batch),
        pair_memo_queries: stats.pair_memo_queries,
        pair_memo_hits: stats.pair_memo_hits,
        pair_memo_hit_rate: rate(stats.pair_memo_hits, stats.pair_memo_queries),
        trial_panics: stats.trial_panics,
        trial_timeouts: stats.trial_timeouts,
        trial_nonfinite: stats.trial_nonfinite,
        trial_retries: stats.trial_retries,
        quarantined: stats.quarantined,
        pool_total: outcome.pool.total.into(),
        pool_trial: outcome.pool.trial.into(),
        pool_kernel_dispatched: outcome
            .pool
            .total
            .dispatched
            .saturating_sub(outcome.pool.trial.dispatched),
        pool_kernel_inline: outcome
            .pool
            .total
            .inline
            .saturating_sub(outcome.pool.trial.inline),
        pool_kernel_tasks: outcome
            .pool
            .total
            .tasks
            .saturating_sub(outcome.pool.trial.tasks),
    };
    (outcome, report)
}

fn workload<T>(
    name: &str,
    transform: T,
    bins: &[f64],
    max_size: u64,
) -> (WorkloadReport, TuningOutcome)
where
    T: Transform + Send + Sync + Copy,
{
    let seed = 0x7B5;
    let (seq_outcome, sequential) = timed_tune(transform, bins, max_size, seed, false);
    let (par_outcome, parallel) = timed_tune(transform, bins, max_size, seed, true);
    let bit_identical = seq_outcome.program == par_outcome.program
        && seq_outcome.stats == par_outcome.stats
        && seq_outcome.final_population == par_outcome.final_population;
    assert!(
        bit_identical,
        "{name}: parallel evaluation diverged from sequential"
    );
    let speedup = parallel.trials_per_sec / sequential.trials_per_sec.max(1e-9);
    let report = WorkloadReport {
        name: name.to_string(),
        max_size,
        sequential,
        parallel,
        speedup,
        bit_identical,
    };
    (report, par_outcome)
}

/// Re-times one workload's parallel pass with the pool split into
/// `shards` shard-local injectors and windows the per-shard counters
/// around it. The caller has already set the shard count.
fn sharded_workload<T>(
    name: &str,
    transform: T,
    bins: &[f64],
    max_size: u64,
    baseline: &WorkloadReport,
    baseline_outcome: &TuningOutcome,
) -> ShardedReport
where
    T: Transform + Send + Sync + Copy,
{
    let pool = pb_runtime::Pool::global();
    let target_shards = pool.shards();
    // Wall-clock on a loaded machine is noisy (the smoke workloads run
    // in milliseconds), so measure in pairs: each sharded attempt is
    // compared against the most recent 1-shard timing, and a fresh
    // 1-shard baseline is re-timed between attempts so both sides see
    // the same machine-load epoch. The gate passes if ANY pair keeps
    // the sharded side within 10%; a real scheduling regression fails
    // every pair. Every run must reproduce the 1-shard outcome bitwise
    // regardless.
    let mut per_shard: Vec<ShardWindow> = pool
        .shard_stats()
        .iter()
        .map(|s| ShardWindow {
            shard: s.shard,
            threads: s.threads,
            dispatched: 0,
            local_jobs: 0,
            remote_jobs: 0,
        })
        .collect();
    let mut base_trials_per_sec = baseline.parallel.trials_per_sec;
    let mut best_trials_per_sec = 0.0f64;
    let mut best_ratio = 0.0f64;
    for attempt in 0..3 {
        let before = pool.shard_stats();
        let (outcome, report) = timed_tune(transform, bins, max_size, 0x7B5, true);
        for (acc, (now, then)) in per_shard
            .iter_mut()
            .zip(pool.shard_stats().iter().zip(&before))
        {
            acc.dispatched += now.dispatched - then.dispatched;
            acc.local_jobs += now.local_jobs - then.local_jobs;
            acc.remote_jobs += now.remote_jobs - then.remote_jobs;
        }
        let bit_identical = outcome.program == baseline_outcome.program
            && outcome.stats == baseline_outcome.stats
            && outcome.final_population == baseline_outcome.final_population;
        assert!(
            bit_identical,
            "{name}: sharded evaluation diverged from the 1-shard run \
             (attempt {attempt})"
        );
        best_trials_per_sec = best_trials_per_sec.max(report.trials_per_sec);
        best_ratio = best_ratio.max(report.trials_per_sec / base_trials_per_sec.max(1e-9));
        if best_ratio >= 0.9 {
            break;
        }
        // Re-time the 1-shard side for the next pair.
        pool.set_shards(1);
        let (base_outcome, base_report) = timed_tune(transform, bins, max_size, 0x7B5, true);
        pool.set_shards(target_shards);
        assert!(
            base_outcome.program == baseline_outcome.program
                && base_outcome.stats == baseline_outcome.stats,
            "{name}: 1-shard re-measurement diverged from the original run"
        );
        base_trials_per_sec = base_report.trials_per_sec;
    }
    ShardedReport {
        name: name.to_string(),
        shards: target_shards,
        trials_per_sec: best_trials_per_sec,
        relative_throughput: best_ratio,
        bit_identical: true,
        per_shard,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace requires a path").clone());
    let (kmeans_size, binpack_size) = if smoke { (64, 128) } else { (512, 2048) };

    // Spawn the pool's workers before any timed region.
    let _ = available_threads();
    if trace_path.is_some() {
        pb_trace::enable();
    }

    let binpack_bins = [ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)];
    let (kmeans_report, kmeans_outcome) = workload("kmeans", Clustering, &[0.05, 0.2], kmeans_size);
    let (binpack_report, binpack_outcome) =
        workload("binpacking", BinPacking, &binpack_bins, binpack_size);

    // The sharded pass: split the pool's injector into two shard-local
    // injectors and re-run the parallel pass. Sharding is pure
    // scheduling, so the outcomes must stay bitwise those of the
    // 1-shard pass — and close in throughput (gated below).
    let pool_handle = pb_runtime::Pool::global();
    let initial_shards = pool_handle.shards();
    let sharded_shards = pool_handle.set_shards(2);
    let sharded = vec![
        sharded_workload(
            "kmeans",
            Clustering,
            &[0.05, 0.2],
            kmeans_size,
            &kmeans_report,
            &kmeans_outcome,
        ),
        sharded_workload(
            "binpacking",
            BinPacking,
            &binpack_bins,
            binpack_size,
            &binpack_report,
            &binpack_outcome,
        ),
    ];
    pool_handle.set_shards(initial_shards);
    let workloads = vec![kmeans_report, binpack_report];

    let threads = available_threads();
    let note = if threads < 2 {
        "single-thread pool budget: the parallel path runs inline, so \
         speedup ~1.0 is expected here; run on a multi-core host (or \
         set PB_POOL_THREADS) to measure real parallel speedup"
            .to_string()
    } else {
        format!(
            "pool budget of {threads} threads (1 caller + {} workers)",
            threads - 1
        )
    };
    let pool = pb_runtime::Pool::global().batch_stats();
    let report = Report {
        threads,
        smoke,
        note,
        workloads,
        sharded,
        pool_batches_dispatched: pool.dispatched,
        pool_batches_inline: pool.inline,
        pool_tasks: pool.tasks,
        pool_max_batch: pool.max_batch,
        pool_local_jobs: pool.local_jobs,
        pool_remote_jobs: pool.remote_jobs,
    };

    println!(
        "# tuner throughput ({} threads{})",
        report.threads,
        if smoke { ", smoke" } else { "" }
    );
    println!(
        "{:>12} {:>14} {:>14} {:>9} {:>10} {:>11} {:>10} {:>10}",
        "workload",
        "seq trials/s",
        "par trials/s",
        "speedup",
        "hit rate",
        "mean width",
        "max width",
        "memo hits"
    );
    for w in &report.workloads {
        println!(
            "{:>12} {:>14.0} {:>14.0} {:>8.2}x {:>9.1}% {:>11.2} {:>10} {:>10}",
            w.name,
            w.sequential.trials_per_sec,
            w.parallel.trials_per_sec,
            w.speedup,
            100.0 * w.parallel.cache_hit_rate,
            w.parallel.arena_mean_round_width,
            w.parallel.arena_max_round_width,
            w.parallel.pair_memo_hits,
        );
    }
    println!("\n## sharded pass ({} shards)", report.sharded.len().max(1));
    println!(
        "{:>12} {:>7} {:>14} {:>9} {:>12} {:>13}",
        "workload", "shards", "trials/s", "vs 1sh", "local jobs", "remote jobs"
    );
    for s in &report.sharded {
        let (local, remote) = s.per_shard.iter().fold((0u64, 0u64), |(l, r), w| {
            (l + w.local_jobs, r + w.remote_jobs)
        });
        println!(
            "{:>12} {:>7} {:>14.0} {:>8.2}x {:>12} {:>13}",
            s.name, s.shards, s.trials_per_sec, s.relative_throughput, local, remote
        );
    }

    // Write the artifact before gating so a gate failure still leaves
    // the diagnostic JSON behind.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_tuner.json", &json).expect("write BENCH_tuner.json");
    println!("\nwrote BENCH_tuner.json");

    if let Some(path) = &trace_path {
        let trace = pb_trace::collect();
        std::fs::write(path, trace.chrome_json()).expect("write trace file");
        println!(
            "wrote {path} ({} events, {} dropped)",
            trace.events.len(),
            trace.dropped
        );
    }

    // Gate the arena counters on the workload with real comparator
    // traffic. The pre-arena baseline (PR 4) batched only pruning, at
    // an observed mean of ~1.07 draws/round, with zero pair-verdict
    // reuse and every merge draw blocking.
    let binpack = report
        .workloads
        .iter()
        .find(|w| w.name == "binpacking")
        .expect("binpacking workload runs");
    assert!(
        binpack.parallel.merge_rounds > 0,
        "child-vs-parent merges must run through arena batches"
    );
    assert!(
        binpack.parallel.pair_memo_hit_rate > 0.0,
        "pair-verdict memo must be hit (re-sorts replay verdicts): {:?}",
        binpack.parallel
    );
    assert!(
        binpack.parallel.arena_mean_round_width > PRE_ARENA_MEAN_ROUND_WIDTH,
        "mean arena round width regressed to the pre-arena baseline: {} <= {}",
        binpack.parallel.arena_mean_round_width,
        PRE_ARENA_MEAN_ROUND_WIDTH,
    );
    for w in &report.workloads {
        for mode in [&w.sequential, &w.parallel] {
            assert_eq!(
                (mode.trial_panics, mode.trial_nonfinite, mode.quarantined),
                (0, 0, 0),
                "{}: healthy workloads must never trip fault isolation",
                w.name
            );
        }
    }

    // Gate the sharded pass: splitting the injector must not cost
    // throughput (>10% under the 1-shard parallel pass fails), and the
    // locality-preferring steal order must hold — most jobs should run
    // on their home shard, with the cross-shard (remote-steal) share
    // staying below the local share. The locality gate is skipped on
    // tiny samples and when the pool could not actually split
    // (single-thread budget).
    for s in &report.sharded {
        assert!(
            s.relative_throughput >= 0.9,
            "{}: sharded trials/sec regressed more than 10% below the \
             1-shard baseline: {:.0}/s vs {:.2}x",
            s.name,
            s.trials_per_sec,
            s.relative_throughput,
        );
    }
    if sharded_shards > 1 {
        let (local, remote) = report
            .sharded
            .iter()
            .flat_map(|s| &s.per_shard)
            .fold((0u64, 0u64), |(l, r), w| {
                (l + w.local_jobs, r + w.remote_jobs)
            });
        if local + remote >= 32 {
            assert!(
                remote < local,
                "sharded runs must keep the remote-steal share below the \
                 local share: {remote} jobs drained cross-shard vs {local} run on \
                 their home shard"
            );
        }
    }
}
