//! Regenerates Table 1: algorithm selection and initial `k` for the
//! autotuned k-means benchmark at various accuracy levels (n = 2048 in
//! the paper; configurable below).

use bench::train;
use pb_benchmarks::clustering::{INIT_NAMES, ITERATION_NAMES};
use pb_benchmarks::Clustering;
use pb_config::AccuracyBins;
use pb_runtime::{CostModel, TransformRunner};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);
    let runner = TransformRunner::new(Clustering, CostModel::Virtual);
    let bins = AccuracyBins::new(vec![0.10, 0.20, 0.50, 0.75, 0.95]);
    let tuned = train(&runner, &bins, n, 0x7AB1);
    let schema = runner.schema();

    println!(
        "# Table 1: autotuned k-means choices (n = {n}, k_optimal ~ sqrt(n) = {})",
        (n as f64).sqrt().round() as u64
    );
    println!(
        "{:>9} {:>6} {:>10} {:>16} {:>10}",
        "accuracy", "k", "init", "iteration", "observed"
    );
    for entry in tuned.entries() {
        let k = entry.config.int(schema, "k").unwrap().min(n as i64);
        let init = entry.config.choice(schema, "init", n).unwrap();
        let policy = entry.config.choice(schema, "iteration", n).unwrap();
        let policy_name = match policy {
            1 => {
                let pct = entry.config.int(schema, "stabilize_pct").unwrap();
                format!("{}% stabilize", pct)
            }
            other => ITERATION_NAMES[other.min(2)].to_string(),
        };
        println!(
            "{:>9.2} {:>6} {:>10} {:>16} {:>10.3}",
            entry.target,
            k,
            INIT_NAMES[init.min(1)],
            policy_name,
            entry.observed_accuracy
        );
    }
}
