//! VM throughput: executions/sec of shipped DSL workloads on the
//! tree-walking interpreter and on the register VM at every
//! [`OptLevel`] — `O0` (straight-from-lowering bytecode), `O1`/`O2`
//! (peephole + superinstruction fusion and charge folding; frame
//! reuse and tunable-resolution caching are always on above `O0`),
//! and `O3` (the typed specialization tier: facts-directed unchecked
//! indexing, loop-invariant shape hoisting, precomputed callee
//! binding plans). The engine list derives from [`OptLevel::ALL`], so
//! a new level shows up here — and in the gates — by construction.
//!
//! Writes `BENCH_vm.json` (in the working directory) so the per-trial
//! cost trajectory is recorded across PRs, and prints a human-readable
//! summary. Every run cross-checks bitwise-equal outputs of every
//! engine against the tree-walker before timing (recorded per level
//! in the JSON), and the process exits non-zero if a level regresses
//! its gate — the CI smoke regression gate.
//!
//! Usage: `vm_opt [--smoke] [--trace <path>]`
//!
//! `--smoke` shrinks the measured run counts for CI; the JSON is
//! still written. `--trace <path>` turns on `pb_trace` (including the
//! VM's per-chunk opcode profiling) and writes a Chrome trace-event
//! file whose metadata carries the chunk execution profile; outputs
//! stay bit-identical, only the wall times carry the profiling cost.

use pb_lang::interp::Value;
use pb_lang::{check_program, extract_schema, parse_program, Interpreter, OptLevel};
use pb_runtime::ExecCtx;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

/// The Figure-3 kmeans program: choice-site rules, 2-D indexing,
/// accuracy-variable-sized intermediates, `for_enough` — the
/// dispatch-loop shape autotuning trials spend their time in.
const KMEANS: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 64
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = i * cols(p) / cols(c);
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                for (i in 0 .. len(a)) {
                    a[i] = i % cols(c);
                }
            }
        }
    }
    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) {
            acc = 1;
        }
    }
"#;

/// Scalar accumulator refinement: the `for_enough`/`either` shape
/// whose `e = e / 2; w = w + 1` bodies fuse into slot
/// superinstructions.
const REFINE: &str = r#"
    transform refine
    accuracy_metric refineacc
    from In[n]
    to Err, Work
    {
        to (Err e, Work w) from (In a) {
            e = 1;
            for_enough {
                either {
                    e = e / 2;
                    w = w + 1;
                } or {
                    e = e / 4;
                    w = w + 10;
                }
            }
        }
    }
    transform refineacc
    from Err, In[n]
    to Accuracy
    {
        to (Accuracy acc) from (Err e, In a) {
            acc = 0 - log(e) / log(10);
        }
    }
"#;

/// Bin packing (same program as `examples/dsl/binpacking.pb`): an
/// `either` choice in a hot indexed loop over rank-1 arrays — the
/// bounds-check-dominated shape the `O3` unchecked forms target.
const BINPACK: &str = r#"
    transform binpack
    accuracy_metric binpackacc
    from Sizes[n]
    to Bins[n], Used
    {
        to (Bins b, Used u) from (Sizes s) {
            u = 1;
            let fill = 0;
            for (i in 0 .. len(s)) {
                either {
                    if (fill + s[i] > 1) {
                        u = u + 1;
                        fill = 0;
                    }
                    b[i] = u - 1;
                    fill = fill + s[i];
                } or {
                    b[i] = i % u;
                }
            }
        }
    }
    transform binpackacc
    from Bins[n], Used, Sizes[n]
    to Accuracy
    {
        to (Accuracy acc) from (Bins b, Used u, Sizes s) {
            acc = len(s) / max(u, 1);
        }
    }
"#;

#[derive(Debug, Serialize)]
struct EngineReport {
    wall_seconds: f64,
    runs: u64,
    runs_per_sec: f64,
}

/// One VM optimization level's measurement.
#[derive(Debug, Serialize)]
struct LevelReport {
    /// The level (`"O0"` .. `"O3"`).
    level: String,
    wall_seconds: f64,
    runs: u64,
    runs_per_sec: f64,
    /// This level's outputs were bitwise equal to the tree-walker's.
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    /// Input size (points / signal length).
    n: u64,
    interp: EngineReport,
    /// One entry per [`OptLevel::ALL`] member, in order.
    levels: Vec<LevelReport>,
    /// `O0 runs_per_sec / interp.runs_per_sec`.
    vm_over_interp: f64,
    /// `O2 / O0` — the classic optimizer pipeline's win.
    opt_over_vm: f64,
    /// `O3 / O2` — the typed specialization tier's win.
    spec_over_opt: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    workloads: Vec<WorkloadReport>,
}

fn outputs_eq(a: &HashMap<String, Value>, b: &HashMap<String, Value>) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(k, v)| b.get(k).map(|w| v.bits_eq(w)).unwrap_or(false))
}

struct Workload {
    name: &'static str,
    src: &'static str,
    transform: &'static str,
    n: u64,
    configure: fn(&pb_config::Schema, &mut pb_config::Config),
    inputs: fn(u64) -> HashMap<String, Value>,
}

/// Timed executions per measurement batch (scaled down by `--smoke`).
const BATCHES: usize = 4;

/// One timed pass of `runs` executions on one engine.
fn time_batch(
    interp: &Interpreter,
    transform: &str,
    schema: &pb_config::Schema,
    config: &pb_config::Config,
    inputs: &HashMap<String, Value>,
    n: u64,
    runs: u64,
) -> f64 {
    let start = Instant::now();
    for seed in 0..runs {
        let mut ctx = ExecCtx::new(schema, config, n, seed);
        std::hint::black_box(interp.run(transform, inputs, &mut ctx).expect("runs"));
    }
    start.elapsed().as_secs_f64().max(1e-9)
}

fn run_workload(w: &Workload, runs: u64) -> WorkloadReport {
    let program = parse_program(w.src).expect("parses");
    check_program(&program).expect("well-formed");
    let schema = extract_schema(&program, w.transform);
    let mut config = schema.default_config();
    (w.configure)(&schema, &mut config);
    let inputs = (w.inputs)(w.n);

    let tree = Interpreter::new(program.clone());
    let vms: Vec<(OptLevel, Interpreter)> = OptLevel::ALL
        .iter()
        .map(|&level| (level, Interpreter::new_compiled_at(program.clone(), level)))
        .collect();
    let (compiled, total) = vms[0].1.compiled().expect("compiled").coverage();
    assert_eq!(
        compiled, total,
        "{}: uncompiled rules on the hot path",
        w.name
    );

    // Warm each engine (frames, caches, branch predictors) and collect
    // its output for the cross-engine check against the tree-walker.
    let run_once = |e: &Interpreter| {
        let mut ctx = ExecCtx::new(&schema, &config, w.n, 7);
        e.run(w.transform, &inputs, &mut ctx).expect("runs")
    };
    let reference = run_once(&tree);
    let identical: Vec<bool> = vms
        .iter()
        .map(|(_, e)| outputs_eq(&reference, &run_once(e)))
        .collect();
    for ((level, _), &ok) in vms.iter().zip(&identical) {
        assert!(ok, "{}: {level:?} diverged from the tree-walker", w.name);
    }

    // Engines interleave within each measurement round so ambient
    // slowdowns hit all of them alike; best-of-rounds per engine then
    // yields stable ratios even on busy single-core hosts.
    let mut best = vec![f64::INFINITY; 1 + vms.len()];
    for _ in 0..BATCHES {
        let engines = std::iter::once(&tree).chain(vms.iter().map(|(_, e)| e));
        for (slot, engine) in engines.enumerate() {
            let t = time_batch(engine, w.transform, &schema, &config, &inputs, w.n, runs);
            best[slot] = best[slot].min(t);
        }
    }
    let interp = EngineReport {
        wall_seconds: best[0],
        runs,
        runs_per_sec: runs as f64 / best[0],
    };
    let levels: Vec<LevelReport> = vms
        .iter()
        .zip(&best[1..])
        .zip(&identical)
        .map(|(((level, _), &wall), &bit_identical)| LevelReport {
            level: format!("{level:?}"),
            wall_seconds: wall,
            runs,
            runs_per_sec: runs as f64 / wall,
            bit_identical,
        })
        .collect();
    let per = |l: OptLevel| {
        let i = OptLevel::ALL
            .iter()
            .position(|&x| x == l)
            .expect("level present");
        levels[i].runs_per_sec
    };

    WorkloadReport {
        name: w.name.to_string(),
        n: w.n,
        vm_over_interp: per(OptLevel::O0) / interp.runs_per_sec.max(1e-9),
        opt_over_vm: per(OptLevel::O2) / per(OptLevel::O0).max(1e-9),
        spec_over_opt: per(OptLevel::O3) / per(OptLevel::O2).max(1e-9),
        interp,
        levels,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace requires a path").clone());
    if trace_path.is_some() {
        pb_trace::enable();
    }
    let runs: u64 = if smoke { 60 } else { 600 };

    let workloads = [
        Workload {
            name: "kmeans",
            src: KMEANS,
            transform: "kmeans",
            n: 256,
            configure: |schema, config| {
                config
                    .set_by_name(schema, "k", pb_config::Value::Int(16))
                    .unwrap();
                config
                    .set_by_name(schema, "for_enough_0", pb_config::Value::Int(100))
                    .unwrap();
            },
            inputs: |n| {
                [(
                    "Points".to_string(),
                    Value::Arr2 {
                        rows: 2,
                        cols: n as usize,
                        data: (0..2 * n as usize)
                            .map(|i| (i as f64 * 0.37).sin() * 100.0)
                            .collect(),
                    },
                )]
                .into()
            },
        },
        Workload {
            name: "refine",
            src: REFINE,
            transform: "refine",
            n: 16,
            configure: |schema, config| {
                config
                    .set_by_name(schema, "for_enough_0", pb_config::Value::Int(400))
                    .unwrap();
            },
            inputs: |n| [("In".to_string(), Value::Arr1(vec![0.0; n as usize]))].into(),
        },
        Workload {
            name: "binpacking",
            src: BINPACK,
            transform: "binpack",
            n: 512,
            configure: |_, _| {},
            inputs: |n| {
                [(
                    "Sizes".to_string(),
                    Value::Arr1(
                        (0..n as usize)
                            .map(|i| 0.05 + 0.9 * ((i as f64 * 0.61).sin() * 0.5 + 0.5))
                            .collect(),
                    ),
                )]
                .into()
            },
        },
    ];

    let report = Report {
        smoke,
        workloads: workloads.iter().map(|w| run_workload(w, runs)).collect(),
    };

    println!(
        "# VM throughput ({} runs/engine{})",
        runs,
        if smoke { ", smoke" } else { "" }
    );
    println!(
        "{:>10} {:>13} {:>13} {:>13} {:>13} {:>10} {:>9} {:>9}",
        "workload", "interp/s", "O0/s", "O2/s", "O3/s", "vm/interp", "opt/vm", "spec/opt"
    );
    for w in &report.workloads {
        let rate = |name: &str| {
            w.levels
                .iter()
                .find(|l| l.level == name)
                .map(|l| l.runs_per_sec)
                .unwrap_or(0.0)
        };
        println!(
            "{:>10} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>9.2}x {:>8.2}x {:>8.2}x",
            w.name,
            w.interp.runs_per_sec,
            rate("O0"),
            rate("O2"),
            rate("O3"),
            w.vm_over_interp,
            w.opt_over_vm,
            w.spec_over_opt,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("\nwrote BENCH_vm.json");

    if let Some(path) = &trace_path {
        let trace = pb_trace::collect();
        std::fs::write(path, trace.chrome_json()).expect("write trace file");
        println!(
            "wrote {path} ({} events, {} profiled chunks)",
            trace.events.len(),
            trace.chunks.len()
        );
    }

    // Regression gate. Smoke (CI) runs only require each tier to hold
    // (within noise) what the tier below delivers — shared runners are
    // too noisy for more. Full runs additionally protect the kmeans
    // headline (README claims >= 1.5x; gate at 1.3x so honest jitter
    // does not flake) and require the specialization tier to win
    // outright on most workloads.
    let mut spec_wins = 0;
    for w in &report.workloads {
        assert!(
            w.opt_over_vm >= 0.95,
            "{}: VM+opt regressed below the VM baseline ({:.2}x)",
            w.name,
            w.opt_over_vm
        );
        assert!(
            w.spec_over_opt >= 0.9,
            "{}: O3 regressed below O2 ({:.2}x)",
            w.name,
            w.spec_over_opt
        );
        if w.spec_over_opt > 1.0 {
            spec_wins += 1;
        }
        if !smoke && w.name == "kmeans" {
            assert!(
                w.opt_over_vm >= 1.3,
                "kmeans: VM+opt headline regressed ({:.2}x < 1.3x)",
                w.opt_over_vm
            );
        }
    }
    if !smoke {
        assert!(
            spec_wins >= 2,
            "specialization won on only {spec_wins}/{} workloads",
            report.workloads.len()
        );
    }
}
