//! VM throughput: executions/sec of shipped DSL workloads on the
//! tree-walking interpreter, the register VM on straight-from-lowering
//! bytecode (`O0`), and the VM behind the full optimizer pipeline
//! (`O2` — superinstruction fusion, charge folding, frame reuse and
//! tunable-resolution caching are always on; only the bytecode level
//! varies).
//!
//! Writes `BENCH_vm.json` (in the working directory) so the per-trial
//! cost trajectory is recorded across PRs, and prints a human-readable
//! summary. Every run cross-checks bit-identical outputs across all
//! three engines before timing, and the process exits non-zero if the
//! optimized VM fails to at least match the unoptimized VM — the CI
//! smoke regression gate.
//!
//! Usage: `vm_opt [--smoke] [--trace <path>]`
//!
//! `--smoke` shrinks the measured run counts for CI; the JSON is
//! still written. `--trace <path>` turns on `pb_trace` (including the
//! VM's per-chunk opcode profiling) and writes a Chrome trace-event
//! file whose metadata carries the chunk execution profile; outputs
//! stay bit-identical, only the wall times carry the profiling cost.

use pb_lang::interp::Value;
use pb_lang::{check_program, extract_schema, parse_program, Interpreter, OptLevel};
use pb_runtime::ExecCtx;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

/// The Figure-3 kmeans program: choice-site rules, 2-D indexing,
/// accuracy-variable-sized intermediates, `for_enough` — the
/// dispatch-loop shape autotuning trials spend their time in.
const KMEANS: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 64
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = i * cols(p) / cols(c);
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                for (i in 0 .. len(a)) {
                    a[i] = i % cols(c);
                }
            }
        }
    }
    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) {
            acc = 1;
        }
    }
"#;

/// Scalar accumulator refinement: the `for_enough`/`either` shape
/// whose `e = e / 2; w = w + 1` bodies fuse into slot
/// superinstructions.
const REFINE: &str = r#"
    transform refine
    accuracy_metric refineacc
    from In[n]
    to Err, Work
    {
        to (Err e, Work w) from (In a) {
            e = 1;
            for_enough {
                either {
                    e = e / 2;
                    w = w + 1;
                } or {
                    e = e / 4;
                    w = w + 10;
                }
            }
        }
    }
    transform refineacc
    from Err, In[n]
    to Accuracy
    {
        to (Accuracy acc) from (Err e, In a) {
            acc = 0 - log(e) / log(10);
        }
    }
"#;

#[derive(Debug, Serialize)]
struct EngineReport {
    wall_seconds: f64,
    runs: u64,
    runs_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct WorkloadReport {
    name: String,
    /// Input size (points / signal length).
    n: u64,
    interp: EngineReport,
    vm: EngineReport,
    vm_opt: EngineReport,
    /// `vm.runs_per_sec / interp.runs_per_sec`.
    vm_over_interp: f64,
    /// `vm_opt.runs_per_sec / vm.runs_per_sec` — the optimizer's win.
    opt_over_vm: f64,
    /// All three engines produced bitwise-equal outputs.
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    workloads: Vec<WorkloadReport>,
}

fn outputs_eq(a: &HashMap<String, Value>, b: &HashMap<String, Value>) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(k, v)| b.get(k).map(|w| v.bits_eq(w)).unwrap_or(false))
}

struct Workload {
    name: &'static str,
    src: &'static str,
    transform: &'static str,
    n: u64,
    configure: fn(&pb_config::Schema, &mut pb_config::Config),
    inputs: fn(u64) -> HashMap<String, Value>,
}

/// Timed executions per measurement batch (scaled down by `--smoke`).
const BATCHES: usize = 4;

/// One timed pass of `runs` executions on one engine.
fn time_batch(
    interp: &Interpreter,
    transform: &str,
    schema: &pb_config::Schema,
    config: &pb_config::Config,
    inputs: &HashMap<String, Value>,
    n: u64,
    runs: u64,
) -> f64 {
    let start = Instant::now();
    for seed in 0..runs {
        let mut ctx = ExecCtx::new(schema, config, n, seed);
        std::hint::black_box(interp.run(transform, inputs, &mut ctx).expect("runs"));
    }
    start.elapsed().as_secs_f64().max(1e-9)
}

fn run_workload(w: &Workload, runs: u64) -> WorkloadReport {
    let program = parse_program(w.src).expect("parses");
    check_program(&program).expect("well-formed");
    let schema = extract_schema(&program, w.transform);
    let mut config = schema.default_config();
    (w.configure)(&schema, &mut config);
    let inputs = (w.inputs)(w.n);

    let tree = Interpreter::new(program.clone());
    let vm0 = Interpreter::new_compiled_at(program.clone(), OptLevel::O0);
    let vm2 = Interpreter::new_compiled_at(program, OptLevel::O2);
    let (compiled, total) = vm2.compiled().expect("compiled").coverage();
    assert_eq!(
        compiled, total,
        "{}: uncompiled rules on the hot path",
        w.name
    );
    let engines = [&tree, &vm0, &vm2];

    // Warm each engine (frames, caches, branch predictors) and collect
    // its reference output for the cross-engine check.
    let outs: Vec<HashMap<String, Value>> = engines
        .iter()
        .map(|e| {
            let mut ctx = ExecCtx::new(&schema, &config, w.n, 7);
            e.run(w.transform, &inputs, &mut ctx).expect("runs")
        })
        .collect();
    let bit_identical = outputs_eq(&outs[0], &outs[1]) && outputs_eq(&outs[0], &outs[2]);
    assert!(bit_identical, "{}: engines diverged", w.name);

    // Engines interleave within each measurement round so ambient
    // slowdowns hit all of them alike; best-of-rounds per engine then
    // yields stable ratios even on busy single-core hosts.
    let mut best = [f64::INFINITY; 3];
    for _ in 0..BATCHES {
        for (slot, engine) in engines.iter().enumerate() {
            let t = time_batch(engine, w.transform, &schema, &config, &inputs, w.n, runs);
            best[slot] = best[slot].min(t);
        }
    }
    let report = |wall: f64| EngineReport {
        wall_seconds: wall,
        runs,
        runs_per_sec: runs as f64 / wall,
    };
    let (interp, vm, vm_opt) = (report(best[0]), report(best[1]), report(best[2]));

    WorkloadReport {
        name: w.name.to_string(),
        n: w.n,
        vm_over_interp: vm.runs_per_sec / interp.runs_per_sec.max(1e-9),
        opt_over_vm: vm_opt.runs_per_sec / vm.runs_per_sec.max(1e-9),
        interp,
        vm,
        vm_opt,
        bit_identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace requires a path").clone());
    if trace_path.is_some() {
        pb_trace::enable();
    }
    let runs: u64 = if smoke { 60 } else { 600 };

    let workloads = [
        Workload {
            name: "kmeans",
            src: KMEANS,
            transform: "kmeans",
            n: 256,
            configure: |schema, config| {
                config
                    .set_by_name(schema, "k", pb_config::Value::Int(16))
                    .unwrap();
                config
                    .set_by_name(schema, "for_enough_0", pb_config::Value::Int(100))
                    .unwrap();
            },
            inputs: |n| {
                [(
                    "Points".to_string(),
                    Value::Arr2 {
                        rows: 2,
                        cols: n as usize,
                        data: (0..2 * n as usize)
                            .map(|i| (i as f64 * 0.37).sin() * 100.0)
                            .collect(),
                    },
                )]
                .into()
            },
        },
        Workload {
            name: "refine",
            src: REFINE,
            transform: "refine",
            n: 16,
            configure: |schema, config| {
                config
                    .set_by_name(schema, "for_enough_0", pb_config::Value::Int(400))
                    .unwrap();
            },
            inputs: |n| [("In".to_string(), Value::Arr1(vec![0.0; n as usize]))].into(),
        },
    ];

    let report = Report {
        smoke,
        workloads: workloads.iter().map(|w| run_workload(w, runs)).collect(),
    };

    println!(
        "# VM throughput ({} runs/engine{})",
        runs,
        if smoke { ", smoke" } else { "" }
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "workload", "interp/s", "vm/s", "vm+opt/s", "vm/interp", "opt/vm"
    );
    for w in &report.workloads {
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>14.0} {:>11.2}x {:>11.2}x",
            w.name,
            w.interp.runs_per_sec,
            w.vm.runs_per_sec,
            w.vm_opt.runs_per_sec,
            w.vm_over_interp,
            w.opt_over_vm,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("\nwrote BENCH_vm.json");

    if let Some(path) = &trace_path {
        let trace = pb_trace::collect();
        std::fs::write(path, trace.chrome_json()).expect("write trace file");
        println!(
            "wrote {path} ({} events, {} profiled chunks)",
            trace.events.len(),
            trace.chunks.len()
        );
    }

    // Regression gate. Smoke (CI) runs only require the optimized VM
    // to match the baseline — shared runners are too noisy for more.
    // Full runs additionally protect the kmeans headline (README
    // claims >= 1.5x; gate at 1.3x so honest jitter does not flake).
    for w in &report.workloads {
        assert!(
            w.opt_over_vm >= 0.95,
            "{}: VM+opt regressed below the VM baseline ({:.2}x)",
            w.name,
            w.opt_over_vm
        );
        if !smoke && w.name == "kmeans" {
            assert!(
                w.opt_over_vm >= 1.3,
                "kmeans: VM+opt headline regressed ({:.2}x < 1.3x)",
                w.opt_over_vm
            );
        }
    }
}
