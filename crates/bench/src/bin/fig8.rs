//! Regenerates Fig. 8: tuned multigrid cycle shapes for the Helmholtz
//! benchmark, per (required accuracy, input size).
//!
//! The execution trace of the tuned configuration is printed as an
//! indented tree: each `n<size>` scope is one recursion level, `relax`
//! marks SOR relaxations (the dots and dashed arrows of the paper's
//! diagrams), `direct` marks a bottom direct solve (the solid arrows),
//! and `estimate` marks the full-multigrid estimation phase.

use bench::train;
use pb_benchmarks::Helmholtz3d;
use pb_config::AccuracyBins;
use pb_runtime::{CostModel, TraceNode, TransformRunner, TrialRunner};

fn render(node: &TraceNode, depth: usize, out: &mut String) {
    use std::fmt::Write;
    if !node.label.is_empty() {
        let mut marks = String::new();
        let relax = node.points.iter().filter(|p| *p == "relax").count();
        for _ in 0..relax {
            marks.push('•');
        }
        if node.points.iter().any(|p| p == "direct") {
            marks.push_str(" direct");
        }
        let _ = writeln!(out, "{}{} {}", "  ".repeat(depth), node.label, marks);
    }
    for child in &node.children {
        render(child, depth + usize::from(!node.label.is_empty()), out);
    }
}

fn main() {
    let sizes: &[u64] = &[3, 7, 15];
    let accuracies = [1.0, 3.0, 5.0, 7.0, 9.0];
    let runner = TransformRunner::new(Helmholtz3d, CostModel::Virtual);
    let bins = AccuracyBins::new(accuracies.to_vec());
    let tuned = train(&runner, &bins, 7, 0xF18);

    println!("# Fig 8: tuned Helmholtz cycle shapes");
    println!("# (• = one SOR relaxation at that level; `direct` = bottom direct solve)");
    for entry in tuned.entries() {
        for &n in sizes {
            let (outcome, trace) = runner.run_traced(&entry.config, n, 0x5EED);
            let mut shape = String::new();
            render(&trace, 0, &mut shape);
            println!(
                "\n== required 10^{:.0} residual reduction, size {n} (achieved {:.2} orders, cost {:.2e}) ==",
                entry.target, outcome.accuracy, outcome.virtual_cost
            );
            print!("{shape}");
        }
    }
}
