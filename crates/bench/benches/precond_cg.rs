//! Criterion benchmarks for the Fig. 6(f) kernel: conjugate gradients
//! with the three preconditioner choices at a fixed iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_benchmarks::precond::METHOD_NAMES;
use pb_benchmarks::Preconditioner;
use pb_config::{DecisionTree, Value};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_methods(c: &mut Criterion) {
    let t = Preconditioner;
    let schema = t.schema();
    let mut rng = SmallRng::seed_from_u64(1);
    let input = t.generate_input(24, &mut rng);

    let mut group = c.benchmark_group("pcg_24x24_50iters");
    group.sample_size(10);
    for (method, name) in METHOD_NAMES.iter().enumerate() {
        let mut config = schema.default_config();
        config
            .set_by_name(&schema, "method", Value::Tree(DecisionTree::single(method)))
            .unwrap();
        config
            .set_by_name(&schema, "iterations", Value::Int(50))
            .unwrap();
        config
            .set_by_name(&schema, "poly_degree", Value::Int(3))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                let mut ctx = ExecCtx::new(&schema, cfg, 24, 0);
                std::hint::black_box(t.execute(&input, &mut ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
