//! Criterion benchmarks for the autotuner itself: a complete tuning
//! run on a synthetic benchmark, plus the comparison primitive from
//! §5.5.1.

use criterion::{criterion_group, criterion_main, Criterion};
use pb_config::{AccuracyBins, Schema};
use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
use pb_stats::{Comparator, OnlineStats};
use pb_tuner::{Autotuner, TunerOptions};
use rand::rngs::SmallRng;

struct Iterate;

impl Transform for Iterate {
    type Input = ();
    type Output = f64;
    fn name(&self) -> &str {
        "iterate"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("iterate");
        s.add_accuracy_variable("iters", 1, 4096);
        s.add_cutoff("block", 1, 1024);
        s
    }
    fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
    fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
        let iters = ctx.param("iters").unwrap() as f64;
        ctx.charge(iters * ctx.size() as f64);
        1.0 - 1.0 / (1.0 + iters)
    }
    fn accuracy(&self, _i: &(), o: &f64) -> f64 {
        *o
    }
}

fn bench_tuner(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuner");
    group.sample_size(10);
    group.bench_function("full_tune_2_bins", |b| {
        b.iter(|| {
            let runner = TransformRunner::new(Iterate, CostModel::Virtual);
            let bins = AccuracyBins::new(vec![0.5, 0.99]);
            std::hint::black_box(
                Autotuner::new(&runner, bins, TunerOptions::fast_preset(16, 1))
                    .tune()
                    .unwrap(),
            )
        })
    });
    group.bench_function("adaptive_comparison", |b| {
        b.iter(|| {
            let comparator = Comparator::default();
            let mut a = OnlineStats::new();
            let mut bb = OnlineStats::new();
            let (mut i, mut j) = (0u64, 0u64);
            std::hint::black_box(comparator.compare(
                &mut a,
                &mut || {
                    i += 1;
                    1.0 + (i % 7) as f64 * 0.01
                },
                &mut bb,
                &mut || {
                    j += 1;
                    1.05 + (j % 5) as f64 * 0.01
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
