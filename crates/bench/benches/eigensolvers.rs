//! Criterion benchmarks for the Fig. 6(d) kernel: the three
//! eigensolver backends of the SVD, full spectrum versus top-k
//! bisection — the crossover the image-compression benchmark's
//! autotuner exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_linalg::svd::{svd_top_k, SvdMethod};
use pb_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_svd(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let a = Matrix::random_uniform(64, 64, &mut rng);

    let mut group = c.benchmark_group("svd_full_rank_n64");
    group.sample_size(10);
    for (method, name) in [
        (SvdMethod::Qr, "qr"),
        (SvdMethod::DivideAndConquer, "divide_and_conquer"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, &m| {
            b.iter(|| std::hint::black_box(svd_top_k(&a, 64, m).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("svd_top_k_bisection_n64");
    group.sample_size(10);
    for k in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| std::hint::black_box(svd_top_k(&a, k, SvdMethod::Bisection).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
