//! Criterion micro-benchmarks for the Fig. 6(a)/Fig. 7 kernels: the
//! bin-packing heuristics at a fixed input size. The asymptotic gap
//! between NextFit (`O(n)`) and the search-based heuristics
//! (`O(n·bins)`) is the engine behind the paper's four-orders-of-
//! magnitude speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_benchmarks::binpacking::{generate_input, pack_with, ALGORITHM_NAMES};
use pb_benchmarks::BinPacking;
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_algorithms(c: &mut Criterion) {
    let t = BinPacking;
    let schema = t.schema();
    let config = schema.default_config();
    let mut rng = SmallRng::seed_from_u64(1);
    let input = generate_input(4096, &mut rng);

    let mut group = c.benchmark_group("binpacking_n4096");
    group.sample_size(10);
    for (alg, name) in ALGORITHM_NAMES.iter().enumerate() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &alg, |b, &alg| {
            b.iter(|| {
                let mut ctx = ExecCtx::new(&schema, &config, 4096, 0);
                std::hint::black_box(pack_with(alg, &input.items, 2, usize::MAX, &mut ctx))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("binpacking_nextfit_scaling");
    group.sample_size(10);
    for size in [1024u64, 4096, 16384] {
        let mut rng = SmallRng::seed_from_u64(2);
        let input = generate_input(size, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut ctx = ExecCtx::new(&schema, &config, size, 0);
                std::hint::black_box(pack_with(7, &input.items, 2, usize::MAX, &mut ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
