//! Criterion benchmarks for the Fig. 6(c)/(e)/Fig. 8 kernels: the
//! three Poisson building blocks (SOR sweep, V-cycle, banded direct
//! solve) and the Helmholtz operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_multigrid::vcycle::{vcycle, VcycleOptions};
use pb_multigrid::{poisson2d, Grid2d, Grid3d, HelmholtzProblem};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_poisson_blocks(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let b31 = Grid2d::random_uniform(31, -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("poisson_blocks_n31");
    group.sample_size(10);
    group.bench_function("sor_sweep", |bench| {
        bench.iter(|| {
            let mut u = Grid2d::zeros(31);
            poisson2d::sor_sweep(&mut u, &b31, 1.2);
            std::hint::black_box(u)
        })
    });
    group.bench_function("vcycle", |bench| {
        bench.iter(|| {
            let mut u = Grid2d::zeros(31);
            vcycle(&mut u, &b31, &VcycleOptions::default());
            std::hint::black_box(u)
        })
    });
    group.bench_function("direct_band_cholesky", |bench| {
        bench.iter(|| std::hint::black_box(poisson2d::direct_solve(&b31)))
    });
    group.finish();
}

fn bench_helmholtz_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("helmholtz3d_sor_sweep");
    group.sample_size(10);
    for n in [7usize, 15] {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = HelmholtzProblem::random(n, 1.0, 1.0, &mut rng);
        let f = Grid3d::random_uniform(n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut phi = Grid3d::zeros(n);
                p.sor_sweep(&mut phi, &f, 1.2);
                std::hint::black_box(phi)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poisson_blocks, bench_helmholtz_operator);
criterion_main!(benches);
