//! Criterion benchmarks for the Fig. 6(b)/Table 1 kernel: k-means
//! under the tuned iteration policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_benchmarks::clustering::ITERATION_NAMES;
use pb_benchmarks::Clustering;
use pb_config::{DecisionTree, Value};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_policies(c: &mut Criterion) {
    let t = Clustering;
    let schema = t.schema();
    let mut rng = SmallRng::seed_from_u64(1);
    let input = t.generate_input(512, &mut rng);

    let mut group = c.benchmark_group("kmeans_n512_k22");
    group.sample_size(10);
    for (policy, name) in ITERATION_NAMES.iter().enumerate() {
        let mut config = schema.default_config();
        config.set_by_name(&schema, "k", Value::Int(22)).unwrap();
        config
            .set_by_name(&schema, "init", Value::Tree(DecisionTree::single(1)))
            .unwrap();
        config
            .set_by_name(
                &schema,
                "iteration",
                Value::Tree(DecisionTree::single(policy)),
            )
            .unwrap();
        config
            .set_by_name(&schema, "max_iters", Value::Int(100))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                let mut ctx = ExecCtx::new(&schema, cfg, 512, 0);
                std::hint::black_box(t.execute(&input, &mut ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
