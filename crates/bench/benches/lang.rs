//! Criterion benchmarks for the language front-end: lexing, parsing,
//! checking, schema extraction, and interpretation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use pb_lang::{check_program, extract_schema, parse_program};
use pb_runtime::ExecCtx;
use std::collections::HashMap;

const SOURCE: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 4096
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = i * cols(p) / cols(c);
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                for (i in 0 .. len(a)) { a[i] = i % cols(c); }
            }
        }
    }
    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) { acc = 1; }
    }
"#;

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang_frontend");
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(parse_program(SOURCE).unwrap()))
    });
    let program = parse_program(SOURCE).unwrap();
    group.bench_function("check", |b| {
        b.iter(|| {
            check_program(&program).unwrap();
            std::hint::black_box(())
        })
    });
    group.bench_function("extract_schema", |b| {
        b.iter(|| std::hint::black_box(extract_schema(&program, "kmeans")))
    });
    group.finish();

    let mut group = c.benchmark_group("lang_interp");
    group.sample_size(10);
    let schema = extract_schema(&program, "kmeans");
    let mut config = schema.default_config();
    config
        .set_by_name(&schema, "k", pb_config::Value::Int(8))
        .unwrap();
    let interp = pb_lang::Interpreter::new(program);
    let n = 256usize;
    let mut inputs = HashMap::new();
    inputs.insert(
        "Points".to_string(),
        pb_lang::Value::Arr2 {
            rows: 2,
            cols: n,
            data: (0..2 * n).map(|i| i as f64).collect(),
        },
    );
    group.bench_function("kmeans_n256", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&schema, &config, n as u64, 1);
            std::hint::black_box(interp.run("kmeans", &inputs, &mut ctx).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
