//! Criterion benchmarks for the language front-end: lexing, parsing,
//! checking, schema extraction, and execution throughput — the last
//! head-to-head between the tree-walking interpreter and the bytecode
//! register VM on the same DSL programs, so the compile/vm speedup is
//! tracked in the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use pb_lang::{check_program, extract_schema, parse_program};
use pb_runtime::ExecCtx;
use std::collections::HashMap;

const SOURCE: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 4096
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = i * cols(p) / cols(c);
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                for (i in 0 .. len(a)) { a[i] = i % cols(c); }
            }
        }
    }
    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) { acc = 1; }
    }
"#;

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang_frontend");
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(parse_program(SOURCE).unwrap()))
    });
    let program = parse_program(SOURCE).unwrap();
    group.bench_function("check", |b| {
        b.iter(|| {
            check_program(&program).unwrap();
            std::hint::black_box(())
        })
    });
    group.bench_function("extract_schema", |b| {
        b.iter(|| std::hint::black_box(extract_schema(&program, "kmeans")))
    });
    group.finish();

    let mut group = c.benchmark_group("lang_interp");
    group.sample_size(10);
    let schema = extract_schema(&program, "kmeans");
    let mut config = schema.default_config();
    config
        .set_by_name(&schema, "k", pb_config::Value::Int(8))
        .unwrap();
    let interp = pb_lang::Interpreter::new(program);
    let n = 256usize;
    let mut inputs = HashMap::new();
    inputs.insert(
        "Points".to_string(),
        pb_lang::Value::Arr2 {
            rows: 2,
            cols: n,
            data: (0..2 * n).map(|i| i as f64).collect(),
        },
    );
    group.bench_function("kmeans_n256", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&schema, &config, n as u64, 1);
            std::hint::black_box(interp.run("kmeans", &inputs, &mut ctx).unwrap())
        })
    });
    group.finish();
}

/// The `double` transform from the `pb_lang` crate docs: the smallest
/// loop-over-array workload.
const DOUBLE: &str = r#"
    transform double from In[n] to Out[n] {
        to (Out o) from (In a) {
            for (i in 0 .. len(a)) { o[i] = 2 * a[i]; }
        }
    }
"#;

/// Tree-walking interpreter vs bytecode register VM on identical
/// programs, inputs, and configurations.
fn bench_interp_vs_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang_interp_vs_vm");
    group.sample_size(20);

    // double, n = 4096.
    let program = parse_program(DOUBLE).unwrap();
    check_program(&program).unwrap();
    let schema = extract_schema(&program, "double");
    let config = schema.default_config();
    let n = 4096usize;
    let mut inputs = HashMap::new();
    inputs.insert(
        "In".to_string(),
        pb_lang::Value::Arr1((0..n).map(|i| i as f64).collect()),
    );
    let interp = pb_lang::Interpreter::new(program.clone());
    let vm = pb_lang::Interpreter::new_compiled(program);
    group.bench_function("double_n4096_interp", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&schema, &config, n as u64, 1);
            std::hint::black_box(interp.run("double", &inputs, &mut ctx).unwrap())
        })
    });
    group.bench_function("double_n4096_vm", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&schema, &config, n as u64, 1);
            std::hint::black_box(vm.run("double", &inputs, &mut ctx).unwrap())
        })
    });

    // kmeans (Figure 3), n = 256.
    let program = parse_program(SOURCE).unwrap();
    check_program(&program).unwrap();
    let schema = extract_schema(&program, "kmeans");
    let mut config = schema.default_config();
    config
        .set_by_name(&schema, "k", pb_config::Value::Int(8))
        .unwrap();
    config
        .set_by_name(&schema, "for_enough_0", pb_config::Value::Int(4))
        .unwrap();
    let n = 256usize;
    let mut inputs = HashMap::new();
    inputs.insert(
        "Points".to_string(),
        pb_lang::Value::Arr2 {
            rows: 2,
            cols: n,
            data: (0..2 * n).map(|i| i as f64).collect(),
        },
    );
    let interp = pb_lang::Interpreter::new(program.clone());
    let vm = pb_lang::Interpreter::new_compiled(program);
    group.bench_function("kmeans_n256_interp", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&schema, &config, n as u64, 1);
            std::hint::black_box(interp.run("kmeans", &inputs, &mut ctx).unwrap())
        })
    });
    group.bench_function("kmeans_n256_vm", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&schema, &config, n as u64, 1);
            std::hint::black_box(vm.run("kmeans", &inputs, &mut ctx).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_interp_vs_vm);
criterion_main!(benches);
