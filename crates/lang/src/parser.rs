//! Recursive-descent parser for the transform language.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use std::fmt;

/// A syntax error with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at byte {}: {}",
            self.span.start, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError {
        message: e.message,
        span: e.span,
    })?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    for_enough_counter: usize,
    either_counter: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            for_enough_counter: 0,
            either_counter: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self, ahead: usize) -> &TokenKind {
        let i = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.peek().span,
        }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<(f64, Span), ParseError> {
        // A leading minus sign is allowed in header positions.
        let neg = self.eat(&TokenKind::Minus);
        match self.peek().kind {
            TokenKind::Number(value) => {
                let span = self.peek().span;
                self.bump();
                Ok((if neg { -value } else { value }, span))
            }
            ref other => Err(self.error(format!("expected number, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut transforms = Vec::new();
        while !self.at(&TokenKind::Eof) {
            transforms.push(self.transform()?);
        }
        if transforms.is_empty() {
            return Err(self.error("a program needs at least one transform".into()));
        }
        Ok(Program { transforms })
    }

    fn transform(&mut self) -> Result<Transform, ParseError> {
        self.for_enough_counter = 0;
        self.either_counter = 0;
        let start = self.expect(&TokenKind::Transform)?.span;
        let (name, _) = self.ident()?;
        let mut t = Transform {
            name,
            accuracy_metric: None,
            accuracy_variables: Vec::new(),
            accuracy_bins: Vec::new(),
            inputs: Vec::new(),
            intermediates: Vec::new(),
            outputs: Vec::new(),
            rules: Vec::new(),
            span: start,
        };
        // Headers, in any order, until the body brace.
        loop {
            match self.peek().kind {
                TokenKind::AccuracyMetric => {
                    self.bump();
                    let (metric, _) = self.ident()?;
                    t.accuracy_metric = Some(metric);
                }
                TokenKind::AccuracyVariable => {
                    self.bump();
                    let (vname, vspan) = self.ident()?;
                    // Optional `min max` range.
                    let (min, max) = if matches!(self.peek().kind, TokenKind::Number(_))
                        || self.at(&TokenKind::Minus)
                    {
                        let (lo, _) = self.number()?;
                        let (hi, _) = self.number()?;
                        (lo as i64, hi as i64)
                    } else {
                        (1, 1_000_000)
                    };
                    t.accuracy_variables.push(AccuracyVariable {
                        name: vname,
                        min,
                        max,
                        span: vspan,
                    });
                }
                TokenKind::AccuracyBins => {
                    self.bump();
                    while matches!(self.peek().kind, TokenKind::Number(_))
                        || self.at(&TokenKind::Minus)
                    {
                        let (v, _) = self.number()?;
                        t.accuracy_bins.push(v);
                    }
                    if t.accuracy_bins.is_empty() {
                        return Err(self.error("accuracy_bins needs at least one value".into()));
                    }
                }
                TokenKind::From => {
                    self.bump();
                    t.inputs = self.param_list()?;
                }
                TokenKind::Through => {
                    self.bump();
                    t.intermediates = self.param_list()?;
                }
                TokenKind::To => {
                    self.bump();
                    t.outputs = self.param_list()?;
                }
                TokenKind::LBrace => break,
                ref other => {
                    return Err(self.error(format!(
                        "expected a transform header or `{{`, found {other}"
                    )))
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        while !self.at(&TokenKind::RBrace) {
            t.rules.push(self.rule()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(t)
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = vec![self.param()?];
        while self.eat(&TokenKind::Comma) {
            params.push(self.param()?);
        }
        Ok(params)
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let (name, span) = self.ident()?;
        let mut dims = Vec::new();
        if self.eat(&TokenKind::LBracket) {
            dims.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                dims.push(self.expr()?);
            }
            self.expect(&TokenKind::RBracket)?;
        }
        let scaled_by = if self.eat(&TokenKind::ScaledBy) {
            Some(self.ident()?.0)
        } else {
            None
        };
        Ok(Param {
            name,
            dims,
            scaled_by,
            span,
        })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let start = self.expect(&TokenKind::To)?.span;
        self.expect(&TokenKind::LParen)?;
        let outputs = self.binding_list()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::From)?;
        self.expect(&TokenKind::LParen)?;
        let inputs = if self.at(&TokenKind::RParen) {
            Vec::new()
        } else {
            self.binding_list()?
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Rule {
            outputs,
            inputs,
            body,
            span: start,
        })
    }

    fn binding_list(&mut self) -> Result<Vec<Binding>, ParseError> {
        let mut bindings = vec![self.binding()?];
        while self.eat(&TokenKind::Comma) {
            bindings.push(self.binding()?);
        }
        Ok(bindings)
    }

    fn binding(&mut self) -> Result<Binding, ParseError> {
        let (data, span) = self.ident()?;
        let (alias, _) = self.ident()?;
        Ok(Binding { data, alias, span })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;
        match self.peek().kind {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Let { name, value, span })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_block = self.block()?;
                let else_block = if self.eat(&TokenKind::Else) {
                    Some(self.block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::For => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let (var, _) = self.ident()?;
                self.expect(&TokenKind::In)?;
                let lo = self.expr()?;
                self.expect(&TokenKind::DotDot)?;
                let hi = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    lo,
                    hi,
                    body,
                    span,
                })
            }
            TokenKind::ForEnough => {
                self.bump();
                let id = self.for_enough_counter;
                self.for_enough_counter += 1;
                let body = self.block()?;
                Ok(Stmt::ForEnough { id, body, span })
            }
            TokenKind::Either => {
                self.bump();
                let id = self.either_counter;
                self.either_counter += 1;
                let mut branches = vec![self.block()?];
                while self.eat(&TokenKind::Or) {
                    branches.push(self.block()?);
                }
                if branches.len() < 2 {
                    return Err(self.error("`either` needs at least one `or` branch".into()));
                }
                Ok(Stmt::Either { id, branches, span })
            }
            TokenKind::VerifyAccuracy => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::VerifyAccuracy { span })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            _ => {
                // Assignment or expression statement. Try lvalue `=`.
                if let TokenKind::Ident(_) = self.peek().kind {
                    if let Some(stmt) = self.try_assignment(span)? {
                        return Ok(stmt);
                    }
                }
                let expr = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Expr { expr, span })
            }
        }
    }

    /// Parses `ident [indices] = expr ;` if the lookahead matches,
    /// without consuming anything on failure.
    fn try_assignment(&mut self, span: Span) -> Result<Option<Stmt>, ParseError> {
        let save = self.pos;
        let (name, _) = self.ident()?;
        let target = if self.eat(&TokenKind::LBracket) {
            let mut indices = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                indices.push(self.expr()?);
            }
            if !self.eat(&TokenKind::RBracket) {
                self.pos = save;
                return Ok(None);
            }
            LValue::Index { name, indices }
        } else {
            LValue::Var(name)
        };
        if !self.eat(&TokenKind::Assign) {
            self.pos = save;
            return Ok(None);
        }
        let value = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Some(Stmt::Assign {
            target,
            value,
            span,
        }))
    }

    // Precedence climbing: || < && < comparisons < add < mul < unary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        if self.eat(&TokenKind::Minus) {
            let operand = self.unary_expr()?;
            let span = span.to(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        if self.eat(&TokenKind::Bang) {
            let operand = self.unary_expr()?;
            let span = span.to(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        match self.peek().kind.clone() {
            TokenKind::Number(value) => {
                self.bump();
                Ok(Expr::Number(value, span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Sub-accuracy call: `Foo<2.5>(args)` — three-token
                // lookahead distinguishes it from a comparison.
                if self.at(&TokenKind::Lt)
                    && matches!(self.peek_kind(1), TokenKind::Number(_))
                    && matches!(self.peek_kind(2), TokenKind::Gt)
                    && matches!(self.peek_kind(3), TokenKind::LParen)
                {
                    self.bump(); // <
                    let accuracy = match self.bump().kind {
                        TokenKind::Number(v) => v,
                        _ => unreachable!("lookahead checked"),
                    };
                    self.bump(); // >
                    self.expect(&TokenKind::LParen)?;
                    let args = self.arg_list()?;
                    let end = self.expect(&TokenKind::RParen)?.span;
                    return Ok(Expr::Call {
                        name,
                        accuracy: Some(accuracy),
                        args,
                        span: span.to(end),
                    });
                }
                if self.eat(&TokenKind::LParen) {
                    let args = self.arg_list()?;
                    let end = self.expect(&TokenKind::RParen)?.span;
                    return Ok(Expr::Call {
                        name,
                        accuracy: None,
                        args,
                        span: span.to(end),
                    });
                }
                if self.eat(&TokenKind::LBracket) {
                    let mut indices = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        indices.push(self.expr()?);
                    }
                    let end = self.expect(&TokenKind::RBracket)?.span;
                    return Ok(Expr::Index {
                        name,
                        indices,
                        span: span.to(end),
                    });
                }
                Ok(Expr::Var(name, span))
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.at(&TokenKind::RParen) {
            return Ok(args);
        }
        args.push(self.expr()?);
        while self.eat(&TokenKind::Comma) {
            args.push(self.expr()?);
        }
        Ok(args)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's Figure 3 kmeans example, adapted to this grammar.
    pub(crate) const KMEANS: &str = r#"
        transform kmeans
        accuracy_metric kmeansaccuracy
        accuracy_variable k 1 4096
        from Points[n, 2]
        through Centroids[k, 2]
        to Assignments[n]
        {
            // Rule 1: random initial centroids.
            to (Centroids c) from (Points p) {
                for (i in 0 .. cols(c)) {
                    let src = floor(rand(0, cols(p)));
                    c[0, i] = p[0, src];
                    c[1, i] = p[1, src];
                }
            }

            // Rule 2: kmeans++ style initial centroids.
            to (Centroids c) from (Points p) {
                CenterPlus(c, p);
            }

            // Rule 3: the iterative solve.
            to (Assignments a) from (Points p, Centroids c) {
                for_enough {
                    let change = AssignClusters(a, p, c);
                    if (change == 0) { return; }
                    NewClusterLocations(c, p, a);
                }
            }
        }

        transform kmeansaccuracy
        from Assignments[n], Points[n, 2]
        to Accuracy
        {
            to (Accuracy acc) from (Assignments a, Points p) {
                acc = sqrt(2 * len(a) / SumClusterDistanceSquared(a, p));
            }
        }
    "#;

    #[test]
    fn parses_the_kmeans_example() {
        let program = parse_program(KMEANS).unwrap();
        assert_eq!(program.transforms.len(), 2);
        let kmeans = program.transform("kmeans").unwrap();
        assert_eq!(kmeans.accuracy_metric.as_deref(), Some("kmeansaccuracy"));
        assert_eq!(kmeans.accuracy_variables[0].name, "k");
        assert_eq!(kmeans.rules.len(), 3);
        assert_eq!(kmeans.intermediates[0].name, "Centroids");
        // Two rules produce Centroids: the compiler sees a choice.
        let producers = kmeans
            .rules
            .iter()
            .filter(|r| r.outputs.iter().any(|b| b.data == "Centroids"))
            .count();
        assert_eq!(producers, 2);
    }

    #[test]
    fn for_enough_gets_sequential_ids() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) {
                    for_enough { b[0] = 1; }
                    for_enough { b[0] = 2; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let rule = &program.transforms[0].rules[0];
        let ids: Vec<usize> = rule
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::ForEnough { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn either_or_parses() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) {
                    either { b[0] = 1; } or { b[0] = 2; } or { b[0] = 3; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        match &program.transforms[0].rules[0].body.stmts[0] {
            Stmt::Either { branches, .. } => assert_eq!(branches.len(), 3),
            other => panic!("expected either, got {other:?}"),
        }
    }

    #[test]
    fn sub_accuracy_call_vs_comparison() {
        let src = r#"
            transform t accuracy_variable v from A[n] to B[n] {
                to (B b) from (A a) {
                    let x = Solve<2.5>(a);
                    let y = v < 3;
                    b[0] = x + y;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let rule = &program.transforms[0].rules[0];
        match &rule.body.stmts[0] {
            Stmt::Let {
                value: Expr::Call { accuracy, .. },
                ..
            } => {
                assert_eq!(*accuracy, Some(2.5));
            }
            other => panic!("expected sub-accuracy call, got {other:?}"),
        }
        match &rule.body.stmts[1] {
            Stmt::Let {
                value: Expr::Binary { op, .. },
                ..
            } => {
                assert_eq!(*op, BinOp::Lt);
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1 + 2 * 3; }
            }
        "#;
        let program = parse_program(src).unwrap();
        match &program.transforms[0].rules[0].body.stmts[0] {
            Stmt::Assign {
                value:
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1 }
            }
        "#;
        let err = parse_program(src).unwrap_err();
        assert!(err.message.contains("expected `;`"), "{}", err.message);
    }

    #[test]
    fn verify_accuracy_and_bins() {
        let src = r#"
            transform t
            accuracy_bins 0.1 0.5 0.9
            from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; verify_accuracy; }
            }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.transforms[0].accuracy_bins, vec![0.1, 0.5, 0.9]);
        assert!(matches!(
            program.transforms[0].rules[0].body.stmts[1],
            Stmt::VerifyAccuracy { .. }
        ));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(parse_program("").is_err());
        assert!(parse_program("   // just a comment").is_err());
    }
}
