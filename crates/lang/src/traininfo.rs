//! Training-information extraction: AST → tunable [`Schema`].
//!
//! The paper's compiler emits a *training information file* describing
//! "all the logical constructs in the configuration file" (§5.3); the
//! tuner generates its mutator pool from it. Here the static analysis
//! walks the checked AST and produces a [`pb_config::Schema`] directly:
//!
//! * each `accuracy_variable` → an accuracy-variable tunable;
//! * each datum with multiple producing rules → a `rule_<Data>`
//!   choice site;
//! * each `for_enough` loop → a `for_enough_<i>` accuracy variable;
//! * each `either…or` statement → an `either_<i>` choice site;
//! * each plain call to another declared variable-accuracy transform →
//!   that transform's tunables, merged with a `<callee>.` prefix
//!   (this is the flattening equivalent of the paper's automatic
//!   sub-accuracy expansion, §3.2/§4.2: the tuner becomes free to pick
//!   the sub-accuracy).

use crate::ast::{Block, Expr, Program, Stmt, Transform};
use crate::cdg::ChoiceDependencyGraph;
use pb_config::{AccuracyBins, Schema};
use std::collections::HashSet;

/// Maximum sub-transform flattening depth.
const MAX_DEPTH: usize = 4;

/// Extracts the tunable schema for `transform_name`.
///
/// # Panics
///
/// Panics if the transform does not exist (run
/// [`crate::check_program`] first).
pub fn extract_schema(program: &Program, transform_name: &str) -> Schema {
    let t = program
        .transform(transform_name)
        .unwrap_or_else(|| panic!("unknown transform `{transform_name}`"));
    let mut schema = Schema::new(transform_name);
    let mut visiting = HashSet::new();
    add_transform_tunables(program, t, "", &mut schema, &mut visiting, 0);
    schema
}

/// Extracts this transform's accuracy bins, or the default 0..1 range
/// (§3.2).
pub fn extract_bins(program: &Program, transform_name: &str) -> AccuracyBins {
    let t = program
        .transform(transform_name)
        .unwrap_or_else(|| panic!("unknown transform `{transform_name}`"));
    if t.accuracy_bins.is_empty() {
        AccuracyBins::default_range()
    } else {
        AccuracyBins::new(t.accuracy_bins.clone())
    }
}

fn add_transform_tunables(
    program: &Program,
    t: &Transform,
    prefix: &str,
    schema: &mut Schema,
    visiting: &mut HashSet<String>,
    depth: usize,
) {
    if depth > MAX_DEPTH || !visiting.insert(t.name.clone()) {
        return;
    }

    for av in &t.accuracy_variables {
        schema.add_accuracy_variable(format!("{prefix}{}", av.name), av.min, av.max);
    }

    // `scaled_by` inputs get a percentage accuracy variable (§3.2:
    // "the size to re-sample to is controlled with an accuracy
    // variable in the generated transform"). 100% = no resampling.
    for p in &t.inputs {
        if p.scaled_by.is_some() {
            schema.add_accuracy_variable_with_default(
                format!("{prefix}scale_{}", p.name),
                1,
                100,
                100,
            );
        }
    }

    let graph = ChoiceDependencyGraph::build(t);
    for site in graph.choice_sites() {
        schema.add_choice_site(format!("{prefix}rule_{site}"), graph.producers(site).len());
    }

    let mut callees: Vec<String> = Vec::new();
    for rule in &t.rules {
        collect_block_tunables(program, &rule.body, prefix, schema, &mut callees);
    }
    for callee in callees {
        if let Some(sub) = program.transform(&callee) {
            let sub_prefix = format!("{prefix}{callee}.");
            add_transform_tunables(program, sub, &sub_prefix, schema, visiting, depth + 1);
        }
    }
    visiting.remove(&t.name);
}

fn collect_block_tunables(
    program: &Program,
    block: &Block,
    prefix: &str,
    schema: &mut Schema,
    callees: &mut Vec<String>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::ForEnough { id, body, .. } => {
                let name = format!("{prefix}for_enough_{id}");
                if schema.tunable(&name).is_none() {
                    schema.add_accuracy_variable(name, 1, 500);
                }
                collect_block_tunables(program, body, prefix, schema, callees);
            }
            Stmt::Either { id, branches, .. } => {
                let name = format!("{prefix}either_{id}");
                if schema.tunable(&name).is_none() {
                    schema.add_choice_site(name, branches.len());
                }
                for b in branches {
                    collect_block_tunables(program, b, prefix, schema, callees);
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                collect_expr_tunables(program, cond, callees);
                collect_block_tunables(program, then_block, prefix, schema, callees);
                if let Some(e) = else_block {
                    collect_block_tunables(program, e, prefix, schema, callees);
                }
            }
            Stmt::While { cond, body, .. } => {
                collect_expr_tunables(program, cond, callees);
                collect_block_tunables(program, body, prefix, schema, callees);
            }
            Stmt::For { lo, hi, body, .. } => {
                collect_expr_tunables(program, lo, callees);
                collect_expr_tunables(program, hi, callees);
                collect_block_tunables(program, body, prefix, schema, callees);
            }
            Stmt::Let { value, .. }
            | Stmt::Assign { value, .. }
            | Stmt::Expr { expr: value, .. } => collect_expr_tunables(program, value, callees),
            Stmt::Return { value: Some(v), .. } => collect_expr_tunables(program, v, callees),
            Stmt::Return { value: None, .. } | Stmt::VerifyAccuracy { .. } => {}
        }
    }
}

fn collect_expr_tunables(program: &Program, expr: &Expr, callees: &mut Vec<String>) {
    match expr {
        Expr::Call {
            name,
            accuracy,
            args,
            ..
        } => {
            // A plain call to a declared transform exposes the callee's
            // tunables; an explicit-accuracy call pins them (§3.2:
            // the `<N>` syntax "may … be used … to prevent the
            // automatic expansion").
            if accuracy.is_none() && program.transform(name).is_some() && !callees.contains(name) {
                callees.push(name.clone());
            }
            for a in args {
                collect_expr_tunables(program, a, callees);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr_tunables(program, lhs, callees);
            collect_expr_tunables(program, rhs, callees);
        }
        Expr::Unary { operand, .. } => collect_expr_tunables(program, operand, callees),
        Expr::Index { indices, .. } => {
            for i in indices {
                collect_expr_tunables(program, i, callees);
            }
        }
        Expr::Number(..) | Expr::Var(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use pb_config::TunableKind;

    #[test]
    fn kmeans_schema_has_expected_tunables() {
        let program = parse_program(crate::parser::tests::KMEANS).unwrap();
        let schema = extract_schema(&program, "kmeans");
        // k, rule_Centroids (2 rules), for_enough_0.
        let (_, k) = schema.tunable("k").unwrap();
        assert!(matches!(
            k.kind(),
            TunableKind::AccuracyVariable { min: 1, max: 4096 }
        ));
        let (_, site) = schema.tunable("rule_Centroids").unwrap();
        assert!(matches!(
            site.kind(),
            TunableKind::ChoiceSite { num_algorithms: 2 }
        ));
        assert!(schema.tunable("for_enough_0").is_some());
        assert_eq!(schema.len(), 3);
    }

    #[test]
    fn either_or_becomes_choice_site() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) {
                    either { b[0] = 1; } or { b[0] = 2; } or { b[0] = 3; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = extract_schema(&program, "t");
        let (_, e) = schema.tunable("either_0").unwrap();
        assert!(matches!(
            e.kind(),
            TunableKind::ChoiceSite { num_algorithms: 3 }
        ));
    }

    #[test]
    fn sub_transform_tunables_are_prefixed() {
        let src = r#"
            transform outer from A[n] to B[n] {
                to (B b) from (A a) {
                    b[0] = inner(a);
                }
            }
            transform inner
            accuracy_variable iters 1 50
            from A[n] to R {
                to (R r) from (A a) {
                    for_enough { r = r + 1; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = extract_schema(&program, "outer");
        assert!(schema.tunable("inner.iters").is_some());
        assert!(schema.tunable("inner.for_enough_0").is_some());
    }

    #[test]
    fn explicit_accuracy_call_is_not_expanded() {
        let src = r#"
            transform outer from A[n] to B[n] {
                to (B b) from (A a) {
                    b[0] = inner<0.5>(a);
                }
            }
            transform inner
            accuracy_variable iters 1 50
            from A[n] to R {
                to (R r) from (A a) { r = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = extract_schema(&program, "outer");
        assert!(schema.tunable("inner.iters").is_none());
        assert!(schema.is_empty());
    }

    #[test]
    fn recursive_calls_do_not_loop_forever() {
        let src = r#"
            transform t accuracy_variable v 1 9 from A[n] to B[n] {
                to (B b) from (A a) {
                    b[0] = t(a);
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = extract_schema(&program, "t");
        // Only the transform's own tunable — no infinite expansion.
        assert!(schema.tunable("v").is_some());
        assert!(schema.tunable("t.v").is_none());
    }

    #[test]
    fn bins_default_and_declared() {
        let src = r#"
            transform a accuracy_bins 0.25 0.75 from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
            transform b from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(extract_bins(&program, "a").targets(), &[0.25, 0.75]);
        assert_eq!(extract_bins(&program, "b").len(), 11);
    }
}
