//! Static analysis over compiled bytecode: a chunk **verifier** and an
//! **abstract interpreter**, plus the DSL-level lints behind the
//! `pb_lint` CLI.
//!
//! The differential suite pins the VM *dynamically* — outputs, RNG
//! draws, and virtual cost bit-identical to the tree-walking
//! interpreter at every [`crate::opt::OptLevel`]. This module adds the
//! static half of that contract:
//!
//! * [`verify_chunk`] / [`verify_code`] prove a [`Chunk`] is
//!   *well-formed* before dispatch: every jump (including the fused
//!   `JumpCmp*`/`AddImmJump` forms and `Switch` tables) lands inside
//!   the chunk, every register/slot/name index is in bounds, every
//!   register is defined on every path before it is read (forward
//!   must-defined dataflow over the CFG), every `Switch` is guarded by
//!   the clamping `Choice` that feeds it, and every `Charge` is
//!   positive and finite. Violations carry a typed
//!   [`ViolationKind`] so regression tests can pin exactly *which*
//!   invariant a hand-broken chunk trips.
//! * [`charge_signature`] summarizes a chunk's cost accounting as the
//!   ordered per-straight-line-region charge totals;
//!   [`crate::opt::optimize`] checks the signature after every pass
//!   (under `PB_VERIFY=1` or in debug builds), so a `Charge` hoisted
//!   across control flow is attributed to the pass that moved it.
//! * [`analyze_chunk`] runs a forward abstract interpretation over the
//!   same CFG, inferring per-register and per-slot abstract kinds
//!   (bool/int/float scalars with a constant-ness lattice, arrays with
//!   rank) as a [`ChunkFacts`] artifact attached to
//!   [`crate::compile::CompiledTransform`] — the seed for the typed IR
//!   the ROADMAP's native-code tier needs.
//! * [`lint_program`] layers DSL-level lints on top of sema and the
//!   verifier: dead tunables, unconsumed rule products, tunables whose
//!   range collapses to a constant, and rules whose chunks fail
//!   verification.

use crate::ast::{Program, Rule, Transform};
use crate::compile::{Chunk, FirstArg, Instr, Operand, Slot};
use crate::opt::{for_each_def, for_each_use, is_terminator, jump_targets, OptLevel};
use crate::sema::{collect_block_vars, collect_expr_vars};
use crate::token::Span;
use pb_config::{Schema, TunableKind};
use std::collections::HashSet;
use std::fmt;

// ---- violations --------------------------------------------------------

/// Which well-formedness invariant a chunk breaks. Each variant is one
/// distinct verifier check; the hand-broken regression corpus pins one
/// chunk per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A jump/switch target past `code.len()` (`== len` is legal
    /// fall-off termination).
    BadJumpTarget,
    /// A register reference `>= n_regs`.
    RegOutOfBounds,
    /// A slot reference `>= n_slots` (instruction operand or
    /// input/output binding table).
    SlotOutOfBounds,
    /// An interned-name index `>= names.len()`.
    NameOutOfBounds,
    /// A register that may be read before any definition reaches it.
    UseBeforeDef,
    /// A `Switch` whose table is empty or that is not fed by an
    /// adjacent clamping `Choice` covering its table.
    UnguardedSwitch,
    /// A `Charge` amount that is not finite and positive, or a
    /// `Choice` with zero branches.
    BadCharge,
    /// Per-region charge totals changed across an optimizer pass —
    /// cost was hoisted across control flow.
    ChargeMoved,
    /// A `Bin`-family or fused-compare instruction carrying an
    /// operator the VM cannot dispatch there (`&&`/`||` lower to
    /// jumps; `JumpCmp*` requires a comparison).
    BadOperator,
    /// A tunable name with no entry in the config schema.
    UnknownTunable,
    /// A tunable resolved to the wrong kind (e.g. `ForEnoughPrep` on a
    /// non-accuracy-variable, `Choice` branches exceeding the site's
    /// algorithm count).
    TunableMismatch,
    /// A specialized (`*U`) access whose target the facts do not prove
    /// — wrong array rank, or a non-integral index register (see
    /// [`verify_specialized`]).
    BadSpecializedAccess,
    /// A `ShapeHoisted` run not protected by an adjacent zero-trip
    /// guard (a forward conditional branch past the run).
    BadHoistGuard,
}

impl ViolationKind {
    /// Stable lower-snake name (for diagnostics and test pins).
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::BadJumpTarget => "bad_jump_target",
            ViolationKind::RegOutOfBounds => "reg_out_of_bounds",
            ViolationKind::SlotOutOfBounds => "slot_out_of_bounds",
            ViolationKind::NameOutOfBounds => "name_out_of_bounds",
            ViolationKind::UseBeforeDef => "use_before_def",
            ViolationKind::UnguardedSwitch => "unguarded_switch",
            ViolationKind::BadCharge => "bad_charge",
            ViolationKind::ChargeMoved => "charge_moved",
            ViolationKind::BadOperator => "bad_operator",
            ViolationKind::UnknownTunable => "unknown_tunable",
            ViolationKind::TunableMismatch => "tunable_mismatch",
            ViolationKind::BadSpecializedAccess => "bad_specialized_access",
            ViolationKind::BadHoistGuard => "bad_hoist_guard",
        }
    }
}

/// One verifier finding, anchored to an instruction index.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Instruction index the violation is anchored to.
    pub at: usize,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at instr {}: {}",
            self.kind.name(),
            self.at,
            self.detail
        )
    }
}

impl std::error::Error for Violation {}

fn violation(kind: ViolationKind, at: usize, detail: impl Into<String>) -> Violation {
    Violation {
        kind,
        at,
        detail: detail.into(),
    }
}

// ---- instruction walkers ----------------------------------------------
// `crate::opt` owns the register use/def walkers (shared with liveness
// and DCE); the verifier additionally needs *every* slot, name, and
// jump-target reference, including write targets the optimizer's
// read-oriented walkers skip.

fn for_each_target(instr: &Instr, mut f: impl FnMut(usize)) {
    match instr {
        Instr::Jump { target }
        | Instr::AddImmJump { target, .. }
        | Instr::JumpIfZero { target, .. }
        | Instr::JumpIfNonZero { target, .. }
        | Instr::JumpIfGe { target, .. }
        | Instr::JumpCmp { target, .. }
        | Instr::JumpCmpImm { target, .. } => f(*target),
        Instr::Switch { targets, .. } => {
            for t in targets {
                f(*t);
            }
        }
        _ => {}
    }
}

fn for_each_slot(instr: &Instr, mut f: impl FnMut(Slot)) {
    match instr {
        Instr::LoadSlotNum { slot, .. }
        | Instr::StoreSlotNum { slot, .. }
        | Instr::Shape { slot, .. }
        | Instr::ShapeHoisted { slot, .. }
        | Instr::LoadIdx1 { slot, .. }
        | Instr::LoadIdx1U { slot, .. }
        | Instr::LoadIdx2 { slot, .. }
        | Instr::LoadIdx2U { slot, .. }
        | Instr::StoreIdx1 { slot, .. }
        | Instr::StoreIdx1U { slot, .. }
        | Instr::StoreIdx2 { slot, .. }
        | Instr::StoreIdx2U { slot, .. }
        | Instr::BinStoreIdx1 { slot, .. }
        | Instr::BinStoreIdx1U { slot, .. } => f(*slot),
        Instr::CopySlot { dst, src }
        | Instr::SlotUpdImm { dst, src, .. }
        | Instr::SlotUpdReg { dst, src, .. } => {
            f(*dst);
            f(*src);
        }
        Instr::CallHost {
            first, rest, dst, ..
        } => {
            f(*dst);
            match first {
                FirstArg::Var(s) | FirstArg::Anon(Operand::Slot(s)) => f(*s),
                FirstArg::Anon(Operand::Reg(_)) => {}
            }
            for op in rest {
                if let Operand::Slot(s) = op {
                    f(*s);
                }
            }
        }
        Instr::CallTransform { args, dst, .. } => {
            f(*dst);
            for op in args {
                if let Operand::Slot(s) = op {
                    f(*s);
                }
            }
        }
        _ => {}
    }
}

fn for_each_name(instr: &Instr, mut f: impl FnMut(u16)) {
    match instr {
        Instr::LoadParam { name, .. }
        | Instr::ForEnoughPrep { name, .. }
        | Instr::Choice { name, .. }
        | Instr::CallHost { name, .. }
        | Instr::CallTransform { name, .. } => f(*name),
        _ => {}
    }
}

fn is_cmp_op(op: crate::ast::BinOp) -> bool {
    use crate::ast::BinOp::*;
    matches!(op, Eq | Ne | Lt | Le | Gt | Ge)
}

// ---- the verifier ------------------------------------------------------

/// Verifies one chunk. See [`verify_code`].
///
/// # Errors
///
/// Returns the first [`Violation`] in instruction order.
pub fn verify_chunk(chunk: &Chunk) -> Result<(), Violation> {
    // Specialized (`*U` / hoisted) forms are an O3-only contract: a
    // chunk stamped below O3 carrying one was not produced by the
    // specializer's gated pipeline.
    if chunk.opt < OptLevel::O3 {
        for (i, instr) in chunk.code.iter().enumerate() {
            let idx = instr.opcode_index();
            if crate::compile::opcode_is_specialized(idx) {
                return Err(violation(
                    ViolationKind::BadSpecializedAccess,
                    i,
                    format!(
                        "specialized form `{}` in a chunk below O3",
                        crate::compile::OPCODE_NAMES[idx]
                    ),
                ));
            }
        }
    }
    verify_code(
        &chunk.code,
        chunk.n_regs,
        chunk.n_slots,
        chunk.names.len(),
        &chunk.input_slots,
        &chunk.output_slots,
    )
}

/// The facts-dependent half of the specialized-form contract (the
/// structural half lives in [`verify_code`]): every unchecked (`*U`)
/// access must be licensed by the facts the specializer consumed — an
/// array slot of the matching rank — and every [`Instr::ShapeHoisted`]
/// must read a slot whose *entry* facts prove an array rank accepting
/// the query, so the hoisted read cannot introduce a new error point.
///
/// Index registers need no proof: the `*U` dispatch guard truncates
/// an in-range index exactly like the checked `index()` path and falls
/// back to it otherwise, so index *kind* never affects behavior — only
/// the slot's rank decides whether the guard can ever hit.
///
/// # Errors
///
/// Returns the first [`Violation`]
/// ([`ViolationKind::BadSpecializedAccess`]).
pub fn verify_specialized(code: &[Instr], facts: &ChunkFacts) -> Result<(), Violation> {
    use crate::compile::ShapeKind;
    let slot_arr = |s: Slot, rank: u8| {
        matches!(
            facts.slots.get(s as usize),
            Some(AbsValue::Array { rank: got }) if *got == rank
        )
    };
    for (i, instr) in code.iter().enumerate() {
        let problem = match instr {
            Instr::LoadIdx1U { slot, .. }
            | Instr::StoreIdx1U { slot, .. }
            | Instr::BinStoreIdx1U { slot, .. } => {
                (!slot_arr(*slot, 1)).then(|| format!("s{slot} is not a proven rank-1 array"))
            }
            Instr::LoadIdx2U { slot, .. } | Instr::StoreIdx2U { slot, .. } => {
                (!slot_arr(*slot, 2)).then(|| format!("s{slot} is not a proven rank-2 array"))
            }
            Instr::ShapeHoisted { kind, slot, .. } => {
                let ok = match facts.entry_slots.get(*slot as usize) {
                    Some(AbsValue::Array { rank }) => match kind {
                        ShapeKind::Len => *rank == 1 || *rank == 2,
                        ShapeKind::Rows | ShapeKind::Cols => *rank == 2,
                    },
                    _ => false,
                };
                (!ok).then(|| format!("hoisted shape read of s{slot} could error at entry"))
            }
            _ => None,
        };
        if let Some(detail) = problem {
            return Err(violation(ViolationKind::BadSpecializedAccess, i, detail));
        }
    }
    Ok(())
}

/// Verifies a code sequence against its declared register/slot/name
/// counts: jump-target validity, operand bounds, `Switch` guarding,
/// charge sanity, and register def-before-use (forward must-defined
/// dataflow over the CFG; registers are checked on *every* path, with
/// unreachable blocks excluded).
///
/// Operates on parts rather than a [`Chunk`] so the optimizer can
/// re-verify mid-pipeline, where only the instruction vector exists.
///
/// # Errors
///
/// Returns the first [`Violation`] in instruction order.
pub fn verify_code(
    code: &[Instr],
    n_regs: u16,
    n_slots: u16,
    n_names: usize,
    input_slots: &[Slot],
    output_slots: &[Slot],
) -> Result<(), Violation> {
    for &s in input_slots.iter().chain(output_slots) {
        if s >= n_slots {
            return Err(violation(
                ViolationKind::SlotOutOfBounds,
                0,
                format!("binding slot s{s} >= n_slots {n_slots}"),
            ));
        }
    }
    for (i, instr) in code.iter().enumerate() {
        let mut first: Option<Violation> = None;
        let mut note = |v: Violation| {
            if first.is_none() {
                first = Some(v);
            }
        };
        for_each_target(instr, |t| {
            if t > code.len() {
                note(violation(
                    ViolationKind::BadJumpTarget,
                    i,
                    format!("target {t} past code end {}", code.len()),
                ));
            }
        });
        let mut check_reg = |r: u16| {
            if r >= n_regs {
                note(violation(
                    ViolationKind::RegOutOfBounds,
                    i,
                    format!("r{r} >= n_regs {n_regs}"),
                ));
            }
        };
        for_each_use(instr, &mut check_reg);
        for_each_def(instr, &mut check_reg);
        for_each_slot(instr, |s| {
            if s >= n_slots {
                note(violation(
                    ViolationKind::SlotOutOfBounds,
                    i,
                    format!("s{s} >= n_slots {n_slots}"),
                ));
            }
        });
        for_each_name(instr, |idx| {
            if idx as usize >= n_names {
                note(violation(
                    ViolationKind::NameOutOfBounds,
                    i,
                    format!("name index {idx} >= names.len() {n_names}"),
                ));
            }
        });
        match instr {
            Instr::Charge { amount } if !(amount.is_finite() && *amount > 0.0) => {
                note(violation(
                    ViolationKind::BadCharge,
                    i,
                    format!("charge amount {amount} is not finite and positive"),
                ));
            }
            Instr::Choice { branches, .. } if *branches == 0 => {
                note(violation(
                    ViolationKind::BadCharge,
                    i,
                    "choice with zero branches",
                ));
            }
            Instr::Switch { src, targets } => {
                // A `Switch` is only safe when the instruction feeding
                // `src` is the adjacent `Choice` whose clamp
                // (`pick.min(branches - 1)`) covers the target table.
                // Nops may sit between them mid-pipeline.
                let guard = (0..i)
                    .rev()
                    .map(|p| &code[p])
                    .find(|instr| !matches!(instr, Instr::Nop));
                let guarded = matches!(
                    guard,
                    Some(Instr::Choice { dst, branches, .. })
                        if dst == src && (1..=targets.len()).contains(&(*branches as usize))
                );
                if targets.is_empty() || !guarded {
                    note(violation(
                        ViolationKind::UnguardedSwitch,
                        i,
                        format!(
                            "switch on r{src} with {} targets lacks an adjacent clamping choice",
                            targets.len()
                        ),
                    ));
                }
            }
            Instr::Bin { op, .. } => {
                if matches!(op, crate::ast::BinOp::And | crate::ast::BinOp::Or) {
                    note(violation(
                        ViolationKind::BadOperator,
                        i,
                        "&&/|| lower to jumps; Bin cannot dispatch them",
                    ));
                }
            }
            Instr::BinRI { op, .. }
            | Instr::BinIR { op, .. }
            | Instr::SlotUpdImm { op, .. }
            | Instr::SlotUpdReg { op, .. }
            | Instr::BinStoreIdx1 { op, .. }
            | Instr::BinStoreIdx1U { op, .. } => {
                if matches!(op, crate::ast::BinOp::And | crate::ast::BinOp::Or) {
                    note(violation(
                        ViolationKind::BadOperator,
                        i,
                        "&&/|| lower to jumps; fused arithmetic cannot dispatch them",
                    ));
                }
            }
            Instr::JumpCmp { op, .. } | Instr::JumpCmpImm { op, .. } if !is_cmp_op(*op) => {
                note(violation(
                    ViolationKind::BadOperator,
                    i,
                    format!("fused compare carries non-comparison operator {op:?}"),
                ));
            }
            Instr::ShapeHoisted { .. } => {
                // A hoisted run must sit directly behind its zero-trip
                // guard — a forward conditional branch past the run —
                // which proves the loop body executes at least once
                // and so licenses running the reads early. `Nop`s may
                // sit between mid-pipeline. A `Charge` inside the run
                // means cost was hoisted along with the reads.
                let prev = (0..i)
                    .rev()
                    .map(|p| &code[p])
                    .find(|instr| !matches!(instr, Instr::ShapeHoisted { .. } | Instr::Nop));
                match prev {
                    Some(Instr::Charge { .. }) => note(violation(
                        ViolationKind::ChargeMoved,
                        i,
                        "a Charge sits inside a hoisted Shape run",
                    )),
                    Some(
                        Instr::JumpIfZero { target, .. }
                        | Instr::JumpIfNonZero { target, .. }
                        | Instr::JumpIfGe { target, .. }
                        | Instr::JumpCmp { target, .. }
                        | Instr::JumpCmpImm { target, .. },
                    ) if *target > i => {}
                    _ => note(violation(
                        ViolationKind::BadHoistGuard,
                        i,
                        "hoisted Shape run lacks an adjacent zero-trip guard branching past it",
                    )),
                }
            }
            _ => {}
        }
        if let Some(v) = first {
            return Err(v);
        }
    }
    verify_def_before_use(code, n_regs)
}

/// Basic-block structure shared by the dataflow passes below: block
/// start indices, an index→block map, and per-block successors.
struct Cfg {
    starts: Vec<usize>,
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG. All jump targets must already be validated
    /// (`<= code.len()`).
    fn build(code: &[Instr]) -> Cfg {
        let n = code.len();
        let targets = jump_targets(code);
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for i in 0..n {
            if targets[i] {
                leader[i] = true;
            }
            if is_terminator(&code[i]) && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let mut block_of = vec![0usize; n];
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            for slot in block_of.iter_mut().take(end).skip(start) {
                *slot = b;
            }
        }
        Cfg { starts, block_of }
    }

    fn len(&self) -> usize {
        self.starts.len()
    }

    fn range(&self, b: usize, n: usize) -> std::ops::Range<usize> {
        self.starts[b]..self.starts.get(b + 1).copied().unwrap_or(n)
    }

    fn successors(&self, code: &[Instr], b: usize, out: &mut Vec<usize>) {
        out.clear();
        let n = code.len();
        let last = self.range(b, n).end - 1;
        let mut push = |t: usize| {
            if t < n {
                out.push(self.block_of[t]);
            }
        };
        match &code[last] {
            Instr::Jump { target } | Instr::AddImmJump { target, .. } => push(*target),
            Instr::JumpIfZero { target, .. }
            | Instr::JumpIfNonZero { target, .. }
            | Instr::JumpIfGe { target, .. }
            | Instr::JumpCmp { target, .. }
            | Instr::JumpCmpImm { target, .. } => {
                push(*target);
                push(last + 1);
            }
            Instr::Switch { targets, .. } => {
                for t in targets {
                    push(*t);
                }
            }
            Instr::Return => {}
            _ => push(last + 1),
        }
    }
}

/// Forward must-defined dataflow: at every instruction, every register
/// read must be defined on *all* paths from entry. Unreachable blocks
/// start at ⊤ (all-defined) so they cannot raise false positives.
fn verify_def_before_use(code: &[Instr], n_regs: u16) -> Result<(), Violation> {
    let n = code.len();
    if n == 0 {
        return Ok(());
    }
    let cfg = Cfg::build(code);
    let nb = cfg.len();
    let words = (n_regs as usize).div_ceil(64).max(1);

    let mut in_sets: Vec<Vec<u64>> = vec![vec![u64::MAX; words]; nb];
    in_sets[0] = vec![0; words];

    let mut succ = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            let mut cur = in_sets[b].clone();
            for i in cfg.range(b, n) {
                for_each_def(&code[i], |r| cur[r as usize / 64] |= 1 << (r as usize % 64));
            }
            cfg.successors(code, b, &mut succ);
            for &s in &succ {
                for (dst, src) in in_sets[s].iter_mut().zip(&cur) {
                    let next = *dst & *src;
                    changed |= next != *dst;
                    *dst = next;
                }
            }
        }
    }

    for (b, in_set) in in_sets.iter().enumerate() {
        let mut cur = in_set.clone();
        for i in cfg.range(b, n) {
            let mut undef = None;
            for_each_use(&code[i], |r| {
                if cur[r as usize / 64] & (1 << (r as usize % 64)) == 0 && undef.is_none() {
                    undef = Some(r);
                }
            });
            if let Some(r) = undef {
                return Err(violation(
                    ViolationKind::UseBeforeDef,
                    i,
                    format!("r{r} may be read before any definition reaches it"),
                ));
            }
            for_each_def(&code[i], |r| cur[r as usize / 64] |= 1 << (r as usize % 64));
        }
    }
    Ok(())
}

/// The chunk's cost-accounting shape: ordered per-straight-line-region
/// charge totals (zero-total regions elided, so pure `Nop` compaction
/// cannot perturb it). Every optimizer pass must preserve this
/// signature exactly — `fold_charges` merges within a region, never
/// across one — which is what "no `Charge` hoisted across control
/// flow" means statically.
///
/// Jump targets must already be validated (`<= code.len()`).
pub fn charge_signature(code: &[Instr]) -> Vec<f64> {
    let targets = jump_targets(code);
    let mut sig = Vec::new();
    let mut cur = 0.0f64;
    let flush = |cur: &mut f64, sig: &mut Vec<f64>| {
        if *cur != 0.0 {
            sig.push(*cur);
            *cur = 0.0;
        }
    };
    for (i, instr) in code.iter().enumerate() {
        if targets[i] {
            flush(&mut cur, &mut sig);
        }
        if let Instr::Charge { amount } = instr {
            cur += *amount;
        }
        if is_terminator(instr) {
            flush(&mut cur, &mut sig);
        }
    }
    flush(&mut cur, &mut sig);
    sig
}

// ---- schema validation -------------------------------------------------

/// Validates every tunable reference in `chunk` against `schema` under
/// `prefix` (the `<callee>.`-style namespace the chunk executes in):
/// `LoadParam`/`ForEnoughPrep`/`Choice` names must resolve, a
/// `ForEnoughPrep` must name an accuracy variable, and a `Choice` must
/// name a choice site whose algorithm count matches its branch count.
/// Host-function and callee names are resolved at runtime and skipped.
///
/// # Errors
///
/// Returns the first [`Violation`]
/// ([`ViolationKind::UnknownTunable`]/[`ViolationKind::TunableMismatch`]).
pub fn verify_tunables(chunk: &Chunk, schema: &Schema, prefix: &str) -> Result<(), Violation> {
    let resolve = |idx: u16, at: usize| -> Result<&pb_config::Tunable, Violation> {
        let name = chunk.names.get(idx as usize).ok_or_else(|| {
            violation(
                ViolationKind::NameOutOfBounds,
                at,
                format!("name index {idx}"),
            )
        })?;
        let full = format!("{prefix}{name}");
        schema.tunable(&full).map(|(_, t)| t).ok_or_else(|| {
            violation(
                ViolationKind::UnknownTunable,
                at,
                format!("`{full}` is not in the config schema"),
            )
        })
    };
    for (i, instr) in chunk.code.iter().enumerate() {
        match instr {
            Instr::LoadParam { name, .. } => {
                resolve(*name, i)?;
            }
            Instr::ForEnoughPrep { name, .. } => {
                let t = resolve(*name, i)?;
                if !matches!(t.kind(), TunableKind::AccuracyVariable { .. }) {
                    return Err(violation(
                        ViolationKind::TunableMismatch,
                        i,
                        format!("`{}` is not an accuracy variable", t.name()),
                    ));
                }
            }
            Instr::Choice { name, branches, .. } => {
                let t = resolve(*name, i)?;
                match t.kind() {
                    TunableKind::ChoiceSite { num_algorithms }
                        if *num_algorithms == *branches as usize => {}
                    _ => {
                        return Err(violation(
                            ViolationKind::TunableMismatch,
                            i,
                            format!("`{}` is not a {branches}-way choice site", t.name()),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

// ---- abstract interpretation -------------------------------------------

/// Scalar kind lattice: `Bool ⊑ Int ⊑ Float` (every bool is 0/1,
/// every int is an integral `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScalarKind {
    /// Always `0.0` or `1.0` (comparisons, logic).
    Bool,
    /// Always an integral `f64` (counters, indices, shapes, tunables).
    Int,
    /// Any `f64`.
    Float,
}

impl fmt::Display for ScalarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScalarKind::Bool => "bool",
            ScalarKind::Int => "int",
            ScalarKind::Float => "float",
        })
    }
}

/// Abstract value: the join-semilattice element inferred for a
/// register or slot.
///
/// Equality is lattice-element identity: constants compare **bitwise**
/// (`NaN == NaN`), matching [`AbsValue::join`]'s merge rule — the
/// fixpoint in [`analyze_chunk`] relies on a folded `NaN` constant
/// being equal to itself to converge.
#[derive(Debug, Clone, Copy)]
pub enum AbsValue {
    /// Unreached / never holds a value.
    Bottom,
    /// A scalar of the given kind; `cst` when every reaching value is
    /// the same constant (bitwise).
    Scalar {
        /// The scalar kind.
        kind: ScalarKind,
        /// The constant value, if provably unique.
        cst: Option<f64>,
    },
    /// An array of the given rank (1 or 2).
    Array {
        /// Number of dimensions.
        rank: u8,
    },
    /// Anything (host-call results, mixed scalar/array).
    Any,
}

impl PartialEq for AbsValue {
    fn eq(&self, other: &AbsValue) -> bool {
        use AbsValue::*;
        match (self, other) {
            (Bottom, Bottom) | (Any, Any) => true,
            (Scalar { kind: ka, cst: ca }, Scalar { kind: kb, cst: cb }) => {
                ka == kb && ca.map(f64::to_bits) == cb.map(f64::to_bits)
            }
            (Array { rank: a }, Array { rank: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for AbsValue {}

impl AbsValue {
    /// A non-constant scalar.
    pub fn scalar(kind: ScalarKind) -> AbsValue {
        AbsValue::Scalar { kind, cst: None }
    }

    /// A known constant (kind inferred from the value).
    pub fn constant(v: f64) -> AbsValue {
        AbsValue::Scalar {
            kind: const_kind(v),
            cst: Some(v),
        }
    }

    /// Least upper bound.
    pub fn join(self, other: AbsValue) -> AbsValue {
        use AbsValue::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (Scalar { kind: ka, cst: ca }, Scalar { kind: kb, cst: cb }) => Scalar {
                kind: ka.max(kb),
                cst: match (ca, cb) {
                    (Some(a), Some(b)) if a.to_bits() == b.to_bits() => Some(a),
                    _ => None,
                },
            },
            (Array { rank: a }, Array { rank: b }) if a == b => Array { rank: a },
            _ => Any,
        }
    }

    fn as_scalar(self) -> (ScalarKind, Option<f64>) {
        match self {
            AbsValue::Scalar { kind, cst } => (kind, cst),
            _ => (ScalarKind::Float, None),
        }
    }
}

impl fmt::Display for AbsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsValue::Bottom => f.write_str("bot"),
            AbsValue::Scalar { kind, cst: None } => write!(f, "{kind}"),
            AbsValue::Scalar { kind, cst: Some(v) } => write!(f, "{kind}={v}"),
            AbsValue::Array { rank } => write!(f, "arr{rank}"),
            AbsValue::Any => f.write_str("any"),
        }
    }
}

fn const_kind(v: f64) -> ScalarKind {
    if v.is_finite() && v.fract() == 0.0 {
        ScalarKind::Int
    } else {
        ScalarKind::Float
    }
}

/// Per-chunk inferred facts: the join, over every reachable program
/// point, of each register's and slot's abstract value. This is the
/// artifact the ROADMAP's typed IR consumes — e.g. a slot inferred
/// `arr2` can dispatch rank-specialized indexing, a reg inferred `int`
/// can skip float-path checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkFacts {
    /// Slot state at chunk entry (rule bindings from the transform
    /// declaration; everything else ⊥). Kept so the facts can be
    /// recomputed after re-optimization without the AST.
    pub entry_slots: Vec<AbsValue>,
    /// Per-register inferred kind (⊥ = never written / unreachable).
    pub regs: Vec<AbsValue>,
    /// Per-slot inferred kind, entry state included.
    pub slots: Vec<AbsValue>,
}

impl ChunkFacts {
    /// Compact one-line rendering of the slot kinds (stable, for test
    /// pins and diagnostics): `s0=arr2 s1=int …`.
    pub fn render_slots(&self) -> String {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, v)| format!("s{i}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Entry slot state for a rule chunk, from the transform's data
/// declarations: each input/output binding is a scalar or an array of
/// the declared rank; local slots start ⊥.
pub fn entry_slots(transform: &Transform, rule: &Rule, chunk: &Chunk) -> Vec<AbsValue> {
    let mut slots = vec![AbsValue::Bottom; chunk.n_slots as usize];
    let bound = [
        (&rule.inputs, &chunk.input_slots),
        (&rule.outputs, &chunk.output_slots),
    ];
    for (bindings, slot_list) in bound {
        for (b, &s) in bindings.iter().zip(slot_list.iter()) {
            let v = match transform.data(&b.data) {
                Some(p) if p.dims.is_empty() => AbsValue::scalar(ScalarKind::Float),
                Some(p) => AbsValue::Array {
                    rank: p.dims.len() as u8,
                },
                None => AbsValue::Any,
            };
            if let Some(slot) = slots.get_mut(s as usize) {
                *slot = v;
            }
        }
    }
    slots
}

/// Runs the abstract interpreter over a verified chunk: forward
/// fixpoint over the CFG, joining states at merge points, then a final
/// accumulation pass folding every post-instruction state into the
/// returned [`ChunkFacts`].
///
/// `entry_slots` is the slot state at chunk entry (see
/// [`entry_slots`]); it is padded/truncated to `n_slots`.
pub fn analyze_chunk(chunk: &Chunk, entry_slots: &[AbsValue]) -> ChunkFacts {
    let n = chunk.code.len();
    let nr = chunk.n_regs as usize;
    let ns = chunk.n_slots as usize;
    let mut entry = entry_slots.to_vec();
    entry.resize(ns, AbsValue::Bottom);

    let mut facts = ChunkFacts {
        entry_slots: entry.clone(),
        regs: vec![AbsValue::Bottom; nr],
        slots: entry.clone(),
    };
    if n == 0 {
        return facts;
    }

    let code = &chunk.code;
    let cfg = Cfg::build(code);
    let nb = cfg.len();
    let mut in_regs: Vec<Vec<AbsValue>> = vec![vec![AbsValue::Bottom; nr]; nb];
    let mut in_slots: Vec<Vec<AbsValue>> = vec![vec![AbsValue::Bottom; ns]; nb];
    in_slots[0] = entry;

    let mut succ = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            let mut regs = in_regs[b].clone();
            let mut slots = in_slots[b].clone();
            for i in cfg.range(b, n) {
                step(&code[i], &mut regs, &mut slots);
            }
            cfg.successors(code, b, &mut succ);
            for &s in &succ {
                for (dst, &v) in in_regs[s].iter_mut().zip(&regs) {
                    let next = dst.join(v);
                    changed |= next != *dst;
                    *dst = next;
                }
                for (dst, &v) in in_slots[s].iter_mut().zip(&slots) {
                    let next = dst.join(v);
                    changed |= next != *dst;
                    *dst = next;
                }
            }
        }
    }

    for b in 0..nb {
        let mut regs = in_regs[b].clone();
        let mut slots = in_slots[b].clone();
        for i in cfg.range(b, n) {
            step(&code[i], &mut regs, &mut slots);
            for (dst, &v) in facts.regs.iter_mut().zip(&regs) {
                *dst = dst.join(v);
            }
            for (dst, &v) in facts.slots.iter_mut().zip(&slots) {
                *dst = dst.join(v);
            }
        }
    }
    facts
}

/// Abstract result of `a op b`.
fn abs_bin(
    op: crate::ast::BinOp,
    a: (ScalarKind, Option<f64>),
    b: (ScalarKind, Option<f64>),
) -> AbsValue {
    use crate::ast::BinOp::*;
    if matches!(op, And | Or) {
        // Malformed (the VM cannot dispatch it); stay conservative.
        return AbsValue::scalar(ScalarKind::Bool);
    }
    let cst = match (a.1, b.1) {
        (Some(x), Some(y)) => Some(crate::opt::apply_bin(op, x, y)),
        _ => None,
    };
    if is_cmp_op(op) {
        return AbsValue::Scalar {
            kind: ScalarKind::Bool,
            cst,
        };
    }
    match cst {
        Some(v) => AbsValue::constant(v),
        None => {
            let kind = match op {
                Div => ScalarKind::Float,
                _ => a.0.max(b.0).max(ScalarKind::Int),
            };
            AbsValue::scalar(kind)
        }
    }
}

/// Transfer function: one instruction over (registers, slots).
fn step(instr: &Instr, regs: &mut [AbsValue], slots: &mut [AbsValue]) {
    use crate::compile::{MathFn1, MathFn2};
    let reg = |regs: &[AbsValue], r: u16| regs[r as usize].as_scalar();
    match instr {
        Instr::Const { dst, val } => regs[*dst as usize] = AbsValue::constant(*val),
        Instr::Move { dst, src } => regs[*dst as usize] = regs[*src as usize],
        Instr::LoadSlotNum { dst, slot } => {
            regs[*dst as usize] = match slots[*slot as usize] {
                v @ AbsValue::Scalar { .. } => v,
                _ => AbsValue::scalar(ScalarKind::Float),
            };
        }
        Instr::StoreSlotNum { slot, src } => {
            let (kind, cst) = reg(regs, *src);
            slots[*slot as usize] = AbsValue::Scalar { kind, cst };
        }
        Instr::CopySlot { dst, src } => slots[*dst as usize] = slots[*src as usize],
        Instr::LoadParam { dst, .. }
        | Instr::ForEnoughPrep { dst, .. }
        | Instr::Choice { dst, .. } => {
            regs[*dst as usize] = AbsValue::scalar(ScalarKind::Int);
        }
        Instr::Bin { op, dst, a, b } => {
            regs[*dst as usize] = abs_bin(*op, reg(regs, *a), reg(regs, *b));
        }
        Instr::BinRI { op, dst, a, imm } => {
            regs[*dst as usize] = abs_bin(*op, reg(regs, *a), (const_kind(*imm), Some(*imm)));
        }
        Instr::BinIR { op, dst, imm, b } => {
            regs[*dst as usize] = abs_bin(*op, (const_kind(*imm), Some(*imm)), reg(regs, *b));
        }
        Instr::Neg { dst, src } => {
            let (kind, cst) = reg(regs, *src);
            regs[*dst as usize] = AbsValue::Scalar {
                kind: kind.max(ScalarKind::Int),
                cst: cst.map(|v| -v),
            };
        }
        Instr::Not { dst, src } => {
            let (_, cst) = reg(regs, *src);
            regs[*dst as usize] = AbsValue::Scalar {
                kind: ScalarKind::Bool,
                cst: cst.map(|v| (v == 0.0) as i64 as f64),
            };
        }
        Instr::TestNonZero { dst, src } => {
            let (_, cst) = reg(regs, *src);
            regs[*dst as usize] = AbsValue::Scalar {
                kind: ScalarKind::Bool,
                cst: cst.map(|v| (v != 0.0) as i64 as f64),
            };
        }
        Instr::Math1 { f, dst, src } => {
            let (kind, cst) = reg(regs, *src);
            let kind = match f {
                MathFn1::Floor | MathFn1::Ceil => ScalarKind::Int,
                MathFn1::Abs => kind,
                MathFn1::Sqrt | MathFn1::Exp | MathFn1::Log => ScalarKind::Float,
            };
            regs[*dst as usize] = AbsValue::Scalar {
                kind,
                cst: cst.map(|v| crate::vm::apply_math1(*f, v)),
            };
        }
        Instr::Math2 { f, dst, a, b } => {
            let (ka, ca) = reg(regs, *a);
            let (kb, cb) = reg(regs, *b);
            let kind = match f {
                MathFn2::Min | MathFn2::Max => ka.max(kb),
                MathFn2::Pow => ScalarKind::Float,
            };
            let cst = match (ca, cb) {
                (Some(x), Some(y)) => Some(crate::vm::apply_math2(*f, x, y)),
                _ => None,
            };
            regs[*dst as usize] = AbsValue::Scalar { kind, cst };
        }
        Instr::Rand { dst, .. } => regs[*dst as usize] = AbsValue::scalar(ScalarKind::Float),
        Instr::Shape { dst, .. } | Instr::ShapeHoisted { dst, .. } => {
            regs[*dst as usize] = AbsValue::scalar(ScalarKind::Int)
        }
        Instr::LoadIdx1 { dst, .. }
        | Instr::LoadIdx1U { dst, .. }
        | Instr::LoadIdx2 { dst, .. }
        | Instr::LoadIdx2U { dst, .. } => {
            regs[*dst as usize] = AbsValue::scalar(ScalarKind::Float);
        }
        // Element writes refine nothing: the slot keeps its array kind.
        Instr::StoreIdx1 { .. }
        | Instr::StoreIdx1U { .. }
        | Instr::StoreIdx2 { .. }
        | Instr::StoreIdx2U { .. }
        | Instr::BinStoreIdx1 { .. }
        | Instr::BinStoreIdx1U { .. } => {}
        Instr::AddImm { dst, imm } | Instr::AddImmJump { dst, imm, .. } => {
            let a = reg(regs, *dst);
            regs[*dst as usize] =
                abs_bin(crate::ast::BinOp::Add, a, (const_kind(*imm), Some(*imm)));
        }
        Instr::TruncPair { a, b } => {
            regs[*a as usize] = AbsValue::scalar(ScalarKind::Int);
            regs[*b as usize] = AbsValue::scalar(ScalarKind::Int);
        }
        Instr::WhileGuard { counter } => {
            regs[*counter as usize] = AbsValue::scalar(ScalarKind::Int);
        }
        Instr::SlotUpdImm {
            op,
            dst,
            src,
            imm,
            imm_on_left,
        } => {
            let s = match slots[*src as usize] {
                AbsValue::Scalar { kind, cst } => (kind, cst),
                _ => (ScalarKind::Float, None),
            };
            let imm = (const_kind(*imm), Some(*imm));
            let v = if *imm_on_left {
                abs_bin(*op, imm, s)
            } else {
                abs_bin(*op, s, imm)
            };
            slots[*dst as usize] = v;
        }
        Instr::SlotUpdReg { op, dst, src, b } => {
            let s = match slots[*src as usize] {
                AbsValue::Scalar { kind, cst } => (kind, cst),
                _ => (ScalarKind::Float, None),
            };
            slots[*dst as usize] = abs_bin(*op, s, reg(regs, *b));
        }
        Instr::CallHost { first, dst, .. } => {
            slots[*dst as usize] = AbsValue::Any;
            if let FirstArg::Var(s) = first {
                // The host may overwrite its mutable first argument
                // with anything.
                slots[*s as usize] = AbsValue::Any;
            }
        }
        Instr::CallTransform { dst, .. } => slots[*dst as usize] = AbsValue::Any,
        Instr::Jump { .. }
        | Instr::JumpIfZero { .. }
        | Instr::JumpIfNonZero { .. }
        | Instr::JumpIfGe { .. }
        | Instr::JumpCmp { .. }
        | Instr::JumpCmpImm { .. }
        | Instr::Switch { .. }
        | Instr::Charge { .. }
        | Instr::Return
        | Instr::Nop => {}
    }
}

// ---- DSL-level lints ---------------------------------------------------

/// Lint severity. Errors always fail `pb_lint`; warnings fail it under
/// `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// Broken: failed verification or unresolvable references.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Error or warning.
    pub severity: Severity,
    /// Source span the finding anchors to, when one exists.
    pub span: Option<Span>,
    /// The message.
    pub message: String,
}

/// Every name a transform references: rule bodies, rule binding data,
/// and data dimension expressions.
fn transform_referenced_names(t: &Transform) -> HashSet<String> {
    let mut names = HashSet::new();
    for rule in &t.rules {
        collect_block_vars(&rule.body, &mut names);
        for b in rule.inputs.iter().chain(&rule.outputs) {
            names.insert(b.data.clone());
        }
    }
    for p in t.all_data() {
        for dim in &p.dims {
            collect_expr_vars(dim, &mut names);
        }
    }
    names
}

/// Counts indexed element accesses in a code sequence, split into
/// `(checked, specialized)` — the static specialization-coverage
/// numbers `pb_lint` reports (`ShapeHoisted` is not an element access
/// and is not counted).
pub fn count_indexed(code: &[Instr]) -> (usize, usize) {
    let mut checked = 0;
    let mut specialized = 0;
    for instr in code {
        match instr {
            Instr::LoadIdx1 { .. }
            | Instr::LoadIdx2 { .. }
            | Instr::StoreIdx1 { .. }
            | Instr::StoreIdx2 { .. }
            | Instr::BinStoreIdx1 { .. } => checked += 1,
            Instr::LoadIdx1U { .. }
            | Instr::LoadIdx2U { .. }
            | Instr::StoreIdx1U { .. }
            | Instr::StoreIdx2U { .. }
            | Instr::BinStoreIdx1U { .. } => specialized += 1,
            _ => {}
        }
    }
    (checked, specialized)
}

/// Runs the DSL-level lints over a parsed (and sema-checked) program:
///
/// * **error** — a rule chunk fails verification (at `O0` or through
///   the full `O3` pass pipeline), or references a tunable missing
///   from the transform's schema;
/// * **warning** — an accuracy variable nothing reads, a tunable whose
///   range collapses to a single value, a rule producing only data no
///   rule consumes and no output needs, a rule that falls back to the
///   tree-walking interpreter, or a chunk whose facts force every
///   indexed access onto the checked fallback at `O3` (no
///   specialization despite indexed hot-path work).
pub fn lint_program(program: &Program) -> Vec<Lint> {
    let mut lints = Vec::new();
    let compiled = crate::compile::compile_program(program);
    for t in &program.transforms {
        let schema = crate::traininfo::extract_schema(program, &t.name);
        let referenced = transform_referenced_names(t);

        for av in &t.accuracy_variables {
            if !referenced.contains(&av.name) {
                lints.push(Lint {
                    severity: Severity::Warning,
                    span: Some(av.span),
                    message: format!(
                        "transform `{}`: accuracy variable `{}` is never read",
                        t.name, av.name
                    ),
                });
            }
        }

        for (_, tunable) in schema.iter() {
            if tunable.name().contains('.') {
                continue; // reported by the callee's own lint run
            }
            let collapsed = match *tunable.kind() {
                TunableKind::Cutoff { min, max }
                | TunableKind::AccuracyVariable { min, max }
                | TunableKind::UserDefined { min, max } => min == max,
                TunableKind::FloatParam { min, max } => min == max,
                TunableKind::Switch { num_values } => num_values <= 1,
                TunableKind::ChoiceSite { num_algorithms } => num_algorithms <= 1,
            };
            if collapsed {
                lints.push(Lint {
                    severity: Severity::Warning,
                    span: Some(t.span),
                    message: format!(
                        "transform `{}`: tunable `{}` range collapses to a constant",
                        t.name,
                        tunable.name()
                    ),
                });
            }
        }

        // Data consumed somewhere: a rule input, an output, or a name
        // referenced by any body/dimension (metrics read outputs).
        let consumed: HashSet<&str> = t
            .rules
            .iter()
            .flat_map(|r| r.inputs.iter().map(|b| b.data.as_str()))
            .chain(t.outputs.iter().map(|p| p.name.as_str()))
            .collect();
        for (ri, rule) in t.rules.iter().enumerate() {
            let live = rule
                .outputs
                .iter()
                .any(|b| consumed.contains(b.data.as_str()));
            if !live && !rule.outputs.is_empty() {
                lints.push(Lint {
                    severity: Severity::Warning,
                    span: Some(rule.span),
                    message: format!(
                        "transform `{}`: rule #{ri} is unreachable — nothing consumes {}",
                        t.name,
                        rule.outputs
                            .iter()
                            .map(|b| format!("`{}`", b.data))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }

        let Some(ct) = compiled.transform(&t.name) else {
            continue;
        };
        for (ri, (rule, compiled_rule)) in t.rules.iter().zip(&ct.rules).enumerate() {
            let chunk = match compiled_rule {
                Ok(chunk) => chunk,
                Err(e) => {
                    lints.push(Lint {
                        severity: Severity::Warning,
                        span: Some(rule.span),
                        message: format!(
                            "transform `{}`: rule #{ri} falls back to tree-walking ({e})",
                            t.name
                        ),
                    });
                    continue;
                }
            };
            let mut broken = |what: &str| {
                lints.push(Lint {
                    severity: Severity::Error,
                    span: Some(rule.span),
                    message: format!("transform `{}`: rule #{ri}: {what}", t.name),
                });
            };
            if let Err(v) = verify_chunk(chunk) {
                broken(&format!("chunk fails verification: {v}"));
                continue;
            }
            let entry = entry_slots(t, rule, chunk);
            match crate::opt::optimize_verified_with_entry(chunk, OptLevel::O3, true, Some(&entry))
            {
                Err(v) => broken(&v.to_string()),
                Ok(opt_chunk) => {
                    if let Err(v) = verify_tunables(&opt_chunk, &schema, "") {
                        broken(&v.to_string());
                    }
                    // Specialization coverage: indexed accesses that
                    // stayed on the checked path despite running the
                    // O3 specializer mean the facts could not prove
                    // the slot ranks / index kinds.
                    let (checked, specialized) = count_indexed(&opt_chunk.code);
                    if checked > 0 && specialized == 0 {
                        lints.push(Lint {
                            severity: Severity::Warning,
                            span: Some(rule.span),
                            message: format!(
                                "transform `{}`: rule #{ri}: facts force full fallback at O3 \
                                 ({checked} indexed accesses stay bounds-checked)",
                                t.name
                            ),
                        });
                    }
                }
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptLevel;

    fn chunk(code: Vec<Instr>, n_regs: u16, n_slots: u16, names: Vec<String>) -> Chunk {
        Chunk {
            label: "test::r0".into(),
            code,
            names,
            n_regs,
            n_slots,
            input_slots: vec![],
            output_slots: vec![],
            opt: OptLevel::O0,
        }
    }

    #[test]
    fn accepts_minimal_chunk() {
        let c = chunk(
            vec![
                Instr::Charge { amount: 1.0 },
                Instr::Const { dst: 0, val: 2.0 },
                Instr::StoreSlotNum { slot: 0, src: 0 },
                Instr::Return,
            ],
            1,
            1,
            vec![],
        );
        verify_chunk(&c).unwrap();
    }

    #[test]
    fn rejects_bad_jump_target() {
        let c = chunk(vec![Instr::Jump { target: 5 }], 0, 0, vec![]);
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::BadJumpTarget);
        assert_eq!(v.at, 0);
    }

    #[test]
    fn fall_off_target_is_legal() {
        let c = chunk(vec![Instr::Jump { target: 1 }], 0, 0, vec![]);
        verify_chunk(&c).unwrap();
    }

    #[test]
    fn rejects_use_before_def() {
        let c = chunk(
            vec![Instr::Move { dst: 0, src: 1 }, Instr::Return],
            2,
            0,
            vec![],
        );
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::UseBeforeDef);
    }

    #[test]
    fn rejects_one_sided_definition() {
        // r1 defined only on the taken branch; the join reads it.
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 0.0 },
                Instr::JumpIfZero { cond: 0, target: 3 },
                Instr::Const { dst: 1, val: 1.0 },
                Instr::Move { dst: 2, src: 1 },
                Instr::Return,
            ],
            3,
            0,
            vec![],
        );
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::UseBeforeDef);
        assert_eq!(v.at, 3);
    }

    #[test]
    fn accepts_both_sided_definition() {
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 0.0 },
                Instr::JumpIfZero { cond: 0, target: 4 },
                Instr::Const { dst: 1, val: 1.0 },
                Instr::Jump { target: 5 },
                Instr::Const { dst: 1, val: 2.0 },
                Instr::Move { dst: 2, src: 1 },
                Instr::Return,
            ],
            3,
            0,
            vec![],
        );
        verify_chunk(&c).unwrap();
    }

    #[test]
    fn rejects_slot_out_of_bounds() {
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 1.0 },
                Instr::StoreSlotNum { slot: 3, src: 0 },
            ],
            1,
            1,
            vec![],
        );
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::SlotOutOfBounds);
        assert_eq!(v.at, 1);
    }

    #[test]
    fn rejects_reg_out_of_bounds() {
        let c = chunk(vec![Instr::Const { dst: 7, val: 0.0 }], 2, 0, vec![]);
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::RegOutOfBounds);
    }

    #[test]
    fn rejects_name_out_of_bounds() {
        let c = chunk(vec![Instr::LoadParam { dst: 0, name: 4 }], 1, 0, vec![]);
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NameOutOfBounds);
    }

    #[test]
    fn rejects_unguarded_switch() {
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 0.0 },
                Instr::Switch {
                    src: 0,
                    targets: vec![2, 2],
                },
                Instr::Return,
            ],
            1,
            0,
            vec![],
        );
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::UnguardedSwitch);
    }

    #[test]
    fn accepts_choice_guarded_switch() {
        let c = chunk(
            vec![
                Instr::Choice {
                    dst: 0,
                    name: 0,
                    branches: 2,
                },
                Instr::Switch {
                    src: 0,
                    targets: vec![2, 2],
                },
                Instr::Return,
            ],
            1,
            0,
            vec!["either_0".into()],
        );
        verify_chunk(&c).unwrap();
    }

    #[test]
    fn rejects_bad_charge() {
        let c = chunk(vec![Instr::Charge { amount: -1.0 }], 0, 0, vec![]);
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::BadCharge);
    }

    #[test]
    fn rejects_bad_operator() {
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 1.0 },
                Instr::Const { dst: 1, val: 1.0 },
                Instr::Bin {
                    op: crate::ast::BinOp::And,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
            ],
            3,
            0,
            vec![],
        );
        let v = verify_chunk(&c).unwrap_err();
        assert_eq!(v.kind, ViolationKind::BadOperator);
    }

    #[test]
    fn charge_signature_elides_zero_regions_and_sums() {
        let code = vec![
            Instr::Charge { amount: 1.0 },
            Instr::Charge { amount: 1.0 },
            Instr::Jump { target: 3 },
            Instr::Charge { amount: 1.0 },
            Instr::Return,
        ];
        assert_eq!(charge_signature(&code), vec![2.0, 1.0]);
    }

    #[test]
    fn join_is_a_lattice() {
        use AbsValue::*;
        let int = AbsValue::scalar(ScalarKind::Int);
        let a2 = Array { rank: 2 };
        assert_eq!(Bottom.join(int), int);
        assert_eq!(int.join(Bottom), int);
        assert_eq!(a2.join(a2), a2);
        assert_eq!(a2.join(Array { rank: 1 }), Any);
        assert_eq!(int.join(a2), Any);
        assert_eq!(
            AbsValue::constant(3.0).join(AbsValue::constant(3.0)),
            AbsValue::constant(3.0)
        );
        assert_eq!(
            AbsValue::constant(3.0).join(AbsValue::constant(4.0)),
            AbsValue::scalar(ScalarKind::Int)
        );
        assert_eq!(
            AbsValue::constant(1.5).join(AbsValue::constant(2.0)),
            AbsValue::scalar(ScalarKind::Float)
        );
    }

    #[test]
    fn abstract_interp_infers_kinds_and_consts() {
        // s0 = const 6 (3 * 2 folded abstractly), r-level bool from a
        // comparison.
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 3.0 },
                Instr::BinRI {
                    op: crate::ast::BinOp::Mul,
                    dst: 1,
                    a: 0,
                    imm: 2.0,
                },
                Instr::StoreSlotNum { slot: 0, src: 1 },
                Instr::Bin {
                    op: crate::ast::BinOp::Lt,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                Instr::Return,
            ],
            3,
            1,
            vec![],
        );
        let facts = analyze_chunk(&c, &[]);
        assert_eq!(facts.slots[0], AbsValue::constant(6.0));
        assert_eq!(
            facts.regs[2],
            AbsValue::Scalar {
                kind: ScalarKind::Bool,
                cst: Some(1.0)
            }
        );
    }

    #[test]
    fn loop_counter_loses_constness_but_stays_int() {
        // r0 = 0; loop: r0 += 1; jump back — the join forces non-const
        // but keeps int.
        let c = chunk(
            vec![
                Instr::Const { dst: 0, val: 0.0 },
                Instr::AddImmJump {
                    dst: 0,
                    imm: 1.0,
                    target: 1,
                },
            ],
            1,
            0,
            vec![],
        );
        let facts = analyze_chunk(&c, &[]);
        assert_eq!(facts.regs[0], AbsValue::scalar(ScalarKind::Int));
    }

    #[test]
    fn nan_constants_converge() {
        // Equality is bitwise, so a folded NaN constant is equal to
        // itself — the fixpoint's changed-check relies on that to
        // terminate when a NaN stays live across a back-edge.
        assert_eq!(AbsValue::constant(f64::NAN), AbsValue::constant(f64::NAN));
        let c = chunk(
            vec![
                Instr::Const {
                    dst: 0,
                    val: f64::NAN,
                },
                Instr::Const { dst: 1, val: 1.0 },
                Instr::JumpIfZero { cond: 1, target: 4 },
                Instr::Jump { target: 1 },
                Instr::Return,
            ],
            2,
            0,
            vec![],
        );
        verify_chunk(&c).unwrap();
        let facts = analyze_chunk(&c, &[]);
        let (kind, cst) = facts.regs[0].as_scalar();
        assert_eq!(kind, ScalarKind::Float);
        assert!(cst.is_some_and(f64::is_nan));
    }
}
