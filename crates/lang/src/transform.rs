//! Adapter exposing a DSL transform as a tunable
//! [`pb_runtime::Transform`].
//!
//! This closes the loop of the paper's toolchain: a program written in
//! the language is compiled (parsed, checked, schema-extracted) and
//! handed to the *same* genetic autotuner the native benchmarks use.
//! The embedder supplies an input generator (the paper's training-data
//! generators were external programs too).

use crate::ast::Program;
use crate::interp::{HostFn, Interpreter, RuntimeError, Value};
use crate::opt::OptLevel;
use crate::sema::check_program;
use crate::traininfo::extract_schema;
use pb_config::Schema;
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use std::collections::HashMap;
use std::fmt;

/// Generates a named-input map for a training size.
pub type InputGenerator = Box<dyn Fn(u64, &mut SmallRng) -> HashMap<String, Value> + Send + Sync>;

/// Errors constructing a [`DslTransform`].
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// Semantic checking failed.
    Sema(Vec<String>),
    /// The named transform does not exist.
    UnknownTransform(String),
    /// The transform declares no `accuracy_metric`.
    NoAccuracyMetric(String),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Sema(errors) => write!(f, "semantic errors: {}", errors.join("; ")),
            DslError::UnknownTransform(name) => write!(f, "unknown transform `{name}`"),
            DslError::NoAccuracyMetric(name) => {
                write!(f, "transform `{name}` declares no accuracy_metric")
            }
        }
    }
}

impl std::error::Error for DslError {}

/// A compiled, tunable DSL transform.
pub struct DslTransform {
    interpreter: Interpreter,
    name: String,
    metric: String,
    metric_schema: Schema,
    input_gen: InputGenerator,
}

impl fmt::Debug for DslTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DslTransform")
            .field("name", &self.name)
            .field("metric", &self.metric)
            .finish()
    }
}

impl DslTransform {
    /// Compiles `transform_name` out of a parsed program.
    ///
    /// # Errors
    ///
    /// See [`DslError`].
    pub fn compile(
        program: Program,
        transform_name: &str,
        input_gen: InputGenerator,
    ) -> Result<Self, DslError> {
        Self::compile_at(program, transform_name, input_gen, OptLevel::default())
    }

    /// Like [`DslTransform::compile`] with an explicit bytecode
    /// [`OptLevel`]. Every level executes bit-identically; lower levels
    /// exist for debugging and for differential benchmarks.
    ///
    /// # Errors
    ///
    /// See [`DslError`].
    pub fn compile_at(
        program: Program,
        transform_name: &str,
        input_gen: InputGenerator,
        opt_level: OptLevel,
    ) -> Result<Self, DslError> {
        check_program(&program)
            .map_err(|es| DslError::Sema(es.into_iter().map(|e| e.message).collect()))?;
        let t = program
            .transform(transform_name)
            .ok_or_else(|| DslError::UnknownTransform(transform_name.to_owned()))?;
        let metric = t
            .accuracy_metric
            .clone()
            .ok_or_else(|| DslError::NoAccuracyMetric(transform_name.to_owned()))?;
        let metric_schema = extract_schema(&program, &metric);
        // Lower every rule to bytecode once, here at construction: the
        // tuner re-executes candidates thousands of times per
        // generation, so all of them (and the metric transform) run on
        // the register VM — through the optimizer pipeline — falling
        // back to tree-walking only for the rules the compiler does
        // not cover.
        Ok(DslTransform {
            interpreter: Interpreter::new_compiled_at(program, opt_level),
            name: transform_name.to_owned(),
            metric,
            metric_schema,
            input_gen,
        })
    }

    /// Registers a host function for the transform bodies.
    pub fn register_host_fn(&mut self, name: impl Into<String>, f: HostFn) {
        self.interpreter.register_host_fn(name, f);
    }

    /// The underlying interpreter (for direct runs).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interpreter
    }

    /// The inferred [`crate::analysis::ChunkFacts`] for this
    /// transform's rule `rule_idx`, if that rule compiled — the facts
    /// describe the chunk at the opt level this transform dispatches.
    pub fn chunk_facts(&self, rule_idx: usize) -> Option<&crate::analysis::ChunkFacts> {
        self.interpreter.compiled()?.facts(&self.name, rule_idx)
    }

    /// Runs the accuracy-metric transform on an input/output pair.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (e.g. the metric reads data the
    /// main transform does not provide).
    pub fn run_metric(
        &self,
        inputs: &HashMap<String, Value>,
        outputs: &HashMap<String, Value>,
    ) -> Result<f64, RuntimeError> {
        let metric_t = self
            .interpreter
            .program()
            .transform(&self.metric)
            .expect("metric existence checked at compile time");
        // Borrowed inputs: the interpreter clones what it keeps, so
        // the metric run costs no extra copies of the (possibly large)
        // transform outputs.
        let mut metric_inputs: HashMap<String, &Value> = HashMap::new();
        for p in &metric_t.inputs {
            let v = outputs
                .get(&p.name)
                .or_else(|| inputs.get(&p.name))
                .ok_or(RuntimeError {
                    message: format!(
                        "accuracy metric needs `{}`, which the transform does not provide",
                        p.name
                    ),
                    span: Some(p.span),
                })?;
            metric_inputs.insert(p.name.clone(), v);
        }
        let config = self.metric_schema.default_config();
        let mut ctx = ExecCtx::new(&self.metric_schema, &config, 1, 0);
        let result =
            self.interpreter
                .run_prefixed(&self.metric, &metric_inputs, &mut ctx, "", 0)?;
        let out_name = &metric_t.outputs[0].name;
        result
            .get(out_name)
            .and_then(Value::as_num)
            .ok_or(RuntimeError {
                message: format!("accuracy metric produced no scalar `{out_name}`"),
                span: None,
            })
    }
}

impl Transform for DslTransform {
    type Input = HashMap<String, Value>;
    type Output = HashMap<String, Value>;

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Schema {
        extract_schema(self.interpreter.program(), &self.name)
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> Self::Input {
        (self.input_gen)(n, rng)
    }

    fn execute(&self, input: &Self::Input, ctx: &mut ExecCtx<'_>) -> Self::Output {
        match self.interpreter.run(&self.name, input, ctx) {
            Ok(outputs) => outputs,
            Err(e) => panic!("DSL transform `{}` failed: {e}", self.name),
        }
    }

    fn accuracy(&self, input: &Self::Input, output: &Self::Output) -> f64 {
        self.run_metric(input, output).unwrap_or(f64::NEG_INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use pb_config::AccuracyBins;
    use pb_runtime::{CostModel, TransformRunner, TrialRunner};
    /// An iterative-refinement DSL program: each for_enough iteration
    /// halves the error; accuracy = iterations performed.
    const REFINE: &str = r#"
        transform refine
        accuracy_metric refineacc
        from In[n]
        to Out[n], Steps
        {
            to (Out o, Steps s) from (In a) {
                for_enough {
                    s = s + 1;
                }
                for (i in 0 .. len(a)) { o[i] = a[i]; }
            }
        }

        transform refineacc
        from Steps, In[n]
        to Accuracy
        {
            to (Accuracy acc) from (Steps s, In a) {
                acc = 1 - 1 / (1 + s);
            }
        }
    "#;

    fn compile_refine() -> DslTransform {
        let program = parse_program(REFINE).unwrap();
        DslTransform::compile(
            program,
            "refine",
            Box::new(|n, _rng| {
                let mut m = HashMap::new();
                m.insert("In".to_string(), Value::Arr1(vec![1.0; n.max(1) as usize]));
                m
            }),
        )
        .unwrap()
    }

    #[test]
    fn compiles_and_runs_through_the_runner() {
        let dsl = compile_refine();
        let runner = TransformRunner::new(dsl, CostModel::Virtual);
        let mut config = runner.schema().default_config();
        config
            .set_by_name(runner.schema(), "for_enough_0", pb_config::Value::Int(9))
            .unwrap();
        let outcome = runner.run_trial(&config, 4, 1);
        // accuracy = 1 - 1/(1+9) = 0.9.
        assert!((outcome.accuracy - 0.9).abs() < 1e-12);
        assert!(outcome.virtual_cost > 0.0);
    }

    #[test]
    fn metric_errors_surface_as_neg_infinity() {
        let program = parse_program(
            r#"
            transform t
            accuracy_metric m
            from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = 1; }
            }
            transform m from Missing[n] to Accuracy {
                to (Accuracy acc) from (Missing x) { acc = 1; }
            }
        "#,
        )
        .unwrap();
        let dsl = DslTransform::compile(
            program,
            "t",
            Box::new(|_n, _| {
                let mut m = HashMap::new();
                m.insert("In".to_string(), Value::Arr1(vec![0.0]));
                m
            }),
        )
        .unwrap();
        let input = (dsl.input_gen)(1, &mut {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(0)
        });
        let schema = Transform::schema(&dsl);
        let config = schema.default_config();
        let mut ctx = ExecCtx::new(&schema, &config, 1, 0);
        let output = dsl.execute(&input, &mut ctx);
        assert_eq!(dsl.accuracy(&input, &output), f64::NEG_INFINITY);
    }

    #[test]
    fn missing_metric_is_a_compile_error() {
        let program = parse_program(
            r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = 1; }
            }
        "#,
        )
        .unwrap();
        let err = DslTransform::compile(program, "t", Box::new(|_, _| HashMap::new())).unwrap_err();
        assert!(matches!(err, DslError::NoAccuracyMetric(_)));
    }

    #[test]
    fn unknown_transform_is_a_compile_error() {
        let program = parse_program(
            r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = 1; }
            }
        "#,
        )
        .unwrap();
        let err =
            DslTransform::compile(program, "ghost", Box::new(|_, _| HashMap::new())).unwrap_err();
        assert!(matches!(err, DslError::UnknownTransform(_)));
    }

    #[test]
    fn bins_type_is_reachable() {
        // Smoke: bins helper composes with the runtime types.
        let bins = AccuracyBins::new(vec![0.5, 0.9]);
        assert_eq!(bins.len(), 2);
    }
}
