//! The facts-directed specializer ([`OptLevel::O3`]): consumes
//! [`ChunkFacts`] to rewrite checked operations into the specialized
//! forms dispatch executes faster, without perturbing observable
//! behavior.
//!
//! Two rewrites run here (the third O3 feature, per-callee binding
//! plans, lives in the interpreter — it needs the whole program, not
//! one chunk):
//!
//! 1. **Unchecked indexing** — an indexed load/store whose slot the
//!    facts prove is an array of the matching rank becomes its `*U`
//!    form. Dispatch of a `*U` form guards with one `0 <= idx < len`
//!    compare and falls back to the checked form's exact path when the
//!    guard fails, so this rewrite is bit-identical even when the
//!    facts were over-optimistic (e.g. computed without entry-slot
//!    information). Index registers carry no licensing condition: the
//!    guard truncates in-range indices exactly like the checked
//!    `index()` conversion, so index *kind* cannot change behavior —
//!    and the chunk-wide register facts join over every program
//!    point, which register reuse after renumbering would turn into
//!    lost coverage, not safety.
//! 2. **Loop-invariant `Shape` hoisting** — a `Shape` read inside a
//!    counted loop, of a slot that (a) the *entry* facts prove is an
//!    array whose rank accepts the query (so the read cannot error)
//!    and (b) no instruction in the chunk rebinds (indexed stores
//!    mutate elements in place and never change the shape), moves into
//!    a preheader as [`Instr::ShapeHoisted`] behind a zero-trip guard
//!    — a copy of the loop header's exit branch — so the hoisted read
//!    executes exactly when the loop body would run at least once. The
//!    in-loop `Shape` becomes a register `Move` that the cleanup round
//!    after this pass propagates away.
//!
//! Hoisting inserts instructions, so it remaps every jump target:
//! entries into the loop run the preheader, back edges skip it.

use crate::analysis::{AbsValue, ChunkFacts};
use crate::compile::{Instr, Reg, ShapeKind, Slot};

/// Runs both rewrites over `code` in place. Returns the new register
/// count (hoisting allocates fresh registers at the top of the bank;
/// the pipeline's final `renumber_regs` re-densifies).
pub(super) fn specialize(code: &mut Vec<Instr>, n_regs: u16, facts: &ChunkFacts) -> u16 {
    let mut n_regs = n_regs;
    // Hoist first: the loop scan reads the checked `Shape` forms, and
    // the unchecked rewrite below is position-independent.
    while hoist_one_loop(code, &mut n_regs, facts) {}
    rewrite_unchecked(code, facts);
    n_regs
}

/// Whether the facts prove `s` always holds a rank-`rank` array.
fn slot_is_arr(slots: &[AbsValue], s: Slot, rank: u8) -> bool {
    matches!(slots.get(s as usize), Some(AbsValue::Array { rank: r }) if *r == rank)
}

/// In-place rewrite of checked indexed ops into their `*U` forms where
/// the facts prove the slot rank.
fn rewrite_unchecked(code: &mut [Instr], facts: &ChunkFacts) {
    for instr in code.iter_mut() {
        let next = match *instr {
            Instr::LoadIdx1 { dst, slot, idx } if slot_is_arr(&facts.slots, slot, 1) => {
                Instr::LoadIdx1U { dst, slot, idx }
            }
            Instr::LoadIdx2 { dst, slot, i, j } if slot_is_arr(&facts.slots, slot, 2) => {
                Instr::LoadIdx2U { dst, slot, i, j }
            }
            Instr::StoreIdx1 { slot, idx, src } if slot_is_arr(&facts.slots, slot, 1) => {
                Instr::StoreIdx1U { slot, idx, src }
            }
            Instr::StoreIdx2 { slot, i, j, src } if slot_is_arr(&facts.slots, slot, 2) => {
                Instr::StoreIdx2U { slot, i, j, src }
            }
            Instr::BinStoreIdx1 {
                op,
                slot,
                idx,
                a,
                b,
            } if slot_is_arr(&facts.slots, slot, 1) => Instr::BinStoreIdx1U {
                op,
                slot,
                idx,
                a,
                b,
            },
            _ => continue,
        };
        *instr = next;
    }
}

/// Whether a `Shape` query on a slot of proven rank can never error
/// (see the VM's shape-acceptance rules: `len` reads rank-1 length or
/// rank-2 cols; `rows`/`cols` need rank 2).
fn shape_infallible(kind: ShapeKind, rank: u8) -> bool {
    match kind {
        ShapeKind::Len => rank == 1 || rank == 2,
        ShapeKind::Rows | ShapeKind::Cols => rank == 2,
    }
}

/// Whether any instruction in the chunk rebinds slot `s` to a new
/// value. Indexed stores don't count: they mutate elements of the
/// existing array in place and cannot change its shape.
fn slot_rebound(code: &[Instr], s: Slot) -> bool {
    use crate::compile::FirstArg;
    code.iter().any(|instr| match instr {
        Instr::StoreSlotNum { slot, .. } => *slot == s,
        Instr::CopySlot { dst, .. } => *dst == s,
        Instr::SlotUpdImm { dst, .. } | Instr::SlotUpdReg { dst, .. } => *dst == s,
        Instr::CallHost { first, dst, .. } => {
            *dst == s || matches!(first, FirstArg::Var(fs) if *fs == s)
        }
        Instr::CallTransform { dst, .. } => *dst == s,
        _ => false,
    })
}

/// A copy of a loop header's exit branch, retargeted for use as the
/// preheader's zero-trip guard; `None` when the header instruction is
/// not a forward conditional exit.
fn guard_from_header(header: &Instr, loop_end: usize) -> Option<Instr> {
    let exits = |target: usize| target > loop_end;
    match *header {
        Instr::JumpIfZero { cond, target } if exits(target) => {
            Some(Instr::JumpIfZero { cond, target })
        }
        Instr::JumpIfNonZero { cond, target } if exits(target) => {
            Some(Instr::JumpIfNonZero { cond, target })
        }
        Instr::JumpIfGe { a, b, target } if exits(target) => Some(Instr::JumpIfGe { a, b, target }),
        Instr::JumpCmp {
            op,
            a,
            b,
            jump_if,
            target,
        } if exits(target) => Some(Instr::JumpCmp {
            op,
            a,
            b,
            jump_if,
            target,
        }),
        Instr::JumpCmpImm {
            op,
            a,
            imm,
            jump_if,
            target,
        } if exits(target) => Some(Instr::JumpCmpImm {
            op,
            a,
            imm,
            jump_if,
            target,
        }),
        _ => None,
    }
}

/// Finds one loop with hoistable `Shape` reads, rewrites it, and
/// returns whether anything changed (the caller loops to a fixpoint;
/// each rewrite consumes its `Shape`s, so this terminates).
fn hoist_one_loop(code: &mut Vec<Instr>, n_regs: &mut u16, facts: &ChunkFacts) -> bool {
    // Back-edge map: header -> furthest back-edge source.
    let mut loops: Vec<(usize, usize)> = Vec::new();
    for (i, instr) in code.iter().enumerate() {
        let mut note = |t: usize| {
            if t <= i {
                match loops.iter_mut().find(|(h, _)| *h == t) {
                    Some((_, s)) => *s = (*s).max(i),
                    None => loops.push((t, i)),
                }
            }
        };
        match instr {
            Instr::Jump { target }
            | Instr::AddImmJump { target, .. }
            | Instr::JumpIfZero { target, .. }
            | Instr::JumpIfNonZero { target, .. }
            | Instr::JumpIfGe { target, .. }
            | Instr::JumpCmp { target, .. }
            | Instr::JumpCmpImm { target, .. } => note(*target),
            Instr::Switch { targets, .. } => {
                for t in targets {
                    note(*t);
                }
            }
            _ => {}
        }
    }

    for (h, s) in loops {
        let Some(guard) = guard_from_header(&code[h], s) else {
            continue;
        };
        // Unique hoistable (kind, slot) pairs in the body, in first-use
        // order.
        let mut pairs: Vec<(ShapeKind, Slot)> = Vec::new();
        for instr in &code[h + 1..=s] {
            if let Instr::Shape { kind, slot, .. } = instr {
                let rank = match facts.entry_slots.get(*slot as usize) {
                    Some(AbsValue::Array { rank }) => *rank,
                    _ => continue,
                };
                if !shape_infallible(*kind, rank)
                    || slot_rebound(code, *slot)
                    || pairs.contains(&(*kind, *slot))
                {
                    continue;
                }
                pairs.push((*kind, *slot));
            }
        }
        if pairs.is_empty() {
            continue;
        }

        // Fresh registers for the hoisted values.
        let regs: Vec<Reg> = pairs
            .iter()
            .map(|_| {
                let r = *n_regs;
                *n_regs += 1;
                r
            })
            .collect();

        // Replace each in-loop `Shape` with a `Move` from its hoisted
        // register (same position, same conditional execution — the
        // def structure of `dst` is unchanged).
        for instr in &mut code[h + 1..=s] {
            if let Instr::Shape { kind, dst, slot } = *instr {
                if let Some(p) = pairs.iter().position(|&(k, sl)| k == kind && sl == slot) {
                    *instr = Instr::Move { dst, src: regs[p] };
                }
            }
        }

        // Remap every jump target across the insertion: targets past
        // the header shift by `k`; back edges (sources inside the
        // loop) re-enter at the shifted header, skipping the
        // preheader; entries from outside run it.
        let k = 1 + pairs.len();
        for (i, instr) in code.iter_mut().enumerate() {
            let remap = |t: &mut usize| {
                if *t > h || (*t == h && i > h && i <= s) {
                    *t += k;
                }
            };
            match instr {
                Instr::Jump { target }
                | Instr::AddImmJump { target, .. }
                | Instr::JumpIfZero { target, .. }
                | Instr::JumpIfNonZero { target, .. }
                | Instr::JumpIfGe { target, .. }
                | Instr::JumpCmp { target, .. }
                | Instr::JumpCmpImm { target, .. } => remap(target),
                Instr::Switch { targets, .. } => {
                    for t in targets.iter_mut() {
                        remap(t);
                    }
                }
                _ => {}
            }
        }

        // The guard's own exit target also shifts (it was cloned from
        // the pre-insertion header).
        let mut guard = guard;
        if let Instr::JumpIfZero { target, .. }
        | Instr::JumpIfNonZero { target, .. }
        | Instr::JumpIfGe { target, .. }
        | Instr::JumpCmp { target, .. }
        | Instr::JumpCmpImm { target, .. } = &mut guard
        {
            *target += k;
        }

        // Splice the preheader in: guard first (so the hoisted reads
        // run only when the body will), then the hoists.
        let mut pre = Vec::with_capacity(k);
        pre.push(guard);
        for (&(kind, slot), &dst) in pairs.iter().zip(&regs) {
            pre.push(Instr::ShapeHoisted { kind, dst, slot });
        }
        code.splice(h..h, pre);
        return true;
    }
    false
}
