//! Hand-written lexer for the transform language.

use crate::token::{keyword, Span, Token, TokenKind};
use std::fmt;

/// A lexical error with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `source`, skipping whitespace and `//` comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognized characters or malformed
/// numbers.
///
/// # Examples
///
/// ```
/// use pb_lang::lexer::lex;
/// use pb_lang::token::TokenKind;
///
/// let tokens = lex("to (Out o) // comment\n").unwrap();
/// assert_eq!(tokens[0].kind, TokenKind::To);
/// assert!(matches!(tokens[2].kind, TokenKind::Ident(_)));
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &source[start..i];
            let kind = keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
            tokens.push(Token {
                kind,
                span: Span::new(start, i),
            });
            continue;
        }
        // Numbers (decimal, optional fraction and exponent).
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &source[start..i];
            let value: f64 = text.parse().map_err(|_| LexError {
                message: format!("malformed number `{text}`"),
                span: Span::new(start, i),
            })?;
            tokens.push(Token {
                kind: TokenKind::Number(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // Operators and punctuation.
        let two = if i + 1 < bytes.len() {
            &source[i..i + 2]
        } else {
            ""
        };
        let (kind, len) = match two {
            "==" => (TokenKind::Eq, 2),
            "!=" => (TokenKind::Ne, 2),
            "<=" => (TokenKind::Le, 2),
            ">=" => (TokenKind::Ge, 2),
            "&&" => (TokenKind::AndAnd, 2),
            "||" => (TokenKind::OrOr, 2),
            ".." => (TokenKind::DotDot, 2),
            _ => match c {
                '(' => (TokenKind::LParen, 1),
                ')' => (TokenKind::RParen, 1),
                '[' => (TokenKind::LBracket, 1),
                ']' => (TokenKind::RBracket, 1),
                '{' => (TokenKind::LBrace, 1),
                '}' => (TokenKind::RBrace, 1),
                ',' => (TokenKind::Comma, 1),
                ';' => (TokenKind::Semi, 1),
                '=' => (TokenKind::Assign, 1),
                '<' => (TokenKind::Lt, 1),
                '>' => (TokenKind::Gt, 1),
                '+' => (TokenKind::Plus, 1),
                '-' => (TokenKind::Minus, 1),
                '*' => (TokenKind::Star, 1),
                '/' => (TokenKind::Slash, 1),
                '%' => (TokenKind::Percent, 1),
                '!' => (TokenKind::Bang, 1),
                other => {
                    return Err(LexError {
                        message: format!("unexpected character `{other}`"),
                        span: Span::new(start, start + other.len_utf8()),
                    })
                }
            },
        };
        i += len;
        tokens.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        let k = kinds("transform kmeans from to foo");
        assert_eq!(
            k,
            vec![
                TokenKind::Transform,
                TokenKind::Ident("kmeans".into()),
                TokenKind::From,
                TokenKind::To,
                TokenKind::Ident("foo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        let k = kinds("1 2.5 1e3 2.5e-2 7");
        let nums: Vec<f64> = k
            .into_iter()
            .filter_map(|t| match t {
                TokenKind::Number(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1.0, 2.5, 1000.0, 0.025, 7.0]);
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("== != <= >= && || ..");
        assert_eq!(
            k,
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::DotDot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn range_vs_decimal_ambiguity() {
        // `0..n` must lex as number, dot-dot, ident — not a float.
        let k = kinds("0..n");
        assert_eq!(
            k,
            vec![
                TokenKind::Number(0.0),
                TokenKind::DotDot,
                TokenKind::Ident("n".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // the rest is ignored == != \n b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_character_errors() {
        let err = lex("a # b").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.span.start, 2);
    }

    #[test]
    fn spans_point_into_source() {
        let src = "to (Out o)";
        let tokens = lex(src).unwrap();
        assert_eq!(&src[tokens[2].span.start..tokens[2].span.end], "Out");
    }
}
