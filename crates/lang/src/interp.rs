//! Tree-walking interpreter for checked transform programs.
//!
//! The original compiler generated C++; this reproduction executes the
//! AST directly against a [`pb_runtime::ExecCtx`], which supplies the
//! choice configuration exactly as the generated code's config-file
//! lookups did: rule choices resolve through `rule_<Data>` decision
//! trees, `for_enough` loops read their `for_enough_<i>` accuracy
//! variables, `either…or` reads `either_<i>`, and sub-transform calls
//! resolve their tunables under a `<callee>.` prefix.

use crate::ast::*;
use crate::cdg::ChoiceDependencyGraph;
use crate::opt::OptLevel;
use crate::token::Span;
use pb_runtime::ExecCtx;
use rand::Rng;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;

/// Runtime values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar number.
    Num(f64),
    /// A 1-D array.
    Arr1(Vec<f64>),
    /// A 2-D array, row-major.
    Arr2 {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Row-major data.
        data: Vec<f64>,
    },
}

impl Value {
    /// Builds a zero value with the given dimensions (0 dims = scalar).
    pub fn zeros(dims: &[usize]) -> Value {
        match dims {
            [] => Value::Num(0.0),
            [n] => Value::Arr1(vec![0.0; *n]),
            [r, c] => Value::Arr2 {
                rows: *r,
                cols: *c,
                data: vec![0.0; r * c],
            },
            _ => panic!("only scalars, 1-D, and 2-D arrays are supported"),
        }
    }

    /// Scalar accessor.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value's dimensions as an owned `Vec` (compatibility
    /// wrapper; shape queries on hot paths use
    /// [`Value::dims_ref`], which does not allocate).
    pub fn dims(&self) -> Vec<usize> {
        self.dims_ref().to_vec()
    }

    /// The value's dimensions, stored inline — the borrowing-flavoured
    /// shape accessor: no `Vec` allocation per query. Values have at
    /// most two dimensions, so the shape fits in a [`Dims`] on the
    /// stack; deref it as a `&[usize]`.
    pub fn dims_ref(&self) -> Dims {
        match self {
            Value::Num(_) => Dims {
                count: 0,
                dims: [0; 2],
            },
            Value::Arr1(v) => Dims {
                count: 1,
                dims: [v.len(), 0],
            },
            Value::Arr2 { rows, cols, .. } => Dims {
                count: 2,
                dims: [*rows, *cols],
            },
        }
    }

    /// Bitwise equality: stricter than `PartialEq` (distinguishes
    /// `-0.0` from `0.0`) and total over NaN. This is the comparison
    /// the differential suite and benchmarks use to pin executors
    /// "bit-identical" to each other.
    pub fn bits_eq(&self, other: &Value) -> bool {
        fn eq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => eq(*a, *b),
            (Value::Arr1(a), Value::Arr1(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(p, q)| eq(*p, *q))
            }
            (
                Value::Arr2 {
                    rows: r1,
                    cols: c1,
                    data: d1,
                },
                Value::Arr2 {
                    rows: r2,
                    cols: c2,
                    data: d2,
                },
            ) => r1 == r2 && c1 == c2 && d1.iter().zip(d2).all(|(p, q)| eq(*p, *q)),
            _ => false,
        }
    }
}

/// A value's shape, stored inline (at most two dimensions): what
/// [`Value::dims`] returns, without the per-query `Vec` allocation.
/// Dereferences to `&[usize]`, so existing slice-shaped consumers
/// (`len()`, iteration, pattern matching via `as_slice`) port
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    count: u8,
    dims: [usize; 2],
}

impl Dims {
    /// The dimensions as a slice (empty for scalars).
    pub fn as_slice(&self) -> &[usize] {
        &self.dims[..self.count as usize]
    }
}

impl std::ops::Deref for Dims {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

/// A runtime error with an optional source location.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Human-readable message.
    pub message: String,
    /// Where it happened, if known.
    pub span: Option<Span>,
}

impl RuntimeError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        RuntimeError {
            message: message.into(),
            span: Some(span),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// A host function callable from transform bodies. The first argument
/// may be mutated (how helper calls like `AssignClusters(a, …)` write
/// results); the remaining arguments are read-only; the return value
/// is the call expression's value.
pub type HostFn = Box<dyn Fn(&mut Value, &[Value]) -> Result<Value, String> + Send + Sync>;

/// Control flow of statement execution.
enum Flow {
    Continue,
    Return,
}

/// The interpreter: a checked program plus registered host functions,
/// and optionally the program's compiled bytecode (see
/// [`crate::compile`]) — rules that compiled run on the register VM,
/// the rest tree-walk.
pub struct Interpreter {
    program: Program,
    host_fns: HashMap<String, HostFn>,
    compiled: Option<crate::compile::CompiledProgram>,
    /// Per-transform choice dependency graph and execution schedule,
    /// built once at construction: both are config-independent, so
    /// rebuilding them per run (the old behavior) only burned per-trial
    /// time. Scheduling failures are kept as strings and surface with
    /// the same message (and span) the lazy build produced.
    schedules: HashMap<String, Result<(ChoiceDependencyGraph, Vec<String>), String>>,
    /// Per-callee [`BindingPlan`]s for scalar helper transforms,
    /// precomputed at construction so the VM's `CallTransform` fast
    /// path stops re-resolving names and re-validating schemas per
    /// invocation. Empty when the program is not compiled.
    binding_plans: HashMap<String, BindingPlan>,
}

/// A precomputed calling convention for a *scalar helper* transform:
/// one whose inputs are all plain scalars (no dims, no `scaled_by`),
/// with no intermediates, exactly one scalar output produced by a
/// single rule that compiled to bytecode, and an `Ok` schedule.
///
/// For such a callee, everything `run_prefixed` derives per call —
/// dimension environment (empty), input validation (scalars always
/// pass), the zero-initialized store, the schedule walk, the choice
/// of producing rule — is a constant of the program, so the VM's
/// `CallTransform` dispatch can bind arguments straight into a pooled
/// frame and execute the rule chunk, skipping the `HashMap` store
/// round-trip entirely. The fast path is observably identical to the
/// generic path; any argument that is not currently a scalar simply
/// falls back.
pub(crate) struct BindingPlan {
    /// Index of the single producing rule in the callee transform.
    pub(crate) rule_idx: usize,
    /// For each of the rule's input bindings (aligned with the chunk's
    /// `input_slots`), the caller argument position — i.e. the index
    /// into the callee's declared input list — that binds it.
    pub(crate) arg_for_input: Vec<usize>,
}

impl fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("transforms", &self.program.transforms.len())
            .field("host_fns", &self.host_fns.keys().collect::<Vec<_>>())
            .field("compiled", &self.compiled.is_some())
            .finish()
    }
}

impl Interpreter {
    /// Wraps a (checked) program for pure tree-walking execution.
    pub fn new(program: Program) -> Self {
        let schedules = build_schedules(&program);
        Interpreter {
            program,
            host_fns: HashMap::new(),
            compiled: None,
            schedules,
            binding_plans: HashMap::new(),
        }
    }

    /// Wraps a (checked) program *and* lowers every rule to bytecode,
    /// optimized at the default [`OptLevel`]. Rules the compiler covers
    /// execute on the register VM; the rest fall back to tree-walking,
    /// statement by statement identical.
    pub fn new_compiled(program: Program) -> Self {
        Self::new_compiled_at(program, OptLevel::default())
    }

    /// Like [`Interpreter::new_compiled`] with an explicit optimization
    /// level (every level is bit-identical to the tree-walker; lower
    /// levels exist for debugging and differential testing).
    pub fn new_compiled_at(program: Program, level: OptLevel) -> Self {
        let compiled = crate::compile::compile_program(&program).optimized(level);
        let schedules = build_schedules(&program);
        let binding_plans = build_binding_plans(&program, &compiled, &schedules);
        Interpreter {
            program,
            host_fns: HashMap::new(),
            compiled: Some(compiled),
            schedules,
            binding_plans,
        }
    }

    /// The cached bytecode, when built with [`Interpreter::new_compiled`].
    pub fn compiled(&self) -> Option<&crate::compile::CompiledProgram> {
        self.compiled.as_ref()
    }

    /// The precomputed calling convention for a scalar helper callee,
    /// if it qualified at construction.
    pub(crate) fn binding_plan(&self, callee: &str) -> Option<&BindingPlan> {
        self.binding_plans.get(callee)
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Looks up a registered host function.
    pub(crate) fn host_fn(&self, name: &str) -> Option<&HostFn> {
        self.host_fns.get(name)
    }

    /// Registers a host function callable from transform bodies.
    pub fn register_host_fn(&mut self, name: impl Into<String>, f: HostFn) {
        self.host_fns.insert(name.into(), f);
    }

    /// Runs `transform_name` on the given inputs under the
    /// configuration carried by `ctx`; returns the produced outputs
    /// (and intermediates).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for missing inputs, dimension
    /// mismatches, unknown functions, unschedulable rules, or
    /// exceeded recursion depth.
    pub fn run(
        &self,
        transform_name: &str,
        inputs: &HashMap<String, Value>,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<HashMap<String, Value>, RuntimeError> {
        self.run_prefixed(transform_name, inputs, ctx, "", 0)
    }

    /// Inputs are generic over [`Borrow`] so internal callers (the VM's
    /// `CallTransform`, the metric runner) can pass borrowed values and
    /// skip one full clone per array argument; the store below clones
    /// exactly what it keeps.
    pub(crate) fn run_prefixed<V: Borrow<Value>>(
        &self,
        transform_name: &str,
        inputs: &HashMap<String, V>,
        ctx: &mut ExecCtx<'_>,
        prefix: &str,
        depth: usize,
    ) -> Result<HashMap<String, Value>, RuntimeError> {
        if depth > 8 {
            return Err(RuntimeError {
                message: "transform call depth exceeded".into(),
                span: None,
            });
        }
        let t = self.program.transform(transform_name).ok_or(RuntimeError {
            message: format!("unknown transform `{transform_name}`"),
            span: None,
        })?;

        // Resolve dimension variables from the provided inputs, the
        // configuration's accuracy variables, and literal dims.
        let mut dim_env: HashMap<String, f64> = HashMap::new();
        for av in &t.accuracy_variables {
            let name = format!("{prefix}{}", av.name);
            if let Ok(v) = ctx.param(&name) {
                dim_env.insert(av.name.clone(), v as f64);
            }
        }
        for p in &t.inputs {
            let actual = inputs
                .get(&p.name)
                .map(Borrow::borrow)
                .ok_or(RuntimeError {
                    message: format!("missing input `{}`", p.name),
                    span: Some(p.span),
                })?;
            let actual_dims = actual.dims_ref();
            if actual_dims.len() != p.dims.len() {
                return Err(RuntimeError::new(
                    format!(
                        "input `{}` has {} dimensions, declared {}",
                        p.name,
                        actual_dims.len(),
                        p.dims.len()
                    ),
                    p.span,
                ));
            }
            for (dim_expr, &actual_dim) in p.dims.iter().zip(actual_dims.iter()) {
                match dim_expr {
                    Expr::Var(name, _) if !dim_env.contains_key(name) => {
                        dim_env.insert(name.clone(), actual_dim as f64);
                    }
                    _ => {
                        let expect = self.eval_dim(dim_expr, &dim_env)?;
                        if expect != actual_dim {
                            return Err(RuntimeError::new(
                                format!(
                                    "input `{}` dimension mismatch: expected {expect}, got {actual_dim}",
                                    p.name
                                ),
                                p.span,
                            ));
                        }
                    }
                }
            }
        }

        // Data store: inputs plus zero-initialized intermediates and
        // outputs. `scaled_by` inputs (§3.2) are down-sampled first per
        // their `scale_<name>` accuracy variable, and the dimension
        // variable bound from them is rebound to the resampled length
        // so all dependent data shrinks with them.
        let mut store: HashMap<String, Value> = HashMap::new();
        for p in &t.inputs {
            let mut value = inputs[&p.name].borrow().clone();
            if p.scaled_by.is_some() {
                let pct = ctx
                    .param(&format!("{prefix}scale_{}", p.name))
                    .unwrap_or(100)
                    .clamp(1, 100) as usize;
                if pct < 100 {
                    if let Value::Arr1(data) = &value {
                        let target = (data.len() * pct / 100).max(1);
                        let resampled = resample_linear(data, target);
                        // Rebind a bare dimension variable to the new
                        // length.
                        if let Some(Expr::Var(dim_name, _)) = p.dims.first() {
                            dim_env.insert(dim_name.clone(), target as f64);
                        }
                        value = Value::Arr1(resampled);
                    }
                }
            }
            store.insert(p.name.clone(), value);
        }
        for p in t.intermediates.iter().chain(&t.outputs) {
            let dims: Vec<usize> = p
                .dims
                .iter()
                .map(|d| self.eval_dim(d, &dim_env))
                .collect::<Result<_, _>>()?;
            store.insert(p.name.clone(), Value::zeros(&dims));
        }

        // Schedule and execute rules, resolving choices through ctx.
        // Graph and order come precomputed from construction.
        let (graph, order) = self
            .schedules
            .get(transform_name)
            .expect("schedules built for every transform")
            .as_ref()
            .map_err(|message| RuntimeError {
                message: message.clone(),
                span: Some(t.span),
            })?;
        let mut produced: Vec<&str> = Vec::new();
        for data in order {
            if produced.contains(&data.as_str()) {
                continue;
            }
            let rules = graph.producers(data);
            let rule_idx = if rules.len() > 1 {
                let site = format!("{prefix}rule_{data}");
                let pick = ctx.choice(&site).map_err(|e| RuntimeError {
                    message: format!("cannot resolve choice `{site}`: {e}"),
                    span: Some(t.span),
                })?;
                rules[pick.min(rules.len() - 1)]
            } else {
                rules[0]
            };
            let rule = &t.rules[rule_idx];
            // Compiled rules run on the register VM; uncompiled ones
            // (and everything when compilation is off) tree-walk.
            let chunk = self
                .compiled
                .as_ref()
                .and_then(|c| c.chunk(transform_name, rule_idx));
            match chunk {
                Some(chunk) => {
                    crate::vm::run_rule(self, rule, chunk, &mut store, ctx, prefix, depth)?;
                }
                None => self.run_rule(t, rule, &mut store, ctx, prefix, depth)?,
            }
            for out in &rule.outputs {
                produced.push(out.data.as_str());
            }
        }

        // Return the non-input data (outputs and intermediates).
        for p in &t.inputs {
            store.remove(&p.name);
        }
        Ok(store)
    }

    fn run_rule(
        &self,
        t: &Transform,
        rule: &Rule,
        store: &mut HashMap<String, Value>,
        ctx: &mut ExecCtx<'_>,
        prefix: &str,
        depth: usize,
    ) -> Result<(), RuntimeError> {
        // Bind aliases: inputs by value, outputs moved in and written
        // back after the body.
        let mut scope: HashMap<String, Value> = HashMap::new();
        for b in &rule.inputs {
            let v = store.get(&b.data).ok_or(RuntimeError::new(
                format!("rule reads unproduced data `{}`", b.data),
                b.span,
            ))?;
            scope.insert(b.alias.clone(), v.clone());
        }
        for b in &rule.outputs {
            let v = store.get(&b.data).ok_or(RuntimeError::new(
                format!("rule writes undeclared data `{}`", b.data),
                b.span,
            ))?;
            // Output alias shadows any input alias of the same name.
            scope.insert(b.alias.clone(), v.clone());
        }

        let mut env = Env {
            interp: self,
            transform: t,
            scope,
            prefix: prefix.to_owned(),
            depth,
        };
        env.exec_block(&rule.body, ctx)?;

        for b in &rule.outputs {
            let v = env.scope.get(&b.alias).cloned().ok_or(RuntimeError::new(
                format!("output alias `{}` vanished", b.alias),
                b.span,
            ))?;
            store.insert(b.data.clone(), v);
        }
        Ok(())
    }

    fn eval_dim(&self, expr: &Expr, dim_env: &HashMap<String, f64>) -> Result<usize, RuntimeError> {
        let v = eval_const(expr, dim_env).ok_or(RuntimeError::new(
            "dimension expression uses an unbound variable",
            expr.span(),
        ))?;
        if v < 0.0 || !v.is_finite() {
            return Err(RuntimeError::new(
                format!("dimension evaluated to illegal value {v}"),
                expr.span(),
            ));
        }
        Ok(v.round() as usize)
    }
}

/// Qualifies each transform as a scalar helper callee and precomputes
/// its [`BindingPlan`]. The conditions mirror exactly what the fast
/// path skips: every per-call derivation in `run_prefixed` must be a
/// program constant for the callee, and its single producing rule
/// must run on the VM.
fn build_binding_plans(
    program: &Program,
    compiled: &crate::compile::CompiledProgram,
    schedules: &HashMap<String, Result<(ChoiceDependencyGraph, Vec<String>), String>>,
) -> HashMap<String, BindingPlan> {
    let mut plans = HashMap::new();
    for t in &program.transforms {
        // All inputs plain scalars: no dimension environment to build,
        // no `scaled_by` resampling, validation always passes.
        if t.inputs
            .iter()
            .any(|p| !p.dims.is_empty() || p.scaled_by.is_some())
        {
            continue;
        }
        // No accuracy variables (their `ctx.param` reads would be
        // skipped) and exactly one scalar output, no intermediates, so
        // the store is one zero scalar.
        if !t.accuracy_variables.is_empty()
            || !t.intermediates.is_empty()
            || t.outputs.len() != 1
            || !t.outputs[0].dims.is_empty()
        {
            continue;
        }
        // Schedule precomputed and trivial: the one output, produced by
        // a single rule (no `ctx.choice` resolution).
        let Some(Ok((graph, order))) = schedules.get(&t.name).map(Result::as_ref) else {
            continue;
        };
        if order.len() != 1 || order[0] != t.outputs[0].name {
            continue;
        }
        let producers = graph.producers(&order[0]);
        if producers.len() != 1 {
            continue;
        }
        let rule_idx = producers[0];
        let rule = &t.rules[rule_idx];
        // The rule must have compiled (otherwise the generic path
        // tree-walks it) and write exactly the output.
        let Some(chunk) = compiled.chunk(&t.name, rule_idx) else {
            continue;
        };
        if rule.outputs.len() != 1
            || rule.outputs[0].data != t.outputs[0].name
            || chunk.output_slots.len() != 1
            || chunk.input_slots.len() != rule.inputs.len()
        {
            continue;
        }
        // Map each rule input binding to the caller argument position
        // that supplies it. A binding that reads anything other than a
        // declared input (e.g. the zero-initialized output) falls back
        // to the generic path.
        let arg_for_input: Option<Vec<usize>> = rule
            .inputs
            .iter()
            .map(|b| t.inputs.iter().position(|p| p.name == b.data))
            .collect();
        let Some(arg_for_input) = arg_for_input else {
            continue;
        };
        plans.insert(
            t.name.clone(),
            BindingPlan {
                rule_idx,
                arg_for_input,
            },
        );
    }
    plans
}

/// Precomputes every transform's choice dependency graph and execution
/// schedule (config-independent, so they never need rebuilding at run
/// time). Scheduling failures are stored and surfaced on the first run
/// of the affected transform, exactly like the lazy build did.
fn build_schedules(
    program: &Program,
) -> HashMap<String, Result<(ChoiceDependencyGraph, Vec<String>), String>> {
    program
        .transforms
        .iter()
        .map(|t| {
            let graph = ChoiceDependencyGraph::build(t);
            let entry = match graph.schedule() {
                Ok(order) => Ok((graph, order)),
                Err(e) => Err(e.to_string()),
            };
            (t.name.clone(), entry)
        })
        .collect()
}

/// Constant-folds dimension expressions (`n`, `k`, `sqrt(n)`, `2*k`…).
fn eval_const(expr: &Expr, env: &HashMap<String, f64>) -> Option<f64> {
    Some(match expr {
        Expr::Number(v, _) => *v,
        Expr::Var(name, _) => *env.get(name)?,
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval_const(lhs, env)?;
            let b = eval_const(rhs, env)?;
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                _ => return None,
            }
        }
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => -eval_const(operand, env)?,
        Expr::Call { name, args, .. } if name == "sqrt" && args.len() == 1 => {
            eval_const(&args[0], env)?.sqrt().floor()
        }
        _ => return None,
    })
}

/// Per-rule execution environment.
struct Env<'a> {
    interp: &'a Interpreter,
    transform: &'a Transform,
    scope: HashMap<String, Value>,
    prefix: String,
    depth: usize,
}

impl Env<'_> {
    fn exec_block(&mut self, block: &Block, ctx: &mut ExecCtx<'_>) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            if let Flow::Return = self.exec_stmt(stmt, ctx)? {
                return Ok(Flow::Return);
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, ctx: &mut ExecCtx<'_>) -> Result<Flow, RuntimeError> {
        ctx.charge(1.0);
        match stmt {
            Stmt::Let { name, value, .. } => {
                let v = self.eval(value, ctx)?;
                self.scope.insert(name.clone(), v);
                Ok(Flow::Continue)
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let v = self.eval(value, ctx)?;
                match target {
                    LValue::Var(name) => {
                        self.scope.insert(name.clone(), v);
                    }
                    LValue::Index { name, indices } => {
                        let idx: Vec<usize> = indices
                            .iter()
                            .map(|e| self.eval_index(e, ctx))
                            .collect::<Result<_, _>>()?;
                        let num = v
                            .as_num()
                            .ok_or(RuntimeError::new("array elements must be scalars", *span))?;
                        let arr = self
                            .scope
                            .get_mut(name)
                            .ok_or(RuntimeError::new(format!("unknown array `{name}`"), *span))?;
                        write_element(arr, &idx, num, *span)?;
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let c = self.eval_num(cond, ctx)?;
                if c != 0.0 {
                    self.exec_block(then_block, ctx)
                } else if let Some(e) = else_block {
                    self.exec_block(e, ctx)
                } else {
                    Ok(Flow::Continue)
                }
            }
            Stmt::While { cond, body, span } => {
                let mut guard = 0u64;
                while self.eval_num(cond, ctx)? != 0.0 {
                    if let Flow::Return = self.exec_block(body, ctx)? {
                        return Ok(Flow::Return);
                    }
                    guard += 1;
                    if guard > 10_000_000 {
                        return Err(RuntimeError::new(
                            "while loop exceeded 10M iterations",
                            *span,
                        ));
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                let lo = self.eval_num(lo, ctx)? as i64;
                let hi = self.eval_num(hi, ctx)? as i64;
                for i in lo..hi {
                    self.scope.insert(var.clone(), Value::Num(i as f64));
                    if let Flow::Return = self.exec_block(body, ctx)? {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::ForEnough { id, body, span } => {
                let name = format!("{}for_enough_{id}", self.prefix);
                let iters = ctx
                    .for_enough(&name)
                    .map_err(|e| RuntimeError::new(format!("{e}"), *span))?;
                for _ in 0..iters {
                    if let Flow::Return = self.exec_block(body, ctx)? {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Either { id, branches, span } => {
                let name = format!("{}either_{id}", self.prefix);
                let pick = ctx
                    .choice(&name)
                    .map_err(|e| RuntimeError::new(format!("{e}"), *span))?;
                self.exec_block(&branches[pick.min(branches.len() - 1)], ctx)
            }
            // The interpreter trains/tests with the checks disabled
            // (§5.5.1: "runtime verification … is disabled during
            // autotuning"); the runtime-checked execution path lives in
            // `pb_runtime::guarantee`.
            Stmt::VerifyAccuracy { .. } => Ok(Flow::Continue),
            Stmt::Return { .. } => Ok(Flow::Return),
            Stmt::Expr { expr, .. } => {
                self.eval(expr, ctx)?;
                Ok(Flow::Continue)
            }
        }
    }

    fn eval_num(&mut self, expr: &Expr, ctx: &mut ExecCtx<'_>) -> Result<f64, RuntimeError> {
        self.eval(expr, ctx)?
            .as_num()
            .ok_or(RuntimeError::new("expected a scalar value", expr.span()))
    }

    fn eval_index(&mut self, expr: &Expr, ctx: &mut ExecCtx<'_>) -> Result<usize, RuntimeError> {
        let v = self.eval_num(expr, ctx)?;
        if v < 0.0 || !v.is_finite() {
            return Err(RuntimeError::new(format!("illegal index {v}"), expr.span()));
        }
        Ok(v as usize)
    }

    fn eval(&mut self, expr: &Expr, ctx: &mut ExecCtx<'_>) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Number(v, _) => Ok(Value::Num(*v)),
            Expr::Var(name, span) => {
                if let Some(v) = self.scope.get(name) {
                    return Ok(v.clone());
                }
                // Accuracy variables are readable by name.
                let tunable = format!("{}{name}", self.prefix);
                if let Ok(v) = ctx.param(&tunable) {
                    return Ok(Value::Num(v as f64));
                }
                Err(RuntimeError::new(
                    format!("unknown variable `{name}`"),
                    *span,
                ))
            }
            Expr::Index {
                name,
                indices,
                span,
            } => {
                let idx: Vec<usize> = indices
                    .iter()
                    .map(|e| self.eval_index(e, ctx))
                    .collect::<Result<_, _>>()?;
                let arr = self
                    .scope
                    .get(name)
                    .ok_or(RuntimeError::new(format!("unknown array `{name}`"), *span))?;
                read_element(arr, &idx, *span).map(Value::Num)
            }
            Expr::Unary { op, operand, span } => {
                let v = self.eval_num(operand, ctx)?;
                Ok(Value::Num(match op {
                    UnOp::Neg => -v,
                    UnOp::Not => {
                        if v == 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                }))
                .map_err(|e: RuntimeError| RuntimeError::new(e.message, *span))
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.eval_num(lhs, ctx)?;
                // Short-circuit logic.
                match op {
                    BinOp::And if a == 0.0 => return Ok(Value::Num(0.0)),
                    BinOp::Or if a != 0.0 => return Ok(Value::Num(1.0)),
                    _ => {}
                }
                let b = self.eval_num(rhs, ctx)?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    BinOp::Eq => (a == b) as i64 as f64,
                    BinOp::Ne => (a != b) as i64 as f64,
                    BinOp::Lt => (a < b) as i64 as f64,
                    BinOp::Le => (a <= b) as i64 as f64,
                    BinOp::Gt => (a > b) as i64 as f64,
                    BinOp::Ge => (a >= b) as i64 as f64,
                    BinOp::And => (b != 0.0) as i64 as f64,
                    BinOp::Or => (b != 0.0) as i64 as f64,
                };
                Ok(Value::Num(v))
            }
            Expr::Call {
                name,
                accuracy: _,
                args,
                span,
            } => self.eval_call(name, args, *span, ctx),
        }
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<Value, RuntimeError> {
        // Builtins first.
        match name {
            "sqrt" | "abs" | "floor" | "ceil" | "exp" | "log" => {
                let v = self.eval_num(&args[0], ctx)?;
                return Ok(Value::Num(match name {
                    "sqrt" => v.sqrt(),
                    "abs" => v.abs(),
                    "floor" => v.floor(),
                    "ceil" => v.ceil(),
                    "exp" => v.exp(),
                    _ => v.ln(),
                }));
            }
            "min" | "max" | "pow" => {
                let a = self.eval_num(&args[0], ctx)?;
                let b = self.eval_num(&args[1], ctx)?;
                return Ok(Value::Num(match name {
                    "min" => a.min(b),
                    "max" => a.max(b),
                    _ => a.powf(b),
                }));
            }
            "rand" => {
                let lo = self.eval_num(&args[0], ctx)?;
                let hi = self.eval_num(&args[1], ctx)?;
                if hi <= lo {
                    return Ok(Value::Num(lo));
                }
                return Ok(Value::Num(ctx.rng().gen_range(lo..hi)));
            }
            "len" | "rows" | "cols" => {
                let v = self.eval(&args[0], ctx)?;
                let dims = v.dims_ref();
                return Ok(Value::Num(match (name, dims.as_slice()) {
                    ("len", [n]) => *n as f64,
                    ("len", [_, c]) => *c as f64,
                    ("rows", [r, _]) => *r as f64,
                    ("cols", [_, c]) => *c as f64,
                    _ => {
                        return Err(RuntimeError::new(
                            format!("`{name}` applied to a value of wrong shape"),
                            span,
                        ))
                    }
                }));
            }
            _ => {}
        }

        // Sub-transform call.
        if self.interp.program.transform(name).is_some() && name != self.transform.name {
            let callee = self.interp.program.transform(name).expect("checked");
            if callee.outputs.len() != 1 {
                return Err(RuntimeError::new(
                    format!("transform `{name}` called as expression must have one output"),
                    span,
                ));
            }
            let mut sub_inputs = HashMap::new();
            if args.len() != callee.inputs.len() {
                return Err(RuntimeError::new(
                    format!(
                        "transform `{name}` takes {} inputs, got {}",
                        callee.inputs.len(),
                        args.len()
                    ),
                    span,
                ));
            }
            for (param, arg) in callee.inputs.iter().zip(args) {
                let v = self.eval(arg, ctx)?;
                sub_inputs.insert(param.name.clone(), v);
            }
            let sub_prefix = format!("{}{name}.", self.prefix);
            let outputs =
                self.interp
                    .run_prefixed(name, &sub_inputs, ctx, &sub_prefix, self.depth + 1)?;
            let out_name = &callee.outputs[0].name;
            return outputs.get(out_name).cloned().ok_or(RuntimeError::new(
                format!("transform `{name}` produced no `{out_name}`"),
                span,
            ));
        }

        // Host function: first argument (if an alias) is mutable.
        if self.interp.host_fns.contains_key(name) {
            if args.is_empty() {
                return Err(RuntimeError::new(
                    format!("host function `{name}` needs at least one argument"),
                    span,
                ));
            }
            let rest: Vec<Value> = args[1..]
                .iter()
                .map(|a| self.eval(a, ctx))
                .collect::<Result<_, _>>()?;
            let first_name = match &args[0] {
                Expr::Var(n, _) => Some(n.clone()),
                _ => None,
            };
            let mut first = match &first_name {
                Some(n) => self
                    .scope
                    .get(n)
                    .cloned()
                    .ok_or(RuntimeError::new(format!("unknown variable `{n}`"), span))?,
                None => self.eval(&args[0], ctx)?,
            };
            ctx.charge(
                rest.iter()
                    .map(|v| v.dims_ref().iter().product::<usize>().max(1))
                    .sum::<usize>() as f64,
            );
            let f = &self.interp.host_fns[name];
            let out = f(&mut first, &rest)
                .map_err(|m| RuntimeError::new(format!("host `{name}`: {m}"), span))?;
            if let Some(n) = first_name {
                self.scope.insert(n, first);
            }
            return Ok(out);
        }

        Err(RuntimeError::new(
            format!("unknown function `{name}`"),
            span,
        ))
    }
}

/// Linear-interpolation resampling of a 1-D signal to `target` points
/// (the built-in `linear` resampler for `scaled_by`).
pub fn resample_linear(data: &[f64], target: usize) -> Vec<f64> {
    let n = data.len();
    if target == 0 || n == 0 {
        return Vec::new();
    }
    if target == n {
        return data.to_vec();
    }
    if n == 1 {
        return vec![data[0]; target];
    }
    (0..target)
        .map(|i| {
            let pos = i as f64 * (n - 1) as f64 / (target.max(2) - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f64;
            data[lo] * (1.0 - frac) + data[hi] * frac
        })
        .collect()
}

pub(crate) fn read_element(arr: &Value, idx: &[usize], span: Span) -> Result<f64, RuntimeError> {
    match (arr, idx) {
        (Value::Arr1(v), [i]) => v.get(*i).copied().ok_or(RuntimeError::new(
            format!("index {i} out of bounds (len {})", v.len()),
            span,
        )),
        (Value::Arr2 { rows, cols, data }, [i, j]) => {
            if *i >= *rows || *j >= *cols {
                Err(RuntimeError::new(
                    format!("index ({i},{j}) out of bounds ({rows}x{cols})"),
                    span,
                ))
            } else {
                Ok(data[i * cols + j])
            }
        }
        _ => Err(RuntimeError::new(
            "index arity does not match array shape",
            span,
        )),
    }
}

pub(crate) fn write_element(
    arr: &mut Value,
    idx: &[usize],
    v: f64,
    span: Span,
) -> Result<(), RuntimeError> {
    match (arr, idx) {
        (Value::Arr1(vec), [i]) => {
            if *i >= vec.len() {
                return Err(RuntimeError::new(
                    format!("index {i} out of bounds (len {})", vec.len()),
                    span,
                ));
            }
            vec[*i] = v;
            Ok(())
        }
        (Value::Arr2 { rows, cols, data }, [i, j]) => {
            if *i >= *rows || *j >= *cols {
                return Err(RuntimeError::new(
                    format!("index ({i},{j}) out of bounds ({rows}x{cols})"),
                    span,
                ));
            }
            data[*i * *cols + *j] = v;
            Ok(())
        }
        _ => Err(RuntimeError::new(
            "index arity does not match array shape",
            span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use pb_config::Value as ConfigValue;

    fn simple_ctx<'a>(
        schema: &'a pb_config::Schema,
        config: &'a pb_config::Config,
        n: u64,
    ) -> ExecCtx<'a> {
        ExecCtx::new(schema, config, n, 1)
    }

    #[test]
    fn runs_a_simple_transform() {
        let src = r#"
            transform double from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for (i in 0 .. len(a)) { o[i] = 2 * a[i]; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "double");
        let config = schema.default_config();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![1.0, 2.0, 3.0]));
        let mut ctx = simple_ctx(&schema, &config, 3);
        let out = interp.run("double", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![2.0, 4.0, 6.0]));
        assert!(ctx.virtual_cost() > 0.0);
    }

    #[test]
    fn either_resolves_through_config() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    either { o[0] = 1; } or { o[0] = 2; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let mut config = schema.default_config();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0]));

        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![1.0]));

        config
            .set_by_name(
                &schema,
                "either_0",
                ConfigValue::Tree(pb_config::DecisionTree::single(1)),
            )
            .unwrap();
        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![2.0]));
    }

    #[test]
    fn for_enough_iterations_come_from_config() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for_enough { o[0] = o[0] + 1; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let mut config = schema.default_config();
        config
            .set_by_name(&schema, "for_enough_0", ConfigValue::Int(7))
            .unwrap();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0]));
        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![7.0]));
    }

    #[test]
    fn rule_choice_resolves_through_config() {
        let src = r#"
            transform t from In[n] through Mid[n] to Out[n] {
                to (Mid m) from (In a) { m[0] = 10; }
                to (Mid m) from (In a) { m[0] = 20; }
                to (Out o) from (Mid m) { o[0] = m[0] + 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let mut config = schema.default_config();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0]));

        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![11.0]));

        config
            .set_by_name(
                &schema,
                "rule_Mid",
                ConfigValue::Tree(pb_config::DecisionTree::single(1)),
            )
            .unwrap();
        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![21.0]));
    }

    #[test]
    fn accuracy_variable_sizes_intermediate_data() {
        let src = r#"
            transform t accuracy_variable k 1 64 from In[n] through Mid[k] to Out[n] {
                to (Mid m) from (In a) { m[0] = 1; }
                to (Out o) from (Mid m) { o[0] = len(m); }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let mut config = schema.default_config();
        config
            .set_by_name(&schema, "k", ConfigValue::Int(5))
            .unwrap();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0, 0.0]));
        let mut ctx = simple_ctx(&schema, &config, 2);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![5.0, 0.0]));
        assert_eq!(out["Mid"].dims(), vec![5]);
    }

    #[test]
    fn host_functions_can_mutate_first_argument() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    FillWith(o, 9);
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let config = schema.default_config();
        let mut interp = Interpreter::new(program);
        interp.register_host_fn(
            "FillWith",
            Box::new(|first, rest| {
                let v = rest[0].as_num().ok_or("second arg must be scalar")?;
                if let Value::Arr1(a) = first {
                    for x in a.iter_mut() {
                        *x = v;
                    }
                }
                Ok(Value::Num(0.0))
            }),
        );
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0, 0.0, 0.0]));
        let mut ctx = simple_ctx(&schema, &config, 3);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![9.0, 9.0, 9.0]));
    }

    #[test]
    fn sub_transform_calls_work() {
        let src = r#"
            transform outer from In[n] to Out[n] {
                to (Out o) from (In a) {
                    o[0] = inner(a) + 100;
                }
            }
            transform inner from X[n] to R {
                to (R r) from (X x) { r = x[0] * 2; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "outer");
        let config = schema.default_config();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![21.0]));
        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("outer", &inputs, &mut ctx).unwrap();
        // inner doubles 21, outer adds 100.
        assert_eq!(out["Out"], Value::Arr1(vec![142.0]));
    }

    #[test]
    fn out_of_bounds_index_is_a_runtime_error() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[99] = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let config = schema.default_config();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0]));
        let mut ctx = simple_ctx(&schema, &config, 1);
        let err = interp.run("t", &inputs, &mut ctx).unwrap_err();
        assert!(err.message.contains("out of bounds"), "{}", err.message);
    }

    #[test]
    fn missing_input_is_reported() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let config = schema.default_config();
        let interp = Interpreter::new(program);
        let inputs = HashMap::new();
        let mut ctx = simple_ctx(&schema, &config, 1);
        let err = interp.run("t", &inputs, &mut ctx).unwrap_err();
        assert!(err.message.contains("missing input"), "{}", err.message);
    }

    #[test]
    fn resample_linear_properties() {
        // Identity at same length; endpoints preserved; constants stay
        // constant.
        let data = vec![0.0, 1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&data, 4), data);
        let half = resample_linear(&data, 2);
        assert_eq!(half, vec![0.0, 3.0]);
        let constant = resample_linear(&[5.0; 10], 3);
        assert!(constant.iter().all(|&v| (v - 5.0).abs() < 1e-12));
        let up = resample_linear(&[0.0, 2.0], 3);
        assert_eq!(up, vec![0.0, 1.0, 2.0]);
        assert_eq!(resample_linear(&[7.0], 3), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn scaled_by_downsamples_input_and_rebinds_dims() {
        let src = r#"
            transform mean from Signal[n] scaled_by linear to Out[n], Count {
                to (Out o, Count c) from (Signal s) {
                    c = len(s);
                    for (i in 0 .. len(s)) { o[i] = s[i]; }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        crate::sema::check_program(&program).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "mean");
        assert!(schema.tunable("scale_Signal").is_some());

        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert(
            "Signal".to_string(),
            Value::Arr1((0..100).map(|i| i as f64).collect()),
        );

        // Default 100%: untouched.
        let config = schema.default_config();
        let mut ctx = simple_ctx(&schema, &config, 100);
        let out = interp.run("mean", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Count"], Value::Num(100.0));

        // 25%: the rules see a quarter of the samples, and `Out`
        // (dimensioned by the same `n`) shrinks with them.
        let mut config = schema.default_config();
        config
            .set_by_name(&schema, "scale_Signal", ConfigValue::Int(25))
            .unwrap();
        let mut ctx = simple_ctx(&schema, &config, 100);
        let out = interp.run("mean", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Count"], Value::Num(25.0));
        assert_eq!(out["Out"].dims(), vec![25]);
    }

    #[test]
    fn scaled_by_on_output_is_rejected_by_sema() {
        let src = r#"
            transform t from A[n] to B[n] scaled_by linear {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let errs = crate::sema::check_program(&program).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("only supported on transform inputs")));
    }

    #[test]
    fn unknown_resampler_is_rejected_by_sema() {
        let src = r#"
            transform t from A[n] scaled_by cubic to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let errs = crate::sema::check_program(&program).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("cubic")));
    }

    #[test]
    fn return_exits_the_rule_early() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    o[0] = 1;
                    return;
                    o[0] = 2;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let schema = crate::traininfo::extract_schema(&program, "t");
        let config = schema.default_config();
        let interp = Interpreter::new(program);
        let mut inputs = HashMap::new();
        inputs.insert("In".to_string(), Value::Arr1(vec![0.0]));
        let mut ctx = simple_ctx(&schema, &config, 1);
        let out = interp.run("t", &inputs, &mut ctx).unwrap();
        assert_eq!(out["Out"], Value::Arr1(vec![1.0]));
    }

    #[test]
    fn dims_ref_matches_dims_for_every_shape() {
        let scalar = Value::Num(1.0);
        let arr1 = Value::Arr1(vec![0.0; 5]);
        let arr2 = Value::zeros(&[3, 4]);
        for v in [&scalar, &arr1, &arr2] {
            assert_eq!(v.dims_ref().as_slice(), v.dims().as_slice());
        }
        // The inline shape behaves like the slice it derefs to.
        assert!(scalar.dims_ref().is_empty());
        assert_eq!(arr1.dims_ref().len(), 1);
        assert_eq!(arr2.dims_ref()[1], 4);
        assert_eq!(arr2.dims_ref().iter().product::<usize>(), 12);
    }
}
