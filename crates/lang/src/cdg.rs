//! The choice dependency graph (§4.1).
//!
//! "The main transform level representation is the choice dependency
//! graph … data dependencies are represented by vertices, while rules
//! are represented by graph hyperedges." The compiler uses it to manage
//! code choices and to synthesize the outer control flow — here, the
//! execution schedule: a topological order over non-input data in
//! which each datum's producing rule can run.

use crate::ast::Transform;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A cycle (or other scheduling failure) in the dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleError {
    /// The data involved in the unschedulable remainder.
    pub data: Vec<String>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dependency cycle among data: {}", self.data.join(", "))
    }
}

impl std::error::Error for CycleError {}

/// The choice dependency graph of one transform.
#[derive(Debug, Clone)]
pub struct ChoiceDependencyGraph {
    /// All data names, inputs first.
    data: Vec<String>,
    /// Which data are transform inputs.
    inputs: HashSet<String>,
    /// `producers[d]` = indices of rules that can produce datum `d`.
    producers: HashMap<String, Vec<usize>>,
    /// `dependencies[d]` = union of the input data of every rule that
    /// can produce `d` (conservative: any choice must be schedulable).
    dependencies: HashMap<String, HashSet<String>>,
}

impl ChoiceDependencyGraph {
    /// Builds the graph for a transform.
    pub fn build(t: &Transform) -> Self {
        let data: Vec<String> = t.all_data().map(|p| p.name.clone()).collect();
        let inputs: HashSet<String> = t.inputs.iter().map(|p| p.name.clone()).collect();
        let mut producers: HashMap<String, Vec<usize>> = HashMap::new();
        let mut dependencies: HashMap<String, HashSet<String>> = HashMap::new();
        for (i, rule) in t.rules.iter().enumerate() {
            for out in &rule.outputs {
                producers.entry(out.data.clone()).or_default().push(i);
                let deps = dependencies.entry(out.data.clone()).or_default();
                for input in &rule.inputs {
                    // A rule that reads and writes the same datum (the
                    // kmeans iterative rule reads Assignments while
                    // writing it) is not a scheduling dependency.
                    if rule.outputs.iter().all(|o| o.data != input.data) {
                        deps.insert(input.data.clone());
                    }
                }
            }
        }
        ChoiceDependencyGraph {
            data,
            inputs,
            producers,
            dependencies,
        }
    }

    /// The rules that can produce `data` (empty for inputs).
    pub fn producers(&self, data: &str) -> &[usize] {
        self.producers.get(data).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Data with more than one producing rule — the algorithmic choice
    /// sites of the transform.
    pub fn choice_sites(&self) -> Vec<&str> {
        self.data
            .iter()
            .filter(|d| self.producers(d).len() > 1)
            .map(String::as_str)
            .collect()
    }

    /// A topological execution order over the non-input data: running
    /// each datum's producing rule in this order satisfies every
    /// dependency regardless of which rules the tuner chooses.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the dependencies are cyclic.
    pub fn schedule(&self) -> Result<Vec<String>, CycleError> {
        let mut done: HashSet<String> = self.inputs.clone();
        let mut order = Vec::new();
        let pending: Vec<String> = self
            .data
            .iter()
            .filter(|d| !self.inputs.contains(*d))
            .cloned()
            .collect();
        let mut remaining: Vec<String> = pending;
        while !remaining.is_empty() {
            let ready: Vec<String> = remaining
                .iter()
                .filter(|d| {
                    self.dependencies
                        .get(*d)
                        .map(|deps| deps.iter().all(|x| done.contains(x)))
                        .unwrap_or(true)
                })
                .cloned()
                .collect();
            if ready.is_empty() {
                return Err(CycleError { data: remaining });
            }
            for d in &ready {
                done.insert(d.clone());
                order.push(d.clone());
            }
            remaining.retain(|d| !done.contains(d));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn kmeans_graph_matches_figure_2() {
        let program = parse_program(crate::parser::tests::KMEANS).unwrap();
        let t = program.transform("kmeans").unwrap();
        let g = ChoiceDependencyGraph::build(t);
        // Centroids has two producers (rules 1 and 2), Assignments one.
        assert_eq!(g.producers("Centroids"), &[0, 1]);
        assert_eq!(g.producers("Assignments"), &[2]);
        assert_eq!(g.choice_sites(), vec!["Centroids"]);
        // Schedule: Centroids before Assignments.
        let order = g.schedule().unwrap();
        assert_eq!(
            order,
            vec!["Centroids".to_string(), "Assignments".to_string()]
        );
    }

    #[test]
    fn cycle_is_detected() {
        let src = r#"
            transform t from A[n] through X[n], Y[n] to B[n] {
                to (X x) from (Y y) { x[0] = y[0]; }
                to (Y y) from (X x) { y[0] = x[0]; }
                to (B b) from (X x) { b[0] = x[0]; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let g = ChoiceDependencyGraph::build(&program.transforms[0]);
        let err = g.schedule().unwrap_err();
        assert!(err.data.contains(&"X".to_string()));
        assert!(err.data.contains(&"Y".to_string()));
    }

    #[test]
    fn self_reading_rule_is_not_a_cycle() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a, B bprev) { b[0] = a[0] + bprev[0]; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let g = ChoiceDependencyGraph::build(&program.transforms[0]);
        assert_eq!(g.schedule().unwrap(), vec!["B".to_string()]);
    }

    #[test]
    fn independent_data_schedule_together() {
        let src = r#"
            transform t from A[n] to B[n], C[n] {
                to (B b) from (A a) { b[0] = 1; }
                to (C c) from (A a) { c[0] = 2; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let g = ChoiceDependencyGraph::build(&program.transforms[0]);
        let order = g.schedule().unwrap();
        assert_eq!(order.len(), 2);
        assert!(g.choice_sites().is_empty());
    }
}
