//! Tokens and source spans.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Token kinds of the transform language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    // Keywords.
    /// `transform`
    Transform,
    /// `accuracy_metric`
    AccuracyMetric,
    /// `accuracy_variable`
    AccuracyVariable,
    /// `accuracy_bins`
    AccuracyBins,
    /// `from`
    From,
    /// `through`
    Through,
    /// `to`
    To,
    /// `either`
    Either,
    /// `or`
    Or,
    /// `for_enough`
    ForEnough,
    /// `verify_accuracy`
    VerifyAccuracy,
    /// `scaled_by`
    ScaledBy,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `let`
    Let,
    /// `return`
    Return,
    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `..`
    DotDot,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(v) => write!(f, "number `{v}`"),
            TokenKind::Transform => write!(f, "`transform`"),
            TokenKind::AccuracyMetric => write!(f, "`accuracy_metric`"),
            TokenKind::AccuracyVariable => write!(f, "`accuracy_variable`"),
            TokenKind::AccuracyBins => write!(f, "`accuracy_bins`"),
            TokenKind::From => write!(f, "`from`"),
            TokenKind::Through => write!(f, "`through`"),
            TokenKind::To => write!(f, "`to`"),
            TokenKind::Either => write!(f, "`either`"),
            TokenKind::Or => write!(f, "`or`"),
            TokenKind::ForEnough => write!(f, "`for_enough`"),
            TokenKind::VerifyAccuracy => write!(f, "`verify_accuracy`"),
            TokenKind::ScaledBy => write!(f, "`scaled_by`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::While => write!(f, "`while`"),
            TokenKind::For => write!(f, "`for`"),
            TokenKind::In => write!(f, "`in`"),
            TokenKind::Let => write!(f, "`let`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::DotDot => write!(f, "`..`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Eq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Maps an identifier to its keyword kind, if it is one.
pub fn keyword(ident: &str) -> Option<TokenKind> {
    Some(match ident {
        "transform" => TokenKind::Transform,
        "accuracy_metric" => TokenKind::AccuracyMetric,
        "accuracy_variable" => TokenKind::AccuracyVariable,
        "accuracy_bins" => TokenKind::AccuracyBins,
        "from" => TokenKind::From,
        "through" => TokenKind::Through,
        "to" => TokenKind::To,
        "either" => TokenKind::Either,
        "or" => TokenKind::Or,
        "for_enough" => TokenKind::ForEnough,
        "verify_accuracy" => TokenKind::VerifyAccuracy,
        "scaled_by" => TokenKind::ScaledBy,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "for" => TokenKind::For,
        "in" => TokenKind::In,
        "let" => TokenKind::Let,
        "return" => TokenKind::Return,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_line_col() {
        let a = Span::new(2, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.to(b), Span::new(2, 10));
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn keywords_resolve() {
        assert_eq!(keyword("transform"), Some(TokenKind::Transform));
        assert_eq!(keyword("for_enough"), Some(TokenKind::ForEnough));
        assert_eq!(keyword("banana"), None);
    }
}
