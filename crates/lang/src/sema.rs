//! Semantic analysis: name resolution and well-formedness checks.

use crate::ast::{Block, Expr, LValue, Program, Stmt, Transform};
use crate::token::Span;
use std::collections::HashSet;
use std::fmt;

/// Collects every name an expression references (variables, indexed
/// arrays, names inside call arguments and index expressions) into
/// `out`. Shared by the lint layer ([`crate::analysis`]) to find
/// dead tunables and unread accuracy variables.
pub fn collect_expr_vars(expr: &Expr, out: &mut HashSet<String>) {
    match expr {
        Expr::Number(..) => {}
        Expr::Var(name, _) => {
            out.insert(name.clone());
        }
        Expr::Index { name, indices, .. } => {
            out.insert(name.clone());
            for e in indices {
                collect_expr_vars(e, out);
            }
        }
        Expr::Call { args, .. } => {
            for e in args {
                collect_expr_vars(e, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr_vars(lhs, out);
            collect_expr_vars(rhs, out);
        }
        Expr::Unary { operand, .. } => collect_expr_vars(operand, out),
    }
}

/// Collects every name a block references — assignment targets
/// included, since writing `Out` still *uses* the data — into `out`.
pub fn collect_block_vars(block: &Block, out: &mut HashSet<String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { value, .. } => collect_expr_vars(value, out),
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(name) => {
                        out.insert(name.clone());
                    }
                    LValue::Index { name, indices } => {
                        out.insert(name.clone());
                        for e in indices {
                            collect_expr_vars(e, out);
                        }
                    }
                }
                collect_expr_vars(value, out);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                collect_expr_vars(cond, out);
                collect_block_vars(then_block, out);
                if let Some(e) = else_block {
                    collect_block_vars(e, out);
                }
            }
            Stmt::While { cond, body, .. } => {
                collect_expr_vars(cond, out);
                collect_block_vars(body, out);
            }
            Stmt::For { lo, hi, body, .. } => {
                collect_expr_vars(lo, out);
                collect_expr_vars(hi, out);
                collect_block_vars(body, out);
            }
            Stmt::ForEnough { body, .. } => collect_block_vars(body, out),
            Stmt::Either { branches, .. } => {
                for b in branches {
                    collect_block_vars(b, out);
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    collect_expr_vars(e, out);
                }
            }
            Stmt::Expr { expr, .. } => collect_expr_vars(expr, out),
            Stmt::VerifyAccuracy { .. } => {}
        }
    }
}

/// A semantic error with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.message)
    }
}

impl std::error::Error for SemaError {}

/// Checks the whole program, returning every violation found.
///
/// # Errors
///
/// Returns the list of semantic errors (empty never — `Ok(())` means
/// the program is well-formed).
pub fn check_program(program: &Program) -> Result<(), Vec<SemaError>> {
    let mut errors = Vec::new();
    let mut names: HashSet<&str> = HashSet::new();
    for t in &program.transforms {
        if !names.insert(&t.name) {
            errors.push(SemaError {
                message: format!("duplicate transform name `{}`", t.name),
                span: t.span,
            });
        }
    }
    for t in &program.transforms {
        check_transform(program, t, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_transform(program: &Program, t: &Transform, errors: &mut Vec<SemaError>) {
    // Data names unique.
    let mut data_names: HashSet<&str> = HashSet::new();
    for p in t.all_data() {
        if !data_names.insert(&p.name) {
            errors.push(SemaError {
                message: format!(
                    "data `{}` declared more than once in transform `{}`",
                    p.name, t.name
                ),
                span: p.span,
            });
        }
    }

    // Accuracy variables: sane ranges, no clash with data names.
    let mut av_names: HashSet<&str> = HashSet::new();
    for av in &t.accuracy_variables {
        if av.min > av.max {
            errors.push(SemaError {
                message: format!(
                    "accuracy variable `{}` has an empty range {}..{}",
                    av.name, av.min, av.max
                ),
                span: av.span,
            });
        }
        if !av_names.insert(&av.name) {
            errors.push(SemaError {
                message: format!("duplicate accuracy variable `{}`", av.name),
                span: av.span,
            });
        }
        if data_names.contains(av.name.as_str()) {
            errors.push(SemaError {
                message: format!("accuracy variable `{}` shadows a data declaration", av.name),
                span: av.span,
            });
        }
    }

    // The accuracy metric must exist and produce a single scalar.
    if let Some(metric) = &t.accuracy_metric {
        match program.transform(metric) {
            None => errors.push(SemaError {
                message: format!(
                    "accuracy metric `{metric}` of transform `{}` is not defined",
                    t.name
                ),
                span: t.span,
            }),
            Some(m) => {
                if m.outputs.len() != 1 || !m.outputs[0].dims.is_empty() {
                    errors.push(SemaError {
                        message: format!(
                            "accuracy metric `{metric}` must produce exactly one scalar output"
                        ),
                        span: m.span,
                    });
                }
            }
        }
    }

    // `scaled_by` (§3.2): supported on inputs, with the built-in
    // `linear` resampler.
    for p in t.intermediates.iter().chain(&t.outputs) {
        if p.scaled_by.is_some() {
            errors.push(SemaError {
                message: format!(
                    "`scaled_by` on `{}` is only supported on transform inputs",
                    p.name
                ),
                span: p.span,
            });
        }
    }
    for p in &t.inputs {
        if let Some(resampler) = &p.scaled_by {
            if resampler != "linear" {
                errors.push(SemaError {
                    message: format!(
                        "unknown resampler `{resampler}` for `{}` (only the built-in `linear` is available)",
                        p.name
                    ),
                    span: p.span,
                });
            }
            if p.dims.len() != 1 {
                errors.push(SemaError {
                    message: format!("`scaled_by` input `{}` must be one-dimensional", p.name),
                    span: p.span,
                });
            }
        }
    }

    // Rules: bindings reference declared data; outputs are writable.
    let input_names: HashSet<&str> = t.inputs.iter().map(|p| p.name.as_str()).collect();
    for rule in &t.rules {
        for b in &rule.outputs {
            if !data_names.contains(b.data.as_str()) {
                errors.push(SemaError {
                    message: format!("rule writes undeclared data `{}`", b.data),
                    span: b.span,
                });
            } else if input_names.contains(b.data.as_str()) {
                errors.push(SemaError {
                    message: format!("rule writes transform input `{}`", b.data),
                    span: b.span,
                });
            }
        }
        for b in &rule.inputs {
            if !data_names.contains(b.data.as_str()) {
                errors.push(SemaError {
                    message: format!("rule reads undeclared data `{}`", b.data),
                    span: b.span,
                });
            }
        }
        check_block_calls(program, &rule.body, errors);
    }

    // Every non-input datum needs at least one producing rule.
    for p in t.intermediates.iter().chain(&t.outputs) {
        let produced = t
            .rules
            .iter()
            .any(|r| r.outputs.iter().any(|b| b.data == p.name));
        if !produced {
            errors.push(SemaError {
                message: format!(
                    "data `{}` in transform `{}` has no producing rule",
                    p.name, t.name
                ),
                span: p.span,
            });
        }
    }
}

/// Explicit sub-accuracy calls must target declared transforms.
fn check_block_calls(program: &Program, block: &crate::ast::Block, errors: &mut Vec<SemaError>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { value, .. } | Stmt::Expr { expr: value, .. } => {
                check_expr_calls(program, value, errors)
            }
            Stmt::Assign { value, .. } => check_expr_calls(program, value, errors),
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                check_expr_calls(program, cond, errors);
                check_block_calls(program, then_block, errors);
                if let Some(e) = else_block {
                    check_block_calls(program, e, errors);
                }
            }
            Stmt::While { cond, body, .. } => {
                check_expr_calls(program, cond, errors);
                check_block_calls(program, body, errors);
            }
            Stmt::For { lo, hi, body, .. } => {
                check_expr_calls(program, lo, errors);
                check_expr_calls(program, hi, errors);
                check_block_calls(program, body, errors);
            }
            Stmt::ForEnough { body, .. } => check_block_calls(program, body, errors),
            Stmt::Either { branches, .. } => {
                for b in branches {
                    check_block_calls(program, b, errors);
                }
            }
            Stmt::Return { value: Some(v), .. } => check_expr_calls(program, v, errors),
            Stmt::Return { value: None, .. } | Stmt::VerifyAccuracy { .. } => {}
        }
    }
}

fn check_expr_calls(program: &Program, expr: &Expr, errors: &mut Vec<SemaError>) {
    match expr {
        Expr::Call {
            name,
            accuracy,
            args,
            span,
        } => {
            if accuracy.is_some() && program.transform(name).is_none() {
                errors.push(SemaError {
                    message: format!("sub-accuracy call targets undeclared transform `{name}`"),
                    span: *span,
                });
            }
            for a in args {
                check_expr_calls(program, a, errors);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            check_expr_calls(program, lhs, errors);
            check_expr_calls(program, rhs, errors);
        }
        Expr::Unary { operand, .. } => check_expr_calls(program, operand, errors),
        Expr::Index { indices, .. } => {
            for i in indices {
                check_expr_calls(program, i, errors);
            }
        }
        Expr::Number(..) | Expr::Var(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<String> {
        match check_program(&parse_program(src).unwrap()) {
            Ok(()) => Vec::new(),
            Err(es) => es.into_iter().map(|e| e.message).collect(),
        }
    }

    #[test]
    fn valid_program_passes() {
        let src = r#"
            transform t
            accuracy_metric m
            accuracy_variable k 1 10
            from A[n] to B[n] {
                to (B b) from (A a) { b[0] = a[0]; }
            }
            transform m from B[n], A[n] to Accuracy {
                to (Accuracy acc) from (B b, A a) { acc = 1; }
            }
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn missing_metric_reported() {
        let src = r#"
            transform t accuracy_metric nope from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(errs.iter().any(|e| e.contains("nope")), "{errs:?}");
    }

    #[test]
    fn metric_must_be_scalar() {
        let src = r#"
            transform t accuracy_metric m from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
            transform m from B[n] to Acc[n] {
                to (Acc acc) from (B b) { acc[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(errs.iter().any(|e| e.contains("scalar")), "{errs:?}");
    }

    #[test]
    fn unproduced_output_reported() {
        let src = r#"
            transform t from A[n] through C[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(
            errs.iter().any(|e| e.contains("no producing rule")),
            "{errs:?}"
        );
    }

    #[test]
    fn writing_an_input_reported() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (A a, B b) from () { b[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(
            errs.iter().any(|e| e.contains("writes transform input")),
            "{errs:?}"
        );
    }

    #[test]
    fn undeclared_rule_data_reported() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (Z z) { b[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(
            errs.iter().any(|e| e.contains("undeclared data `Z`")),
            "{errs:?}"
        );
    }

    #[test]
    fn duplicate_transform_and_variable_names() {
        let src = r#"
            transform t accuracy_variable v accuracy_variable v from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
            transform t from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(errs.iter().any(|e| e.contains("duplicate transform")));
        assert!(errs
            .iter()
            .any(|e| e.contains("duplicate accuracy variable")));
    }

    #[test]
    fn bad_sub_accuracy_target_reported() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) { b[0] = Ghost<1.5>(a); }
            }
        "#;
        let errs = errors_of(src);
        assert!(errs.iter().any(|e| e.contains("Ghost")), "{errs:?}");
    }

    #[test]
    fn empty_accuracy_variable_range_reported() {
        let src = r#"
            transform t accuracy_variable v 5 2 from A[n] to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let errs = errors_of(src);
        assert!(errs.iter().any(|e| e.contains("empty range")), "{errs:?}");
    }

    #[test]
    fn kmeans_example_is_well_formed() {
        let program = parse_program(crate::parser::tests::KMEANS).unwrap();
        assert!(check_program(&program).is_ok());
    }
}
