//! Abstract syntax for the transform language (§2–3 of the paper).

use crate::token::Span;

/// A whole source file: one or more transforms.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The transforms, in declaration order.
    pub transforms: Vec<Transform>,
}

impl Program {
    /// Finds a transform by name.
    pub fn transform(&self, name: &str) -> Option<&Transform> {
        self.transforms.iter().find(|t| t.name == name)
    }
}

/// A `transform` declaration with its variable-accuracy headers (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Transform {
    /// Transform name.
    pub name: String,
    /// `accuracy_metric` header: the metric transform's name.
    pub accuracy_metric: Option<String>,
    /// `accuracy_variable` headers.
    pub accuracy_variables: Vec<AccuracyVariable>,
    /// `accuracy_bins` header values.
    pub accuracy_bins: Vec<f64>,
    /// `from` data (inputs).
    pub inputs: Vec<Param>,
    /// `through` data (intermediates).
    pub intermediates: Vec<Param>,
    /// `to` data (outputs).
    pub outputs: Vec<Param>,
    /// The rules in the transform body.
    pub rules: Vec<Rule>,
    /// Source location of the header.
    pub span: Span,
}

impl Transform {
    /// All declared data parameters (inputs, intermediates, outputs).
    pub fn all_data(&self) -> impl Iterator<Item = &Param> {
        self.inputs
            .iter()
            .chain(&self.intermediates)
            .chain(&self.outputs)
    }

    /// Looks a data parameter up by name.
    pub fn data(&self, name: &str) -> Option<&Param> {
        self.all_data().find(|p| p.name == name)
    }
}

/// An `accuracy_variable` declaration with an optional range.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyVariable {
    /// Variable name.
    pub name: String,
    /// Smallest legal value (default 1).
    pub min: i64,
    /// Largest legal value (default 1,000,000).
    pub max: i64,
    /// Source location.
    pub span: Span,
}

/// A data parameter: `Points[n, 2]` or a scalar like `Accuracy`.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Data name.
    pub name: String,
    /// Dimension expressions; empty = scalar.
    pub dims: Vec<Expr>,
    /// `scaled_by` resampler name (§3.2), if declared. The compiler
    /// adds a `scale_<name>` accuracy variable controlling how far the
    /// data may be down-sampled before the rules run.
    pub scaled_by: Option<String>,
    /// Source location.
    pub span: Span,
}

/// One rule: a pathway producing some data from other data.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Output bindings `(DataName localAlias)`.
    pub outputs: Vec<Binding>,
    /// Input bindings.
    pub inputs: Vec<Binding>,
    /// The rule body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// A `(Data alias)` binding in a rule header.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The transform-level data name.
    pub data: String,
    /// The local alias used inside the rule body.
    pub alias: String,
    /// Source location.
    pub span: Span,
}

/// A brace-delimited statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
        /// Source location.
        span: Span,
    },
    /// `while (cond) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `for (i in lo .. hi) { … }` (half-open range).
    For {
        /// Loop variable.
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (exclusive).
        hi: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `for_enough { … }` — compiler-chosen iteration count (§3.2).
    ForEnough {
        /// Index of this loop within the transform (names its tunable).
        id: usize,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `either { … } or { … }` — algorithmic choice (§3.2).
    Either {
        /// Index of this site within the transform.
        id: usize,
        /// The alternative branches (≥ 2).
        branches: Vec<Block>,
        /// Source location.
        span: Span,
    },
    /// `verify_accuracy;` — runtime accuracy check marker (§3.3).
    VerifyAccuracy {
        /// Source location.
        span: Span,
    },
    /// `return;` / `return expr;` — early exit from the rule body.
    Return {
        /// Optional value (ignored by rules; kept for metric bodies).
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// A bare expression statement (a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// This statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::ForEnough { span, .. }
            | Stmt::Either { span, .. }
            | Stmt::VerifyAccuracy { span }
            | Stmt::Return { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element `a[i]` / `a[i, j]`.
    Index {
        /// Array name.
        name: String,
        /// Index expressions (1 or 2).
        indices: Vec<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64, Span),
    /// Variable reference.
    Var(String, Span),
    /// Array element read.
    Index {
        /// Array name.
        name: String,
        /// Index expressions.
        indices: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function or builtin call; `accuracy` is set for
    /// `Callee<2.5>(…)` sub-accuracy calls (§3.2).
    Call {
        /// Callee name.
        name: String,
        /// Requested sub-accuracy, if explicit.
        accuracy: Option<f64>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// This expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number(_, span) | Expr::Var(_, span) => *span,
            Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }
}
