//! Pretty-printer: AST → canonical source text.
//!
//! The printer's output re-parses to an identical AST (modulo spans),
//! which the test suite exercises as a round-trip property.

use crate::ast::*;
use std::fmt::Write;

/// Pretty-prints a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, t) in program.transforms.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_transform(t, &mut out);
    }
    out
}

fn print_transform(t: &Transform, out: &mut String) {
    let _ = writeln!(out, "transform {}", t.name);
    if let Some(m) = &t.accuracy_metric {
        let _ = writeln!(out, "accuracy_metric {m}");
    }
    for av in &t.accuracy_variables {
        let _ = writeln!(out, "accuracy_variable {} {} {}", av.name, av.min, av.max);
    }
    if !t.accuracy_bins.is_empty() {
        let bins: Vec<String> = t.accuracy_bins.iter().map(|b| format_num(*b)).collect();
        let _ = writeln!(out, "accuracy_bins {}", bins.join(" "));
    }
    print_params("from", &t.inputs, out);
    print_params("through", &t.intermediates, out);
    print_params("to", &t.outputs, out);
    out.push_str("{\n");
    for rule in &t.rules {
        print_rule(rule, out);
    }
    out.push_str("}\n");
}

fn print_params(keyword: &str, params: &[Param], out: &mut String) {
    if params.is_empty() {
        return;
    }
    let rendered: Vec<String> = params
        .iter()
        .map(|p| {
            let mut rendered = if p.dims.is_empty() {
                p.name.clone()
            } else {
                let dims: Vec<String> = p.dims.iter().map(print_expr).collect();
                format!("{}[{}]", p.name, dims.join(", "))
            };
            if let Some(resampler) = &p.scaled_by {
                rendered.push_str(&format!(" scaled_by {resampler}"));
            }
            rendered
        })
        .collect();
    let _ = writeln!(out, "{keyword} {}", rendered.join(", "));
}

fn print_rule(rule: &Rule, out: &mut String) {
    let outs: Vec<String> = rule
        .outputs
        .iter()
        .map(|b| format!("{} {}", b.data, b.alias))
        .collect();
    let ins: Vec<String> = rule
        .inputs
        .iter()
        .map(|b| format!("{} {}", b.data, b.alias))
        .collect();
    let _ = writeln!(
        out,
        "    to ({}) from ({}) {{",
        outs.join(", "),
        ins.join(", ")
    );
    print_block(&rule.body, 2, out);
    out.push_str("    }\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    for stmt in &block.stmts {
        print_stmt(stmt, level, out);
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Let { name, value, .. } => {
            let _ = writeln!(out, "let {name} = {};", print_expr(value));
        }
        Stmt::Assign { target, value, .. } => {
            let t = match target {
                LValue::Var(n) => n.clone(),
                LValue::Index { name, indices } => {
                    let idx: Vec<String> = indices.iter().map(print_expr).collect();
                    format!("{name}[{}]", idx.join(", "))
                }
            };
            let _ = writeln!(out, "{t} = {};", print_expr(value));
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(then_block, level + 1, out);
            indent(level, out);
            match else_block {
                Some(e) => {
                    out.push_str("} else {\n");
                    print_block(e, level + 1, out);
                    indent(level, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::For {
            var, lo, hi, body, ..
        } => {
            let _ = writeln!(
                out,
                "for ({var} in {} .. {}) {{",
                print_expr(lo),
                print_expr(hi)
            );
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::ForEnough { body, .. } => {
            out.push_str("for_enough {\n");
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Either { branches, .. } => {
            out.push_str("either {\n");
            print_block(&branches[0], level + 1, out);
            indent(level, out);
            out.push('}');
            for b in &branches[1..] {
                out.push_str(" or {\n");
                print_block(b, level + 1, out);
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::VerifyAccuracy { .. } => out.push_str("verify_accuracy;\n"),
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", print_expr(v));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Expr { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders one expression (fully parenthesized where precedence could
/// bite).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Number(v, _) => format_num(*v),
        Expr::Var(name, _) => name.clone(),
        Expr::Index { name, indices, .. } => {
            let idx: Vec<String> = indices.iter().map(print_expr).collect();
            format!("{name}[{}]", idx.join(", "))
        }
        Expr::Call {
            name,
            accuracy,
            args,
            ..
        } => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            match accuracy {
                Some(acc) => format!("{name}<{}>({})", format_num(*acc), a.join(", ")),
                None => format!("{name}({})", a.join(", ")),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {o} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Unary { op, operand, .. } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("({o}{})", print_expr(operand))
        }
    }
}

/// Structural equality that ignores spans (used by round-trip tests).
pub fn ast_eq(a: &Program, b: &Program) -> bool {
    print_program(a) == print_program(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn kmeans_round_trips() {
        let program = parse_program(crate::parser::tests::KMEANS).unwrap();
        let printed = print_program(&program);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert!(ast_eq(&program, &reparsed));
    }

    #[test]
    fn parenthesization_preserves_structure() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) {
                    b[0] = 1 + 2 * 3 - -4 / (5 + 6);
                    b[1] = a[0] < 3 && !(a[1] == 2);
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert!(ast_eq(&program, &reparsed), "{printed}");
    }

    #[test]
    fn all_statement_forms_round_trip() {
        let src = r#"
            transform t
            accuracy_variable v 1 10
            accuracy_bins 0.5 1
            from A[n] to B[n] {
                to (B b) from (A a) {
                    let x = 1;
                    x = x + 1;
                    if (x > 0) { b[0] = 1; } else { b[0] = 2; }
                    while (x < 5) { x = x + 1; }
                    for (i in 0 .. 3) { b[i] = i; }
                    for_enough { x = x + 1; }
                    either { b[0] = 1; } or { b[0] = 2; }
                    verify_accuracy;
                    Helper(b, x);
                    return;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert!(ast_eq(&program, &reparsed), "{printed}");
    }

    #[test]
    fn scaled_by_round_trips() {
        let src = r#"
            transform t from A[n] scaled_by linear to B[n] {
                to (B b) from (A a) { b[0] = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let printed = print_program(&program);
        assert!(printed.contains("A[n] scaled_by linear"));
        let reparsed = parse_program(&printed).unwrap();
        assert!(ast_eq(&program, &reparsed));
    }

    #[test]
    fn sub_accuracy_call_round_trips() {
        let src = r#"
            transform t from A[n] to B[n] {
                to (B b) from (A a) { b[0] = t2<1.5>(a); }
            }
            transform t2 from X[n] to R {
                to (R r) from (X x) { r = 1; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let printed = print_program(&program);
        assert!(printed.contains("t2<1.5>(a)"));
        let reparsed = parse_program(&printed).unwrap();
        assert!(ast_eq(&program, &reparsed));
    }
}
