//! PetaBricks-style language front-end with the variable-accuracy
//! extensions of §3.
//!
//! This crate is the "language and compiler support" of the paper's
//! title: a small transform language in which the programmer declares
//! *what* may vary — algorithmic choices (multiple rules producing the
//! same data, `either…or` statements), accuracy variables,
//! `for_enough` loops, an `accuracy_metric` — and the compiler turns
//! those degrees of freedom into a tunable schema for the genetic
//! autotuner.
//!
//! Pipeline:
//!
//! ```text
//! source ──lexer──▶ tokens ──parser──▶ AST ──sema──▶ checked AST
//!        ──cdg──▶ choice dependency graph (execution order, choice sites)
//!        ──traininfo──▶ pb_config::Schema  (the "training information file")
//!        ──compile──▶ bytecode ──vm──▶ register-VM execution (hot path)
//!        ──interp──▶ executable transform (pb_runtime::Transform adapter;
//!                    tree-walking fallback for uncompiled rules)
//! ```
//!
//! The `compile`/`vm` stage is this reproduction's analogue of the
//! original compiler's C++ code generation: rule bodies are lowered
//! once to flat register bytecode and executed by a dispatch loop,
//! with identical tunable-resolution semantics to the tree-walking
//! interpreter (`rule_<Data>` decision trees, `for_enough_<i>` /
//! `either_<i>` variables, `<callee>.`-prefixed sub-transform
//! tunables). [`DslTransform`] compiles at construction, so the
//! autotuner's thousands of candidate executions per generation run
//! on the VM.
//!
//! # Examples
//!
//! ```
//! use pb_lang::parse_program;
//!
//! let source = r#"
//!     transform double
//!     accuracy_metric doubleacc
//!     from In[n]
//!     to Out[n]
//!     {
//!         to (Out o) from (In a) {
//!             for (i in 0 .. len(a)) { o[i] = 2 * a[i]; }
//!         }
//!     }
//!
//!     transform doubleacc
//!     from Out[n], In[n]
//!     to Accuracy
//!     {
//!         to (Accuracy acc) from (Out o, In a) {
//!             acc = 1;
//!         }
//!     }
//! "#;
//! let program = parse_program(source).unwrap();
//! assert_eq!(program.transforms.len(), 2);
//! ```

pub mod analysis;
pub mod ast;
pub mod cdg;
pub mod compile;
pub mod interp;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod traininfo;
pub mod transform;
pub mod vm;

pub use analysis::{
    analyze_chunk, charge_signature, count_indexed, entry_slots, lint_program, verify_chunk,
    verify_code, verify_specialized, verify_tunables, AbsValue, ChunkFacts, Lint, ScalarKind,
    Severity, Violation, ViolationKind,
};
pub use ast::Program;
pub use compile::{
    compile_program, opcode_is_fused, opcode_is_specialized, CompiledProgram, N_OPCODES,
    OPCODE_NAMES,
};
pub use interp::{Dims, Interpreter, Value};
pub use opt::{optimize_verified, optimize_verified_with_entry, OptLevel, PassViolation};
pub use parser::{parse_program, ParseError};
pub use sema::{check_program, SemaError};
pub use traininfo::extract_schema;
pub use transform::DslTransform;
