//! PetaBricks-style language front-end with the variable-accuracy
//! extensions of §3.
//!
//! This crate is the "language and compiler support" of the paper's
//! title: a small transform language in which the programmer declares
//! *what* may vary — algorithmic choices (multiple rules producing the
//! same data, `either…or` statements), accuracy variables,
//! `for_enough` loops, an `accuracy_metric` — and the compiler turns
//! those degrees of freedom into a tunable schema for the genetic
//! autotuner.
//!
//! Pipeline:
//!
//! ```text
//! source ──lexer──▶ tokens ──parser──▶ AST ──sema──▶ checked AST
//!        ──cdg──▶ choice dependency graph (execution order, choice sites)
//!        ──traininfo──▶ pb_config::Schema  (the "training information file")
//!        ──interp──▶ executable transform (pb_runtime::Transform adapter)
//! ```
//!
//! # Examples
//!
//! ```
//! use pb_lang::parse_program;
//!
//! let source = r#"
//!     transform double
//!     accuracy_metric doubleacc
//!     from In[n]
//!     to Out[n]
//!     {
//!         to (Out o) from (In a) {
//!             for (i in 0 .. len(a)) { o[i] = 2 * a[i]; }
//!         }
//!     }
//!
//!     transform doubleacc
//!     from Out[n], In[n]
//!     to Accuracy
//!     {
//!         to (Accuracy acc) from (Out o, In a) {
//!             acc = 1;
//!         }
//!     }
//! "#;
//! let program = parse_program(source).unwrap();
//! assert_eq!(program.transforms.len(), 2);
//! ```

pub mod ast;
pub mod cdg;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod traininfo;
pub mod transform;

pub use ast::Program;
pub use interp::{Interpreter, Value};
pub use parser::{parse_program, ParseError};
pub use sema::{check_program, SemaError};
pub use traininfo::extract_schema;
pub use transform::DslTransform;
