//! The register VM: a dispatch loop over [`crate::compile::Chunk`]
//! bytecode, executing rule bodies against a `pb_runtime::ExecCtx`.
//!
//! The VM keeps the interpreter's observable semantics instruction for
//! instruction — tunable resolution (`for_enough_<i>`, `either_<i>`,
//! prefixed sub-transform lookups), RNG consumption order, host-call
//! protocol, bounds checks, and per-statement virtual-cost charging —
//! while replacing the tree-walker's per-node dispatch, per-variable
//! hash lookups, and per-access `Value` clones with direct register
//! and slot addressing. Sub-transform calls recurse through
//! [`crate::interp::Interpreter`]'s shared orchestration, so callees
//! run compiled wherever their rules compiled.
//!
//! The hot path is allocation-free in steady state:
//!
//! * Register and slot banks live in a [`VmFrame`] borrowed from the
//!   per-thread scratch pool on the `ExecCtx` and grown monotonically,
//!   replacing the `vec![…]` pair every invocation used to pay.
//! * Tunable names resolve once per `(chunk, prefix)` into a cached
//!   table of pre-built full names and schema ids
//!   ([`ResolvedNames`], also scratch-pooled), so the dispatch loop
//!   never rebuilds `prefix + name` strings or hashes them against the
//!   schema. The cache revalidates its ids against the active schema
//!   on every borrow (a few pointer-free string compares), which keeps
//!   it correct even when the same chunk runs under different schemas
//!   (e.g. an accuracy-metric context).

use crate::ast::BinOp;
use crate::ast::Rule;
use crate::compile::{Chunk, FirstArg, Instr, MathFn1, MathFn2, Operand, ShapeKind};
use crate::interp::{read_element, write_element, Interpreter, RuntimeError, Value};
use crate::opt::apply_bin;
use crate::token::Span;
use pb_config::{ConfigError, Schema, TunableId};
use pb_runtime::ExecCtx;
use rand::Rng;
use std::borrow::Cow;
use std::collections::HashMap;
use std::rc::Rc;

fn err(message: impl Into<String>) -> RuntimeError {
    RuntimeError {
        message: message.into(),
        span: None,
    }
}

/// Converts an f64 index with the interpreter's `eval_index` checks.
#[inline]
fn index(v: f64) -> Result<usize, RuntimeError> {
    if v < 0.0 || !v.is_finite() {
        return Err(err(format!("illegal index {v}")));
    }
    Ok(v as usize)
}

/// One-argument math builtins, shared with the optimizer's constant
/// folder so folded results are bit-identical to runtime evaluation.
#[inline]
pub(crate) fn apply_math1(f: MathFn1, v: f64) -> f64 {
    match f {
        MathFn1::Sqrt => v.sqrt(),
        MathFn1::Abs => v.abs(),
        MathFn1::Floor => v.floor(),
        MathFn1::Ceil => v.ceil(),
        MathFn1::Exp => v.exp(),
        MathFn1::Log => v.ln(),
    }
}

/// Two-argument math builtins (see [`apply_math1`]).
#[inline]
pub(crate) fn apply_math2(f: MathFn2, a: f64, b: f64) -> f64 {
    match f {
        MathFn2::Min => a.min(b),
        MathFn2::Max => a.max(b),
        MathFn2::Pow => a.powf(b),
    }
}

/// Comparison dispatch for the fused branch forms (`op` is always a
/// comparison; the optimizer never fuses arithmetic into a branch).
#[inline]
fn apply_cmp(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("only comparisons fuse into branches"),
    }
}

/// An operand as a borrowed value where possible: slot operands borrow
/// in place (the fast path the old always-`clone` accessor lacked),
/// register operands wrap into an owned scalar.
#[inline]
fn operand_cow<'a>(op: &Operand, regs: &[f64], slots: &'a [Value]) -> Cow<'a, Value> {
    match op {
        Operand::Reg(r) => Cow::Owned(Value::Num(regs[*r as usize])),
        Operand::Slot(s) => Cow::Borrowed(&slots[*s as usize]),
    }
}

/// Element count of a value for host-call cost charging —
/// `dims().iter().product().max(1)` without the `dims()` allocation.
#[inline]
fn value_size(v: &Value) -> usize {
    match v {
        Value::Num(_) => 1,
        Value::Arr1(a) => a.len().max(1),
        Value::Arr2 { rows, cols, .. } => (rows * cols).max(1),
    }
}

/// An operand as an owned value — the host-call protocol needs
/// `&[Value]`, so arrays genuinely clone here; callers that can hold a
/// borrow use [`operand_cow`] instead (the actual fast path).
#[inline]
fn operand_value(op: &Operand, regs: &[f64], slots: &[Value]) -> Value {
    match op {
        Operand::Reg(r) => Value::Num(regs[*r as usize]),
        Operand::Slot(s) => slots[*s as usize].clone(),
    }
}

/// Reusable per-invocation execution state: the scalar register bank
/// and the `Value` slot bank, grown monotonically and recycled through
/// the `ExecCtx` scratch pool (nested invocations each borrow their
/// own frame).
#[derive(Default)]
pub(crate) struct VmFrame {
    regs: Vec<f64>,
    slots: Vec<Value>,
    /// Per-invocation memo of `Choice` resolutions, indexed by
    /// `NameIdx` (`usize::MAX` = unresolved). Choice lookups are pure
    /// functions of the context's fixed config/schema/size, so
    /// memoizing them within one invocation is observably identical to
    /// re-resolving — it just lifts the decision-tree walk out of
    /// loops. Left empty on the `O0` compatibility path.
    choices: Vec<usize>,
}

impl VmFrame {
    /// Prepares the frame for a chunk: both banks grown to size and
    /// reset to the zero state a fresh allocation would have, so reuse
    /// is observably identical to reallocation.
    fn reset(&mut self, n_regs: usize, n_slots: usize, n_names: usize) {
        if self.regs.len() < n_regs {
            self.regs.resize(n_regs, 0.0);
        }
        self.regs[..n_regs].fill(0.0);
        if self.slots.len() < n_slots {
            self.slots.resize(n_slots, Value::Num(0.0));
        }
        for slot in &mut self.slots[..n_slots] {
            *slot = Value::Num(0.0);
        }
        self.choices.clear();
        self.choices.resize(n_names, usize::MAX);
    }

    /// Drops any arrays parked in the slot bank so a pooled frame does
    /// not pin trial data between invocations.
    fn release_values(&mut self) {
        for slot in &mut self.slots {
            *slot = Value::Num(0.0);
        }
    }
}

/// One interned chunk name, pre-resolved against a prefix: the full
/// tunable key, its schema id (when the schema knows it), and the
/// sub-transform prefix a `CallTransform` through this name would use.
struct ResolvedName {
    full: String,
    id: Option<TunableId>,
    sub_prefix: String,
}

/// The per-`(chunk, prefix)` resolution table.
type ResolvedNames = Rc<Vec<ResolvedName>>;

/// A cached resolution keyed by chunk identity and prefix. The chunk
/// address is only a cache key (never dereferenced), and every hit is
/// revalidated against the live schema, so stale entries can only
/// cause a rebuild — never a wrong resolution.
struct CacheEntry {
    chunk_addr: usize,
    prefix: String,
    names: ResolvedNames,
}

/// Scratch state parked on the `ExecCtx` between rule invocations:
/// free execution frames plus the tunable-resolution cache.
#[derive(Default)]
pub(crate) struct VmScratch {
    frames: Vec<VmFrame>,
    cache: Vec<CacheEntry>,
}

/// Caps the resolution cache so pathological programs (many chunks ×
/// many prefixes) cannot grow it without bound.
const CACHE_CAP: usize = 64;

impl VmScratch {
    fn resolve(&mut self, chunk: &Chunk, prefix: &str, schema: &Schema) -> ResolvedNames {
        let chunk_addr = chunk as *const Chunk as usize;
        if let Some(entry) = self
            .cache
            .iter()
            .find(|e| e.chunk_addr == chunk_addr && e.prefix == prefix)
        {
            if Self::validate(&entry.names, chunk, prefix, schema) {
                return Rc::clone(&entry.names);
            }
        }
        let names: Vec<ResolvedName> = chunk
            .names
            .iter()
            .map(|name| {
                let full = format!("{prefix}{name}");
                let id = schema.tunable(&full).map(|(id, _)| id);
                ResolvedName {
                    sub_prefix: format!("{full}."),
                    full,
                    id,
                }
            })
            .collect();
        let names = Rc::new(names);
        self.cache
            .retain(|e| !(e.chunk_addr == chunk_addr && e.prefix == prefix));
        if self.cache.len() >= CACHE_CAP {
            // Evict the oldest entry; clearing everything would make
            // programs with more than CACHE_CAP (chunk, prefix) pairs
            // rebuild their whole hot set on every invocation.
            self.cache.remove(0);
        }
        self.cache.push(CacheEntry {
            chunk_addr,
            prefix: prefix.to_owned(),
            names: Rc::clone(&names),
        });
        names
    }

    /// Whether a cached table still matches the chunk's names and the
    /// active schema (allocation-free: length and string compares).
    fn validate(names: &ResolvedNames, chunk: &Chunk, prefix: &str, schema: &Schema) -> bool {
        names.len() == chunk.names.len()
            && names.iter().zip(&chunk.names).all(|(r, name)| {
                r.full.len() == prefix.len() + name.len()
                    && r.full.ends_with(name.as_str())
                    && match r.id {
                        Some(id) => {
                            id.0 < schema.len() && schema.tunable_by_id(id).name() == r.full
                        }
                        None => schema.tunable(&r.full).is_none(),
                    }
            })
    }
}

/// Runs one compiled rule against the transform's data store,
/// mirroring the interpreter's `run_rule` binding and write-back.
///
/// Optimized chunks run on pooled frames with cached tunable
/// resolution; `O0` chunks take a compatibility path that approximates
/// the pre-optimizer execution profile — fresh banks and fresh name
/// resolution every invocation — preserving a "current VM" baseline
/// for the `vm_opt` benchmark. (It is an approximation, not a replay:
/// the old VM resolved names lazily per *read*, so for prefixed
/// tunables in loops this baseline under-counts the old cost —
/// conservative for the reported speedups — while for top-level
/// chunks it eagerly builds a handful of small strings per invocation
/// the old VM skipped, which is noise at trial granularity.)
pub(crate) fn run_rule(
    interp: &Interpreter,
    rule: &Rule,
    chunk: &Chunk,
    store: &mut HashMap<String, Value>,
    ctx: &mut ExecCtx<'_>,
    prefix: &str,
    depth: usize,
) -> Result<(), RuntimeError> {
    if chunk.opt == crate::opt::OptLevel::O0 {
        let mut frame = VmFrame::default();
        frame.reset(chunk.n_regs as usize, chunk.n_slots as usize, 0);
        let schema = ctx.schema();
        let resolved: Vec<ResolvedName> = chunk
            .names
            .iter()
            .map(|name| {
                let full = format!("{prefix}{name}");
                ResolvedName {
                    id: schema.tunable(&full).map(|(id, _)| id),
                    sub_prefix: format!("{full}."),
                    full,
                }
            })
            .collect();
        return bind_exec_writeback(
            interp, rule, chunk, store, ctx, depth, &resolved, &mut frame,
        );
    }

    let mut scratch = ctx.scratch().take::<VmScratch>();
    let resolved = scratch.resolve(chunk, prefix, ctx.schema());
    let mut frame = scratch.frames.pop().unwrap_or_default();
    ctx.scratch().put(scratch);
    frame.reset(
        chunk.n_regs as usize,
        chunk.n_slots as usize,
        chunk.names.len(),
    );

    let result = bind_exec_writeback(
        interp, rule, chunk, store, ctx, depth, &resolved, &mut frame,
    );

    // Recycle the frame whatever the outcome (dropping parked arrays
    // now, not at the next reset, so pooled frames stay small).
    frame.release_values();
    let mut scratch = ctx.scratch().take::<VmScratch>();
    scratch.frames.push(frame);
    ctx.scratch().put(scratch);
    result
}

/// Shared invocation body: binds the rule's aliases into the frame,
/// dispatches, and writes outputs back on success.
#[allow(clippy::too_many_arguments)]
fn bind_exec_writeback(
    interp: &Interpreter,
    rule: &Rule,
    chunk: &Chunk,
    store: &mut HashMap<String, Value>,
    ctx: &mut ExecCtx<'_>,
    depth: usize,
    resolved: &[ResolvedName],
    frame: &mut VmFrame,
) -> Result<(), RuntimeError> {
    for (b, slot) in rule.inputs.iter().zip(&chunk.input_slots) {
        let v = store.get(&b.data).ok_or_else(|| RuntimeError {
            message: format!("rule reads unproduced data `{}`", b.data),
            span: Some(b.span),
        })?;
        frame.slots[*slot as usize] = v.clone();
    }
    // Output aliases bind after inputs, shadowing same-named inputs.
    for (b, slot) in rule.outputs.iter().zip(&chunk.output_slots) {
        let v = store.get(&b.data).ok_or_else(|| RuntimeError {
            message: format!("rule writes undeclared data `{}`", b.data),
            span: Some(b.span),
        })?;
        frame.slots[*slot as usize] = v.clone();
    }

    exec(interp, chunk, resolved, frame, ctx, depth)?;

    for (b, slot) in rule.outputs.iter().zip(&chunk.output_slots) {
        store.insert(b.data.clone(), frame.slots[*slot as usize].clone());
    }
    Ok(())
}

/// Dispatch entry point: profiling off (or this execution skipped by
/// the `PB_PROFILE_SAMPLE` sampling grid) takes the unchanged hot loop
/// (monomorphized without the counting code — zero overhead); with
/// profiling on, per-opcode executions count into a stack-local table
/// that merges into this thread's chunk profile *after* the loop
/// returns, so `CallTransform` recursion (which re-enters `exec` on
/// this thread) never holds the profile lock during dispatch.
fn exec(
    interp: &Interpreter,
    chunk: &Chunk,
    resolved: &[ResolvedName],
    frame: &mut VmFrame,
    ctx: &mut ExecCtx<'_>,
    depth: usize,
) -> Result<(), RuntimeError> {
    if pb_trace::vm_profile_due(&chunk.label) {
        let mut counts = [0u64; crate::compile::N_OPCODES];
        let result = exec_loop::<true>(interp, chunk, resolved, frame, ctx, depth, &mut counts);
        pb_trace::record_chunk(&chunk.label, &counts);
        result
    } else {
        exec_loop::<false>(interp, chunk, resolved, frame, ctx, depth, &mut [])
    }
}

/// The dispatch loop.
fn exec_loop<const PROFILE: bool>(
    interp: &Interpreter,
    chunk: &Chunk,
    resolved: &[ResolvedName],
    frame: &mut VmFrame,
    ctx: &mut ExecCtx<'_>,
    depth: usize,
    counts: &mut [u64],
) -> Result<(), RuntimeError> {
    let n_regs = chunk.n_regs as usize;
    let n_slots = chunk.n_slots as usize;
    let VmFrame {
        regs,
        slots,
        choices,
    } = frame;
    let regs: &mut [f64] = &mut regs[..n_regs];
    let slots: &mut [Value] = &mut slots[..n_slots];
    let code = &chunk.code;
    let names = &chunk.names;
    let mut pc = 0usize;
    while pc < code.len() {
        if PROFILE {
            counts[code[pc].opcode_index()] += 1;
        }
        match &code[pc] {
            Instr::Const { dst, val } => regs[*dst as usize] = *val,
            Instr::Move { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Instr::LoadSlotNum { dst, slot } => match &slots[*slot as usize] {
                Value::Num(v) => regs[*dst as usize] = *v,
                _ => return Err(err("expected a scalar value")),
            },
            Instr::StoreSlotNum { slot, src } => {
                slots[*slot as usize] = Value::Num(regs[*src as usize]);
            }
            Instr::CopySlot { dst, src } => {
                slots[*dst as usize] = slots[*src as usize].clone();
            }
            Instr::LoadParam { dst, name } => {
                let v = match resolved[*name as usize].id {
                    Some(id) => ctx.param_by_id(id).ok(),
                    None => None,
                };
                match v {
                    Some(v) => regs[*dst as usize] = v as f64,
                    None => {
                        let name = &names[*name as usize];
                        return Err(err(format!("unknown variable `{name}`")));
                    }
                }
            }
            Instr::Bin { op, dst, a, b } => {
                regs[*dst as usize] = apply_bin(*op, regs[*a as usize], regs[*b as usize]);
            }
            Instr::BinRI { op, dst, a, imm } => {
                regs[*dst as usize] = apply_bin(*op, regs[*a as usize], *imm);
            }
            Instr::BinIR { op, dst, imm, b } => {
                regs[*dst as usize] = apply_bin(*op, *imm, regs[*b as usize]);
            }
            Instr::Neg { dst, src } => regs[*dst as usize] = -regs[*src as usize],
            Instr::Not { dst, src } => {
                regs[*dst as usize] = if regs[*src as usize] == 0.0 { 1.0 } else { 0.0 };
            }
            Instr::TestNonZero { dst, src } => {
                regs[*dst as usize] = (regs[*src as usize] != 0.0) as i64 as f64;
            }
            Instr::Math1 { f, dst, src } => {
                regs[*dst as usize] = apply_math1(*f, regs[*src as usize]);
            }
            Instr::Math2 { f, dst, a, b } => {
                regs[*dst as usize] = apply_math2(*f, regs[*a as usize], regs[*b as usize]);
            }
            Instr::Rand { dst, lo, hi } => {
                let lo = regs[*lo as usize];
                let hi = regs[*hi as usize];
                regs[*dst as usize] = if hi <= lo {
                    lo
                } else {
                    ctx.rng().gen_range(lo..hi)
                };
            }
            Instr::Shape { kind, dst, slot } => {
                // Matches the value directly (not through `dims()`,
                // which allocates) with the interpreter's exact
                // shape-acceptance rules.
                let v = &slots[*slot as usize];
                regs[*dst as usize] = match (kind, v) {
                    (ShapeKind::Len, Value::Arr1(a)) => a.len() as f64,
                    (ShapeKind::Len, Value::Arr2 { cols, .. })
                    | (ShapeKind::Cols, Value::Arr2 { cols, .. }) => *cols as f64,
                    (ShapeKind::Rows, Value::Arr2 { rows, .. }) => *rows as f64,
                    (kind, _) => {
                        let name = match kind {
                            ShapeKind::Len => "len",
                            ShapeKind::Rows => "rows",
                            ShapeKind::Cols => "cols",
                        };
                        return Err(err(format!("`{name}` applied to a value of wrong shape")));
                    }
                };
            }
            Instr::LoadIdx1 { dst, slot, idx } => {
                let i = index(regs[*idx as usize])?;
                regs[*dst as usize] = read_element(&slots[*slot as usize], &[i], Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::LoadIdx2 { dst, slot, i, j } => {
                let i = index(regs[*i as usize])?;
                let j = index(regs[*j as usize])?;
                regs[*dst as usize] =
                    read_element(&slots[*slot as usize], &[i, j], Span::new(0, 0))
                        .map_err(|e| err(e.message))?;
            }
            Instr::StoreIdx1 { slot, idx, src } => {
                let i = index(regs[*idx as usize])?;
                let v = regs[*src as usize];
                write_element(&mut slots[*slot as usize], &[i], v, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::BinStoreIdx1 {
                op,
                slot,
                idx,
                a,
                b,
            } => {
                // The absorbed `Bin` is pure, so computing it on either
                // side of the index check is unobservable.
                let i = index(regs[*idx as usize])?;
                let v = apply_bin(*op, regs[*a as usize], regs[*b as usize]);
                write_element(&mut slots[*slot as usize], &[i], v, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::StoreIdx2 { slot, i, j, src } => {
                let i = index(regs[*i as usize])?;
                let j = index(regs[*j as usize])?;
                let v = regs[*src as usize];
                write_element(&mut slots[*slot as usize], &[i, j], v, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            // Specialized (`*U`) forms: one guard compare replaces the
            // validate/truncate/match path. The guard admits exactly
            // the indices the checked form would accept (`v >= 0.0`
            // excludes NaN and negatives, `v < len` excludes overflow;
            // `v as usize` truncates like `index`), and a failed guard
            // — index out of range *or* a slot whose runtime shape
            // belies the facts — re-runs the checked form's exact
            // dispatch, so results and error points are bit-identical.
            Instr::LoadIdx1U { dst, slot, idx } => {
                let v = regs[*idx as usize];
                if let Value::Arr1(a) = &slots[*slot as usize] {
                    if v >= 0.0 && v < a.len() as f64 {
                        regs[*dst as usize] = a[v as usize];
                        pc += 1;
                        continue;
                    }
                }
                let i = index(v)?;
                regs[*dst as usize] = read_element(&slots[*slot as usize], &[i], Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::LoadIdx2U { dst, slot, i, j } => {
                let vi = regs[*i as usize];
                let vj = regs[*j as usize];
                if let Value::Arr2 { rows, cols, data } = &slots[*slot as usize] {
                    if vi >= 0.0 && vi < *rows as f64 && vj >= 0.0 && vj < *cols as f64 {
                        regs[*dst as usize] = data[vi as usize * *cols + vj as usize];
                        pc += 1;
                        continue;
                    }
                }
                let i = index(vi)?;
                let j = index(vj)?;
                regs[*dst as usize] =
                    read_element(&slots[*slot as usize], &[i, j], Span::new(0, 0))
                        .map_err(|e| err(e.message))?;
            }
            Instr::StoreIdx1U { slot, idx, src } => {
                let v = regs[*idx as usize];
                let x = regs[*src as usize];
                if let Value::Arr1(a) = &mut slots[*slot as usize] {
                    if v >= 0.0 && v < a.len() as f64 {
                        a[v as usize] = x;
                        pc += 1;
                        continue;
                    }
                }
                let i = index(v)?;
                write_element(&mut slots[*slot as usize], &[i], x, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::StoreIdx2U { slot, i, j, src } => {
                let vi = regs[*i as usize];
                let vj = regs[*j as usize];
                let x = regs[*src as usize];
                if let Value::Arr2 { rows, cols, data } = &mut slots[*slot as usize] {
                    if vi >= 0.0 && vi < *rows as f64 && vj >= 0.0 && vj < *cols as f64 {
                        data[vi as usize * *cols + vj as usize] = x;
                        pc += 1;
                        continue;
                    }
                }
                let i = index(vi)?;
                let j = index(vj)?;
                write_element(&mut slots[*slot as usize], &[i, j], x, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::BinStoreIdx1U {
                op,
                slot,
                idx,
                a,
                b,
            } => {
                // Like `BinStoreIdx1`, the absorbed `Bin` is pure, so
                // computing it on either side of the guard is
                // unobservable.
                let v = regs[*idx as usize];
                let x = apply_bin(*op, regs[*a as usize], regs[*b as usize]);
                if let Value::Arr1(arr) = &mut slots[*slot as usize] {
                    if v >= 0.0 && v < arr.len() as f64 {
                        arr[v as usize] = x;
                        pc += 1;
                        continue;
                    }
                }
                let i = index(v)?;
                write_element(&mut slots[*slot as usize], &[i], x, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::ShapeHoisted { kind, dst, slot } => {
                // Dispatch is `Shape`'s exactly; the distinct opcode
                // carries the verifier's hoist contract and lets
                // profiling count hoisted reads.
                let v = &slots[*slot as usize];
                regs[*dst as usize] = match (kind, v) {
                    (ShapeKind::Len, Value::Arr1(a)) => a.len() as f64,
                    (ShapeKind::Len, Value::Arr2 { cols, .. })
                    | (ShapeKind::Cols, Value::Arr2 { cols, .. }) => *cols as f64,
                    (ShapeKind::Rows, Value::Arr2 { rows, .. }) => *rows as f64,
                    (kind, _) => {
                        let name = match kind {
                            ShapeKind::Len => "len",
                            ShapeKind::Rows => "rows",
                            ShapeKind::Cols => "cols",
                        };
                        return Err(err(format!("`{name}` applied to a value of wrong shape")));
                    }
                };
            }
            Instr::Jump { target } => {
                pc = *target;
                continue;
            }
            Instr::JumpIfZero { cond, target } => {
                if regs[*cond as usize] == 0.0 {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfNonZero { cond, target } => {
                if regs[*cond as usize] != 0.0 {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfGe { a, b, target } => {
                if regs[*a as usize] >= regs[*b as usize] {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpCmp {
                op,
                a,
                b,
                jump_if,
                target,
            } => {
                if apply_cmp(*op, regs[*a as usize], regs[*b as usize]) == *jump_if {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpCmpImm {
                op,
                a,
                imm,
                jump_if,
                target,
            } => {
                if apply_cmp(*op, regs[*a as usize], *imm) == *jump_if {
                    pc = *target;
                    continue;
                }
            }
            Instr::AddImm { dst, imm } => regs[*dst as usize] += *imm,
            Instr::AddImmJump { dst, imm, target } => {
                regs[*dst as usize] += *imm;
                pc = *target;
                continue;
            }
            Instr::TruncPair { a, b } => {
                // The interpreter converts `for` bounds through i64.
                regs[*a as usize] = regs[*a as usize] as i64 as f64;
                regs[*b as usize] = regs[*b as usize] as i64 as f64;
            }
            Instr::Charge { amount } => ctx.charge(*amount),
            Instr::WhileGuard { counter } => {
                let c = &mut regs[*counter as usize];
                *c += 1.0;
                if *c > 10_000_000.0 {
                    return Err(err("while loop exceeded 10M iterations"));
                }
            }
            Instr::ForEnoughPrep { dst, name } => {
                let r = &resolved[*name as usize];
                let iters = match r.id {
                    Some(id) => ctx.for_enough_by_id(id),
                    None => Err(ConfigError::UnknownTunable(r.full.clone())),
                }
                .map_err(|e| err(format!("{e}")))?;
                regs[*dst as usize] = iters as f64;
            }
            Instr::Choice {
                dst,
                name,
                branches,
            } => {
                let idx = *name as usize;
                let memoized = choices.get(idx).copied().unwrap_or(usize::MAX);
                let pick = if memoized != usize::MAX {
                    memoized
                } else {
                    let r = &resolved[idx];
                    let pick = match r.id {
                        Some(id) => ctx.choice_by_id(id),
                        None => Err(ConfigError::UnknownTunable(r.full.clone())),
                    }
                    .map_err(|e| err(format!("{e}")))?;
                    if let Some(slot) = choices.get_mut(idx) {
                        *slot = pick;
                    }
                    pick
                };
                regs[*dst as usize] = pick.min(*branches as usize - 1) as f64;
            }
            Instr::Switch { src, targets } => {
                // Unreachable for verified chunks (the adjacent Choice
                // clamps the pick); a runtime error, not a panic, for
                // anything hand-built.
                let idx = regs[*src as usize] as usize;
                pc = *targets.get(idx).ok_or_else(|| {
                    err(format!(
                        "switch index {idx} out of range ({} targets)",
                        targets.len()
                    ))
                })?;
                continue;
            }
            Instr::SlotUpdImm {
                op,
                dst,
                src,
                imm,
                imm_on_left,
            } => {
                let v = match &slots[*src as usize] {
                    Value::Num(v) => *v,
                    _ => return Err(err("expected a scalar value")),
                };
                let out = if *imm_on_left {
                    apply_bin(*op, *imm, v)
                } else {
                    apply_bin(*op, v, *imm)
                };
                slots[*dst as usize] = Value::Num(out);
            }
            Instr::SlotUpdReg { op, dst, src, b } => {
                let v = match &slots[*src as usize] {
                    Value::Num(v) => *v,
                    _ => return Err(err("expected a scalar value")),
                };
                slots[*dst as usize] = Value::Num(apply_bin(*op, v, regs[*b as usize]));
            }
            Instr::CallHost {
                name,
                first,
                rest,
                dst,
            } => {
                let fname = &names[*name as usize];
                // Existence is checked before argument evaluation,
                // like the interpreter's dispatch order.
                let Some(f) = interp.host_fn(fname) else {
                    return Err(err(format!("unknown function `{fname}`")));
                };
                let rest_values: Vec<Value> = rest
                    .iter()
                    .map(|op| operand_value(op, regs, slots))
                    .collect();
                let mut first_value = match first {
                    FirstArg::Var(s) => slots[*s as usize].clone(),
                    FirstArg::Anon(op) => operand_value(op, regs, slots),
                };
                ctx.charge(rest_values.iter().map(value_size).sum::<usize>() as f64);
                let out = f(&mut first_value, &rest_values)
                    .map_err(|m| err(format!("host `{fname}`: {m}")))?;
                if let FirstArg::Var(s) = first {
                    slots[*s as usize] = first_value;
                }
                slots[*dst as usize] = out;
            }
            Instr::CallTransform { name, args, dst } => {
                let callee_name = &names[*name as usize];
                let callee = interp
                    .program()
                    .transform(callee_name)
                    .expect("callee checked at compile time");
                // Scalar helper callees with a precomputed binding plan
                // skip the generic store round-trip entirely.
                if let Some(out) = call_transform_planned(
                    interp,
                    chunk,
                    callee_name,
                    callee,
                    args,
                    regs,
                    slots,
                    &resolved[*name as usize].sub_prefix,
                    ctx,
                    depth,
                )? {
                    slots[*dst as usize] = out;
                    pc += 1;
                    continue;
                }
                // Argument values borrow straight out of the slot bank
                // (the callee clones what it keeps), so array arguments
                // are cloned once — into the callee's store — instead
                // of twice.
                let mut sub_inputs: HashMap<String, Cow<'_, Value>> =
                    HashMap::with_capacity(args.len());
                for (param, op) in callee.inputs.iter().zip(args) {
                    sub_inputs.insert(param.name.clone(), operand_cow(op, regs, slots));
                }
                let sub_prefix = &resolved[*name as usize].sub_prefix;
                let outputs =
                    interp.run_prefixed(callee_name, &sub_inputs, ctx, sub_prefix, depth + 1)?;
                drop(sub_inputs);
                let out_name = &callee.outputs[0].name;
                slots[*dst as usize] = outputs.get(out_name).cloned().ok_or_else(|| {
                    err(format!(
                        "transform `{callee_name}` produced no `{out_name}`"
                    ))
                })?;
            }
            Instr::Return => return Ok(()),
            Instr::Nop => {}
        }
        pc += 1;
    }
    Ok(())
}

/// The `CallTransform` fast path: executes a scalar helper callee
/// through its precomputed [`BindingPlan`] — arguments bind straight
/// into a pooled frame as scalars, the single producing rule's chunk
/// runs, and the scalar output comes back, with no `HashMap` store,
/// no per-call name re-resolution, and no schema re-validation beyond
/// the cached table's cheap revalidation.
///
/// Returns `Ok(None)` when the plan does not apply — no plan for this
/// callee, an argument slot currently holding an array, a caller chunk
/// below `O3` — in which case the caller takes the generic
/// `run_prefixed` path, which reproduces every error and resampling
/// behavior exactly. When the plan applies, execution is observably
/// identical to the generic path: same depth limit (and message), same
/// zero-initialized output, same binding order (inputs first, output
/// shadowing after), same chunk under the same sub-prefix.
#[allow(clippy::too_many_arguments)]
fn call_transform_planned(
    interp: &Interpreter,
    caller: &Chunk,
    callee_name: &str,
    callee: &crate::ast::Transform,
    args: &[Operand],
    regs: &[f64],
    slots: &[Value],
    sub_prefix: &str,
    ctx: &mut ExecCtx<'_>,
    depth: usize,
) -> Result<Option<Value>, RuntimeError> {
    if caller.opt < crate::opt::OptLevel::O3 {
        return Ok(None);
    }
    let Some(plan) = interp.binding_plan(callee_name) else {
        return Ok(None);
    };
    if args.len() != callee.inputs.len() {
        return Ok(None);
    }
    // Every argument must currently be a scalar; a slot holding an
    // array falls back so the generic path can report its dimension
    // mismatch verbatim.
    if !args.iter().all(|op| match op {
        Operand::Reg(_) => true,
        Operand::Slot(s) => matches!(&slots[*s as usize], Value::Num(_)),
    }) {
        return Ok(None);
    }
    let Some(sub_chunk) = interp
        .compiled()
        .and_then(|c| c.chunk(callee_name, plan.rule_idx))
    else {
        return Ok(None);
    };
    // Same guard (and error) `run_prefixed` raises first.
    if depth + 1 > 8 {
        return Err(RuntimeError {
            message: "transform call depth exceeded".into(),
            span: None,
        });
    }

    let mut scratch = ctx.scratch().take::<VmScratch>();
    let sub_resolved = scratch.resolve(sub_chunk, sub_prefix, ctx.schema());
    let mut sub_frame = scratch.frames.pop().unwrap_or_default();
    ctx.scratch().put(scratch);
    sub_frame.reset(
        sub_chunk.n_regs as usize,
        sub_chunk.n_slots as usize,
        sub_chunk.names.len(),
    );

    // Bind inputs, then zero the output slot after them (the generic
    // path's output alias shadows same-named inputs).
    for (slot_idx, &arg_pos) in sub_chunk.input_slots.iter().zip(&plan.arg_for_input) {
        let v = match &args[arg_pos] {
            Operand::Reg(r) => regs[*r as usize],
            Operand::Slot(s) => match &slots[*s as usize] {
                Value::Num(v) => *v,
                _ => unreachable!("checked scalar above"),
            },
        };
        sub_frame.slots[*slot_idx as usize] = Value::Num(v);
    }
    let out_slot = sub_chunk.output_slots[0] as usize;
    sub_frame.slots[out_slot] = Value::Num(0.0);

    let result = exec(
        interp,
        sub_chunk,
        &sub_resolved,
        &mut sub_frame,
        ctx,
        depth + 1,
    );
    let out = std::mem::replace(&mut sub_frame.slots[out_slot], Value::Num(0.0));

    // Recycle the frame whatever the outcome.
    sub_frame.release_values();
    let mut scratch = ctx.scratch().take::<VmScratch>();
    scratch.frames.push(sub_frame);
    ctx.scratch().put(scratch);
    result?;
    Ok(Some(out))
}
