//! The register VM: a dispatch loop over [`crate::compile::Chunk`]
//! bytecode, executing rule bodies against a `pb_runtime::ExecCtx`.
//!
//! The VM keeps the interpreter's observable semantics instruction for
//! instruction — tunable resolution (`for_enough_<i>`, `either_<i>`,
//! prefixed sub-transform lookups), RNG consumption order, host-call
//! protocol, bounds checks, and per-statement virtual-cost charging —
//! while replacing the tree-walker's per-node dispatch, per-variable
//! hash lookups, and per-access `Value` clones with direct register
//! and slot addressing. Sub-transform calls recurse through
//! [`crate::interp::Interpreter`]'s shared orchestration, so callees
//! run compiled wherever their rules compiled.

use crate::ast::BinOp;
use crate::ast::Rule;
use crate::compile::{Chunk, FirstArg, Instr, MathFn1, MathFn2, Operand, ShapeKind};
use crate::interp::{read_element, write_element, Interpreter, RuntimeError, Value};
use crate::token::Span;
use pb_runtime::ExecCtx;
use rand::Rng;
use std::borrow::Cow;
use std::collections::HashMap;

/// A tunable name under the current sub-transform prefix, without
/// allocating in the common top-level (empty prefix) case.
#[inline]
fn prefixed<'a>(prefix: &str, name: &'a str) -> Cow<'a, str> {
    if prefix.is_empty() {
        Cow::Borrowed(name)
    } else {
        Cow::Owned(format!("{prefix}{name}"))
    }
}

fn err(message: impl Into<String>) -> RuntimeError {
    RuntimeError {
        message: message.into(),
        span: None,
    }
}

/// Converts an f64 index with the interpreter's `eval_index` checks.
#[inline]
fn index(v: f64) -> Result<usize, RuntimeError> {
    if v < 0.0 || !v.is_finite() {
        return Err(err(format!("illegal index {v}")));
    }
    Ok(v as usize)
}

#[inline]
fn operand_value(op: &Operand, regs: &[f64], slots: &[Value]) -> Value {
    match op {
        Operand::Reg(r) => Value::Num(regs[*r as usize]),
        Operand::Slot(s) => slots[*s as usize].clone(),
    }
}

/// Runs one compiled rule against the transform's data store,
/// mirroring the interpreter's `run_rule` binding and write-back.
pub(crate) fn run_rule(
    interp: &Interpreter,
    rule: &Rule,
    chunk: &Chunk,
    store: &mut HashMap<String, Value>,
    ctx: &mut ExecCtx<'_>,
    prefix: &str,
    depth: usize,
) -> Result<(), RuntimeError> {
    let mut slots = vec![Value::Num(0.0); chunk.n_slots as usize];
    for (b, slot) in rule.inputs.iter().zip(&chunk.input_slots) {
        let v = store.get(&b.data).ok_or_else(|| RuntimeError {
            message: format!("rule reads unproduced data `{}`", b.data),
            span: Some(b.span),
        })?;
        slots[*slot as usize] = v.clone();
    }
    // Output aliases bind after inputs, shadowing same-named inputs.
    for (b, slot) in rule.outputs.iter().zip(&chunk.output_slots) {
        let v = store.get(&b.data).ok_or_else(|| RuntimeError {
            message: format!("rule writes undeclared data `{}`", b.data),
            span: Some(b.span),
        })?;
        slots[*slot as usize] = v.clone();
    }

    exec(interp, chunk, &mut slots, ctx, prefix, depth)?;

    for (b, slot) in rule.outputs.iter().zip(&chunk.output_slots) {
        store.insert(b.data.clone(), slots[*slot as usize].clone());
    }
    Ok(())
}

/// The dispatch loop.
fn exec(
    interp: &Interpreter,
    chunk: &Chunk,
    slots: &mut [Value],
    ctx: &mut ExecCtx<'_>,
    prefix: &str,
    depth: usize,
) -> Result<(), RuntimeError> {
    let mut regs = vec![0.0f64; chunk.n_regs as usize];
    let code = &chunk.code;
    let names = &chunk.names;
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Instr::Const { dst, val } => regs[*dst as usize] = *val,
            Instr::Move { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Instr::LoadSlotNum { dst, slot } => match &slots[*slot as usize] {
                Value::Num(v) => regs[*dst as usize] = *v,
                _ => return Err(err("expected a scalar value")),
            },
            Instr::StoreSlotNum { slot, src } => {
                slots[*slot as usize] = Value::Num(regs[*src as usize]);
            }
            Instr::CopySlot { dst, src } => {
                slots[*dst as usize] = slots[*src as usize].clone();
            }
            Instr::LoadParam { dst, name } => {
                let name = &names[*name as usize];
                let tunable = prefixed(prefix, name);
                match ctx.param(&tunable) {
                    Ok(v) => regs[*dst as usize] = v as f64,
                    Err(_) => return Err(err(format!("unknown variable `{name}`"))),
                }
            }
            Instr::Bin { op, dst, a, b } => {
                let a = regs[*a as usize];
                let b = regs[*b as usize];
                regs[*dst as usize] = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    BinOp::Eq => (a == b) as i64 as f64,
                    BinOp::Ne => (a != b) as i64 as f64,
                    BinOp::Lt => (a < b) as i64 as f64,
                    BinOp::Le => (a <= b) as i64 as f64,
                    BinOp::Gt => (a > b) as i64 as f64,
                    BinOp::Ge => (a >= b) as i64 as f64,
                    // Short-circuit forms never reach the VM; the
                    // compiler lowers them to jumps.
                    BinOp::And | BinOp::Or => unreachable!("lowered to jumps"),
                };
            }
            Instr::Neg { dst, src } => regs[*dst as usize] = -regs[*src as usize],
            Instr::Not { dst, src } => {
                regs[*dst as usize] = if regs[*src as usize] == 0.0 { 1.0 } else { 0.0 };
            }
            Instr::TestNonZero { dst, src } => {
                regs[*dst as usize] = (regs[*src as usize] != 0.0) as i64 as f64;
            }
            Instr::Math1 { f, dst, src } => {
                let v = regs[*src as usize];
                regs[*dst as usize] = match f {
                    MathFn1::Sqrt => v.sqrt(),
                    MathFn1::Abs => v.abs(),
                    MathFn1::Floor => v.floor(),
                    MathFn1::Ceil => v.ceil(),
                    MathFn1::Exp => v.exp(),
                    MathFn1::Log => v.ln(),
                };
            }
            Instr::Math2 { f, dst, a, b } => {
                let a = regs[*a as usize];
                let b = regs[*b as usize];
                regs[*dst as usize] = match f {
                    MathFn2::Min => a.min(b),
                    MathFn2::Max => a.max(b),
                    MathFn2::Pow => a.powf(b),
                };
            }
            Instr::Rand { dst, lo, hi } => {
                let lo = regs[*lo as usize];
                let hi = regs[*hi as usize];
                regs[*dst as usize] = if hi <= lo {
                    lo
                } else {
                    ctx.rng().gen_range(lo..hi)
                };
            }
            Instr::Shape { kind, dst, slot } => {
                let dims = slots[*slot as usize].dims();
                regs[*dst as usize] = match (kind, dims.as_slice()) {
                    (ShapeKind::Len, [n]) => *n as f64,
                    (ShapeKind::Len, [_, c]) => *c as f64,
                    (ShapeKind::Rows, [r, _]) => *r as f64,
                    (ShapeKind::Cols, [_, c]) => *c as f64,
                    (kind, _) => {
                        let name = match kind {
                            ShapeKind::Len => "len",
                            ShapeKind::Rows => "rows",
                            ShapeKind::Cols => "cols",
                        };
                        return Err(err(format!("`{name}` applied to a value of wrong shape")));
                    }
                };
            }
            Instr::LoadIdx1 { dst, slot, idx } => {
                let i = index(regs[*idx as usize])?;
                regs[*dst as usize] = read_element(&slots[*slot as usize], &[i], Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::LoadIdx2 { dst, slot, i, j } => {
                let i = index(regs[*i as usize])?;
                let j = index(regs[*j as usize])?;
                regs[*dst as usize] =
                    read_element(&slots[*slot as usize], &[i, j], Span::new(0, 0))
                        .map_err(|e| err(e.message))?;
            }
            Instr::StoreIdx1 { slot, idx, src } => {
                let i = index(regs[*idx as usize])?;
                let v = regs[*src as usize];
                write_element(&mut slots[*slot as usize], &[i], v, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::StoreIdx2 { slot, i, j, src } => {
                let i = index(regs[*i as usize])?;
                let j = index(regs[*j as usize])?;
                let v = regs[*src as usize];
                write_element(&mut slots[*slot as usize], &[i, j], v, Span::new(0, 0))
                    .map_err(|e| err(e.message))?;
            }
            Instr::Jump { target } => {
                pc = *target;
                continue;
            }
            Instr::JumpIfZero { cond, target } => {
                if regs[*cond as usize] == 0.0 {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfNonZero { cond, target } => {
                if regs[*cond as usize] != 0.0 {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfGe { a, b, target } => {
                if regs[*a as usize] >= regs[*b as usize] {
                    pc = *target;
                    continue;
                }
            }
            Instr::AddImm { dst, imm } => regs[*dst as usize] += *imm,
            Instr::TruncPair { a, b } => {
                // The interpreter converts `for` bounds through i64.
                regs[*a as usize] = regs[*a as usize] as i64 as f64;
                regs[*b as usize] = regs[*b as usize] as i64 as f64;
            }
            Instr::Charge { amount } => ctx.charge(*amount),
            Instr::WhileGuard { counter } => {
                let c = &mut regs[*counter as usize];
                *c += 1.0;
                if *c > 10_000_000.0 {
                    return Err(err("while loop exceeded 10M iterations"));
                }
            }
            Instr::ForEnoughPrep { dst, name } => {
                let full = prefixed(prefix, &names[*name as usize]);
                let iters = ctx.for_enough(&full).map_err(|e| err(format!("{e}")))?;
                regs[*dst as usize] = iters as f64;
            }
            Instr::Choice {
                dst,
                name,
                branches,
            } => {
                let full = prefixed(prefix, &names[*name as usize]);
                let pick = ctx.choice(&full).map_err(|e| err(format!("{e}")))?;
                regs[*dst as usize] = pick.min(*branches as usize - 1) as f64;
            }
            Instr::Switch { src, targets } => {
                pc = targets[regs[*src as usize] as usize];
                continue;
            }
            Instr::CallHost {
                name,
                first,
                rest,
                dst,
            } => {
                let fname = &names[*name as usize];
                // Existence is checked before argument evaluation,
                // like the interpreter's dispatch order.
                let Some(f) = interp.host_fn(fname) else {
                    return Err(err(format!("unknown function `{fname}`")));
                };
                let rest_values: Vec<Value> = rest
                    .iter()
                    .map(|op| operand_value(op, &regs, slots))
                    .collect();
                let mut first_value = match first {
                    FirstArg::Var(s) => slots[*s as usize].clone(),
                    FirstArg::Anon(op) => operand_value(op, &regs, slots),
                };
                ctx.charge(
                    rest_values
                        .iter()
                        .map(|v| v.dims().iter().product::<usize>().max(1))
                        .sum::<usize>() as f64,
                );
                let out = f(&mut first_value, &rest_values)
                    .map_err(|m| err(format!("host `{fname}`: {m}")))?;
                if let FirstArg::Var(s) = first {
                    slots[*s as usize] = first_value;
                }
                slots[*dst as usize] = out;
            }
            Instr::CallTransform { name, args, dst } => {
                let callee_name = &names[*name as usize];
                let callee = interp
                    .program()
                    .transform(callee_name)
                    .expect("callee checked at compile time");
                let mut sub_inputs = HashMap::new();
                for (param, op) in callee.inputs.iter().zip(args) {
                    sub_inputs.insert(param.name.clone(), operand_value(op, &regs, slots));
                }
                let sub_prefix = format!("{prefix}{callee_name}.");
                let outputs =
                    interp.run_prefixed(callee_name, &sub_inputs, ctx, &sub_prefix, depth + 1)?;
                let out_name = &callee.outputs[0].name;
                slots[*dst as usize] = outputs.get(out_name).cloned().ok_or_else(|| {
                    err(format!(
                        "transform `{callee_name}` produced no `{out_name}`"
                    ))
                })?;
            }
            Instr::Return => return Ok(()),
        }
        pc += 1;
    }
    Ok(())
}
