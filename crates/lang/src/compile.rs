//! Lowering from the checked AST to flat register bytecode.
//!
//! The original PetaBricks compiler lowered transforms to generated
//! C++; this reproduction's equivalent is a bytecode pass: each *rule
//! body* compiles once into a [`Chunk`] of register instructions that
//! the dispatch-loop VM ([`crate::vm`]) executes against a
//! `pb_runtime::ExecCtx`. Everything outside rule bodies — dimension
//! resolution, `scaled_by` resampling, the choice-dependency-graph
//! schedule, `rule_<Data>` decision trees — stays in the shared
//! orchestration of [`crate::interp::Interpreter`], so compiled and
//! tree-walking execution resolve tunables identically.
//!
//! The compiler is *semantics-preserving by construction*: evaluation
//! order, short-circuiting, RNG consumption, virtual-cost charging,
//! and tunable lookups mirror the interpreter exactly, so a compiled
//! rule produces bit-identical `Value`s (and virtual cost) to the
//! tree-walker. Constructs the compiler cannot prove safe — chiefly
//! reads of variables only *conditionally* assigned — are rejected
//! with [`CompileError`] and the rule falls back to tree-walking.
//!
//! Machine model: two register banks per rule activation. Scalar
//! temporaries live in a bank of `f64` registers; named locals (rule
//! aliases, `let` bindings, loop variables) and value temporaries
//! (host-call / sub-transform results) live in a bank of
//! [`crate::interp::Value`] slots. Compile-time resolution of names to
//! slot indices is what removes the interpreter's per-access hash
//! lookups and array clones.

use crate::ast::*;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Index into a chunk's scalar (`f64`) register bank.
pub type Reg = u16;

/// Index into a chunk's `Value` slot bank.
pub type Slot = u16;

/// Index into a chunk's interned-name table.
pub type NameIdx = u16;

/// One-argument math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn1 {
    /// `sqrt(x)`
    Sqrt,
    /// `abs(x)`
    Abs,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `exp(x)`
    Exp,
    /// `log(x)` (natural log, like the interpreter)
    Log,
}

/// Two-argument math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn2 {
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `pow(a, b)`
    Pow,
}

/// Shape queries on arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// `len(a)`: length of a 1-D array, columns of a 2-D array.
    Len,
    /// `rows(m)`
    Rows,
    /// `cols(m)`
    Cols,
}

/// A value source: either a scalar register or a `Value` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Scalar register (wrapped into `Value::Num` where a `Value` is
    /// needed).
    Reg(Reg),
    /// Value slot (cloned where an owned `Value` is needed).
    Slot(Slot),
}

/// The first argument of a host call, which may be mutated in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstArg {
    /// A named local: cloned out, passed `&mut`, written back — the
    /// interpreter's aliasing semantics.
    Var(Slot),
    /// Any other expression: evaluated, passed `&mut`, discarded.
    Anon(Operand),
}

/// A register-machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `regs[dst] = val`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate.
        val: f64,
    },
    /// `regs[dst] = regs[src]`
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `regs[dst] = slots[slot].as_num()?` — errors on arrays.
    LoadSlotNum {
        /// Destination register.
        dst: Reg,
        /// Source slot.
        slot: Slot,
    },
    /// `slots[slot] = Value::Num(regs[src])`
    StoreSlotNum {
        /// Destination slot.
        slot: Slot,
        /// Source register.
        src: Reg,
    },
    /// `slots[dst] = slots[src].clone()`
    CopySlot {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
    },
    /// `regs[dst] = ctx.param(prefix + names[name]) as f64` — the
    /// interpreter's fallback for names not in scope (accuracy
    /// variables and other tunables); errors like it on unknowns.
    LoadParam {
        /// Destination register.
        dst: Reg,
        /// Interned tunable name.
        name: NameIdx,
    },
    /// Non-short-circuit binary op (`And`/`Or` compile to jumps).
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `regs[dst] = -regs[src]`
    Neg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `regs[dst] = (regs[src] == 0.0) as f64`
    Not {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `regs[dst] = (regs[src] != 0.0) as f64`
    TestNonZero {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// One-argument math builtin.
    Math1 {
        /// Which function.
        f: MathFn1,
        /// Destination register.
        dst: Reg,
        /// Argument register.
        src: Reg,
    },
    /// Two-argument math builtin.
    Math2 {
        /// Which function.
        f: MathFn2,
        /// Destination register.
        dst: Reg,
        /// First argument.
        a: Reg,
        /// Second argument.
        b: Reg,
    },
    /// `rand(lo, hi)` with the interpreter's exact semantics: `lo`
    /// when `hi <= lo` (no RNG draw), else one uniform draw.
    Rand {
        /// Destination register.
        dst: Reg,
        /// Lower bound register.
        lo: Reg,
        /// Upper bound register.
        hi: Reg,
    },
    /// `len` / `rows` / `cols` of a slot.
    Shape {
        /// Which query.
        kind: ShapeKind,
        /// Destination register.
        dst: Reg,
        /// The array slot.
        slot: Slot,
    },
    /// 1-D element read (bounds-checked).
    LoadIdx1 {
        /// Destination register.
        dst: Reg,
        /// Array slot.
        slot: Slot,
        /// Index register (validated and truncated like the
        /// interpreter's `eval_index`).
        idx: Reg,
    },
    /// 2-D element read (bounds-checked).
    LoadIdx2 {
        /// Destination register.
        dst: Reg,
        /// Array slot.
        slot: Slot,
        /// Row index register.
        i: Reg,
        /// Column index register.
        j: Reg,
    },
    /// 1-D element write (bounds-checked).
    StoreIdx1 {
        /// Array slot.
        slot: Slot,
        /// Index register.
        idx: Reg,
        /// Source register.
        src: Reg,
    },
    /// 2-D element write (bounds-checked).
    StoreIdx2 {
        /// Array slot.
        slot: Slot,
        /// Row index register.
        i: Reg,
        /// Column index register.
        j: Reg,
        /// Source register.
        src: Reg,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Jump when `regs[cond] == 0.0`.
    JumpIfZero {
        /// Condition register.
        cond: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Jump when `regs[cond] != 0.0`.
    JumpIfNonZero {
        /// Condition register.
        cond: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Jump when `regs[a] >= regs[b]` (loop exits).
    JumpIfGe {
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// `regs[dst] += imm` (loop increments).
    AddImm {
        /// Register updated in place.
        dst: Reg,
        /// Immediate addend.
        imm: f64,
    },
    /// Truncates both registers toward zero through `i64`, mirroring
    /// the interpreter's `for`-bound conversion.
    TruncPair {
        /// Lower-bound register.
        a: Reg,
        /// Upper-bound register.
        b: Reg,
    },
    /// `ctx.charge(amount)` — one unit per statement, like the
    /// interpreter's `exec_stmt`.
    Charge {
        /// Virtual-cost units.
        amount: f64,
    },
    /// Increments a loop counter register and errors past the
    /// interpreter's 10M-iteration `while` guard.
    WhileGuard {
        /// Counter register.
        counter: Reg,
    },
    /// `regs[dst] = ctx.for_enough(prefix + names[name]) as f64`
    ForEnoughPrep {
        /// Destination register.
        dst: Reg,
        /// Interned tunable name (`for_enough_<i>`).
        name: NameIdx,
    },
    /// `regs[dst] = ctx.choice(prefix + names[name]).min(branches - 1)`
    Choice {
        /// Destination register.
        dst: Reg,
        /// Interned tunable name (`either_<i>`).
        name: NameIdx,
        /// Number of branches (for clamping, like the interpreter).
        branches: u16,
    },
    /// Indirect jump: `pc = targets[regs[src] as usize]`.
    Switch {
        /// Branch-index register (already clamped by [`Instr::Choice`]).
        src: Reg,
        /// One target per branch.
        targets: Vec<usize>,
    },
    /// Host-function call with the interpreter's exact protocol:
    /// `rest` evaluated first, then `first`; cost charged by `rest`
    /// sizes; mutation written back for [`FirstArg::Var`].
    CallHost {
        /// Interned host-function name (resolved at runtime so hosts
        /// may be registered after compilation).
        name: NameIdx,
        /// The mutable first argument.
        first: FirstArg,
        /// Remaining (read-only) arguments.
        rest: Vec<Operand>,
        /// Slot receiving the call's result `Value`.
        dst: Slot,
    },
    /// Sub-transform call: recurses through the shared executor under
    /// a `<callee>.` tunable prefix.
    CallTransform {
        /// Interned callee transform name.
        name: NameIdx,
        /// Argument values, in callee input order.
        args: Vec<Operand>,
        /// Slot receiving the callee's single output.
        dst: Slot,
    },
    /// Early exit from the rule body (`return;`).
    Return,

    // ---- fused forms -----------------------------------------------
    // Lowering never emits the variants below; the optimizer
    // ([`crate::opt`]) rewrites the dominant dynamic sequences into
    // them. Each is observably equivalent to the sequence it replaces
    // (same value semantics, same error points, same RNG and cost
    // behavior), which is what keeps every `OptLevel` bit-identical to
    // the tree-walking interpreter.
    /// `regs[dst] = regs[a] op imm` — constant-operand arithmetic.
    BinRI {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand immediate.
        imm: f64,
    },
    /// `regs[dst] = imm op regs[b]` — constant-operand arithmetic with
    /// the immediate on the left (needed for non-commutative ops).
    BinIR {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand immediate.
        imm: f64,
        /// Right operand register.
        b: Reg,
    },
    /// Fused compare-then-branch: jump when
    /// `(regs[a] op regs[b]) == jump_if`. `op` is always a comparison.
    JumpCmp {
        /// The comparison operator.
        op: BinOp,
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: Reg,
        /// Branch polarity (`true` fuses `JumpIfNonZero`, `false`
        /// fuses `JumpIfZero`).
        jump_if: bool,
        /// Target instruction index.
        target: usize,
    },
    /// Fused compare-immediate-then-branch: jump when
    /// `(regs[a] op imm) == jump_if`.
    JumpCmpImm {
        /// The comparison operator.
        op: BinOp,
        /// Left comparand register.
        a: Reg,
        /// Right comparand immediate.
        imm: f64,
        /// Branch polarity.
        jump_if: bool,
        /// Target instruction index.
        target: usize,
    },
    /// Fused `LoadSlotNum` + binop + `StoreSlotNum` with an immediate
    /// operand: `slots[dst] = Num(num(slots[src]) op imm)` (operands
    /// swapped when `imm_on_left`). Errors exactly like the
    /// `LoadSlotNum` it absorbs when `src` holds a non-scalar.
    SlotUpdImm {
        /// The operator.
        op: BinOp,
        /// Destination slot.
        dst: Slot,
        /// Source slot (must hold a scalar).
        src: Slot,
        /// Immediate operand.
        imm: f64,
        /// Whether the immediate is the left operand.
        imm_on_left: bool,
    },
    /// Fused `LoadSlotNum` + binop + `StoreSlotNum` with a register
    /// operand: `slots[dst] = Num(num(slots[src]) op regs[b])`.
    SlotUpdReg {
        /// The operator.
        op: BinOp,
        /// Destination slot.
        dst: Slot,
        /// Source slot (must hold a scalar; the left operand).
        src: Slot,
        /// Right operand register.
        b: Reg,
    },
    /// Fused arithmetic-into-element-store:
    /// `slots[slot][regs[idx]] = regs[a] op regs[b]` — the `Bin` +
    /// `StoreIdx1` pair of array-update loop bodies. Bounds checks and
    /// error behavior match the `StoreIdx1` it absorbs.
    BinStoreIdx1 {
        /// The operator.
        op: BinOp,
        /// Destination array slot.
        slot: Slot,
        /// Index register.
        idx: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// Fused loop back-edge: `regs[dst] += imm; pc = target` — the
    /// `AddImm` + `Jump` pair every counted loop executes per
    /// iteration.
    AddImmJump {
        /// Counter register updated in place.
        dst: Reg,
        /// Immediate addend.
        imm: f64,
        /// Jump target (the loop head).
        target: usize,
    },
    // ---- specialized forms -----------------------------------------
    // Emitted only by the facts-directed `specialize` pass at
    // [`crate::opt::OptLevel::O3`]. Each unchecked form carries a
    // cheap runtime guard (`0 <= idx < len`, exact float compare) and
    // falls back to the checked form's exact dispatch when the guard
    // fails, so error points, messages, and results stay bit-identical
    // to the form it replaces even if the facts were over-optimistic.
    /// `LoadIdx1` specialized for a facts-proven `arr1` slot with an
    /// int-kind index: in-bounds indices skip the validate/truncate
    /// path.
    LoadIdx1U {
        /// Destination register.
        dst: Reg,
        /// Array slot (facts: rank-1 array).
        slot: Slot,
        /// Index register (facts: int kind).
        idx: Reg,
    },
    /// `LoadIdx2` specialized for a facts-proven `arr2` slot.
    LoadIdx2U {
        /// Destination register.
        dst: Reg,
        /// Array slot (facts: rank-2 array).
        slot: Slot,
        /// Row index register.
        i: Reg,
        /// Column index register.
        j: Reg,
    },
    /// `StoreIdx1` specialized for a facts-proven `arr1` slot.
    StoreIdx1U {
        /// Array slot (facts: rank-1 array).
        slot: Slot,
        /// Index register.
        idx: Reg,
        /// Source register.
        src: Reg,
    },
    /// `StoreIdx2` specialized for a facts-proven `arr2` slot.
    StoreIdx2U {
        /// Array slot (facts: rank-2 array).
        slot: Slot,
        /// Row index register.
        i: Reg,
        /// Column index register.
        j: Reg,
        /// Source register.
        src: Reg,
    },
    /// `BinStoreIdx1` specialized for a facts-proven `arr1` slot.
    BinStoreIdx1U {
        /// The operator.
        op: BinOp,
        /// Destination array slot (facts: rank-1 array).
        slot: Slot,
        /// Index register.
        idx: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// A `Shape` read hoisted out of a loop body into its preheader by
    /// the specializer. Dispatch is identical to [`Instr::Shape`]; the
    /// distinct opcode lets the verifier demand the zero-trip guard
    /// that must precede a hoisted run, and profiling count hoists.
    ShapeHoisted {
        /// Which query.
        kind: ShapeKind,
        /// Destination register.
        dst: Reg,
        /// The array slot.
        slot: Slot,
    },
    /// Placeholder left by optimizer rewrites; compaction removes every
    /// `Nop` before a chunk reaches the VM (the VM still executes it as
    /// a no-op for robustness).
    Nop,
}

/// Number of distinct opcodes ([`Instr`] variants). Profiling counter
/// tables are sized to this.
pub const N_OPCODES: usize = 47;

/// Stable lower-snake names for opcode indices, in declaration order
/// (`OPCODE_NAMES[i.opcode_index()]` names instruction `i`).
pub const OPCODE_NAMES: [&str; N_OPCODES] = [
    "const",
    "move",
    "load_slot_num",
    "store_slot_num",
    "copy_slot",
    "load_param",
    "bin",
    "neg",
    "not",
    "test_non_zero",
    "math1",
    "math2",
    "rand",
    "shape",
    "load_idx1",
    "load_idx2",
    "store_idx1",
    "store_idx2",
    "jump",
    "jump_if_zero",
    "jump_if_non_zero",
    "jump_if_ge",
    "add_imm",
    "trunc_pair",
    "charge",
    "while_guard",
    "for_enough_prep",
    "choice",
    "switch",
    "call_host",
    "call_transform",
    "return",
    "bin_ri",
    "bin_ir",
    "jump_cmp",
    "jump_cmp_imm",
    "slot_upd_imm",
    "slot_upd_reg",
    "bin_store_idx1",
    "add_imm_jump",
    "load_idx1_u",
    "load_idx2_u",
    "store_idx1_u",
    "store_idx2_u",
    "bin_store_idx1_u",
    "shape_hoisted",
    "nop",
];

/// Whether opcode index `idx` is a fused superinstruction introduced
/// by the optimizer ([`crate::opt`]): profiling counts of these are
/// the VM's "fusion hits".
pub fn opcode_is_fused(idx: usize) -> bool {
    const BIN_RI: usize = 32;
    const ADD_IMM_JUMP: usize = 39;
    (BIN_RI..=ADD_IMM_JUMP).contains(&idx)
}

/// Whether opcode index `idx` is a specialized form introduced by the
/// facts-directed specializer ([`crate::opt`] at `O3`): profiling
/// counts of these are the VM's "specialization hits".
pub fn opcode_is_specialized(idx: usize) -> bool {
    const LOAD_IDX1_U: usize = 40;
    const SHAPE_HOISTED: usize = 45;
    (LOAD_IDX1_U..=SHAPE_HOISTED).contains(&idx)
}

impl Instr {
    /// Dense opcode index in declaration order, `0..N_OPCODES`. Used
    /// by the VM's profiling hooks to index pre-sized counter tables.
    pub fn opcode_index(&self) -> usize {
        match self {
            Instr::Const { .. } => 0,
            Instr::Move { .. } => 1,
            Instr::LoadSlotNum { .. } => 2,
            Instr::StoreSlotNum { .. } => 3,
            Instr::CopySlot { .. } => 4,
            Instr::LoadParam { .. } => 5,
            Instr::Bin { .. } => 6,
            Instr::Neg { .. } => 7,
            Instr::Not { .. } => 8,
            Instr::TestNonZero { .. } => 9,
            Instr::Math1 { .. } => 10,
            Instr::Math2 { .. } => 11,
            Instr::Rand { .. } => 12,
            Instr::Shape { .. } => 13,
            Instr::LoadIdx1 { .. } => 14,
            Instr::LoadIdx2 { .. } => 15,
            Instr::StoreIdx1 { .. } => 16,
            Instr::StoreIdx2 { .. } => 17,
            Instr::Jump { .. } => 18,
            Instr::JumpIfZero { .. } => 19,
            Instr::JumpIfNonZero { .. } => 20,
            Instr::JumpIfGe { .. } => 21,
            Instr::AddImm { .. } => 22,
            Instr::TruncPair { .. } => 23,
            Instr::Charge { .. } => 24,
            Instr::WhileGuard { .. } => 25,
            Instr::ForEnoughPrep { .. } => 26,
            Instr::Choice { .. } => 27,
            Instr::Switch { .. } => 28,
            Instr::CallHost { .. } => 29,
            Instr::CallTransform { .. } => 30,
            Instr::Return => 31,
            Instr::BinRI { .. } => 32,
            Instr::BinIR { .. } => 33,
            Instr::JumpCmp { .. } => 34,
            Instr::JumpCmpImm { .. } => 35,
            Instr::SlotUpdImm { .. } => 36,
            Instr::SlotUpdReg { .. } => 37,
            Instr::BinStoreIdx1 { .. } => 38,
            Instr::AddImmJump { .. } => 39,
            Instr::LoadIdx1U { .. } => 40,
            Instr::LoadIdx2U { .. } => 41,
            Instr::StoreIdx1U { .. } => 42,
            Instr::StoreIdx2U { .. } => 43,
            Instr::BinStoreIdx1U { .. } => 44,
            Instr::ShapeHoisted { .. } => 45,
            Instr::Nop => 46,
        }
    }
}

/// A compiled rule body.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// `transform::rN` — identifies the rule this chunk compiles, for
    /// profiling attribution (chunks have no other back-pointer).
    pub label: String,
    /// The instructions.
    pub code: Vec<Instr>,
    /// Interned names (tunables, host functions, callees).
    pub names: Vec<String>,
    /// Scalar register count.
    pub n_regs: u16,
    /// `Value` slot count (named locals first, then temporaries).
    pub n_slots: u16,
    /// Slot of each rule *input* binding alias, in declaration order.
    pub input_slots: Vec<Slot>,
    /// Slot of each rule *output* binding alias, in declaration order.
    pub output_slots: Vec<Slot>,
    /// The optimization level this chunk was produced at (lowering
    /// emits [`crate::opt::OptLevel::O0`]; [`crate::opt::optimize`]
    /// stamps its level). The VM runs `O0` chunks on a compatibility
    /// path that approximates the pre-optimizer execution profile
    /// (fresh banks, per-invocation name resolution), so benchmarks
    /// retain a "current VM" baseline.
    pub opt: crate::opt::OptLevel,
}

/// Why a rule could not be compiled (it falls back to tree-walking).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not compilable: {}", self.reason)
    }
}

impl std::error::Error for CompileError {}

/// A compiled transform: one optional chunk per rule (in rule order).
#[derive(Debug, Clone)]
pub struct CompiledTransform {
    /// `Some(chunk)` for compiled rules, `None` where the rule falls
    /// back to the tree-walking interpreter (with the reason).
    pub rules: Vec<Result<Chunk, CompileError>>,
    /// Inferred [`crate::analysis::ChunkFacts`] per rule (`None` where
    /// the rule did not compile) — the typed-IR seed. Recomputed from
    /// each facts' stored entry state when the chunks are
    /// re-optimized.
    pub facts: Vec<Option<crate::analysis::ChunkFacts>>,
}

/// All compiled transforms of a program, keyed by transform name.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    transforms: HashMap<String, CompiledTransform>,
}

impl CompiledProgram {
    /// The chunk for `transform`'s rule `rule_idx`, if it compiled.
    pub fn chunk(&self, transform: &str, rule_idx: usize) -> Option<&Chunk> {
        self.transforms
            .get(transform)?
            .rules
            .get(rule_idx)?
            .as_ref()
            .ok()
    }

    /// The compiled form of one transform.
    pub fn transform(&self, name: &str) -> Option<&CompiledTransform> {
        self.transforms.get(name)
    }

    /// The inferred facts for `transform`'s rule `rule_idx`, if that
    /// rule compiled.
    pub fn facts(&self, transform: &str, rule_idx: usize) -> Option<&crate::analysis::ChunkFacts> {
        self.transforms
            .get(transform)?
            .facts
            .get(rule_idx)?
            .as_ref()
    }

    /// Runs the optimizer pipeline ([`crate::opt`]) over every compiled
    /// chunk. Every [`crate::opt::OptLevel`] is observably identical to
    /// the unoptimized bytecode (and the tree-walker).
    #[must_use]
    pub fn optimized(mut self, level: crate::opt::OptLevel) -> Self {
        if level != crate::opt::OptLevel::O0 {
            for t in self.transforms.values_mut() {
                for (chunk, facts) in t.rules.iter_mut().zip(t.facts.iter_mut()) {
                    if let Ok(chunk) = chunk {
                        // The stored entry state seeds the O3
                        // specializer (hoisting in particular needs
                        // declaration-level array facts).
                        let entry: Option<Vec<crate::analysis::AbsValue>> =
                            facts.as_ref().map(|f| f.entry_slots.clone());
                        *chunk = crate::opt::optimize_with_entry(chunk, level, entry.as_deref());
                        // Re-infer over the optimized code from the same
                        // entry state, so the facts always describe the
                        // chunk that will actually dispatch.
                        *facts = Some(crate::analysis::analyze_chunk(
                            chunk,
                            facts
                                .as_ref()
                                .map(|f| f.entry_slots.as_slice())
                                .unwrap_or(&[]),
                        ));
                    }
                }
            }
        }
        self
    }

    /// `(compiled, total)` rule counts across the program.
    pub fn coverage(&self) -> (usize, usize) {
        let mut compiled = 0;
        let mut total = 0;
        for t in self.transforms.values() {
            total += t.rules.len();
            compiled += t.rules.iter().filter(|r| r.is_ok()).count();
        }
        (compiled, total)
    }
}

/// Compiles every rule of every transform; rules that use constructs
/// the compiler does not cover carry their [`CompileError`] and run on
/// the interpreter instead.
pub fn compile_program(program: &Program) -> CompiledProgram {
    let mut transforms = HashMap::new();
    for t in &program.transforms {
        let rules: Vec<Result<Chunk, CompileError>> = t
            .rules
            .iter()
            .map(|rule| compile_rule(program, t, rule))
            .collect();
        let facts = t
            .rules
            .iter()
            .zip(&rules)
            .map(|(rule, compiled)| {
                compiled.as_ref().ok().map(|chunk| {
                    let entry = crate::analysis::entry_slots(t, rule, chunk);
                    crate::analysis::analyze_chunk(chunk, &entry)
                })
            })
            .collect();
        transforms.insert(t.name.clone(), CompiledTransform { rules, facts });
    }
    CompiledProgram { transforms }
}

/// Compiles a single rule body.
///
/// # Errors
///
/// Returns [`CompileError`] when the body uses a construct whose
/// compiled semantics could diverge from the interpreter (see the
/// module docs); callers fall back to tree-walking.
pub fn compile_rule(
    program: &Program,
    transform: &Transform,
    rule: &Rule,
) -> Result<Chunk, CompileError> {
    Compiler::new(program, transform, rule).compile(rule)
}

fn bail<T>(reason: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        reason: reason.into(),
    })
}

struct Compiler<'a> {
    program: &'a Program,
    transform: &'a Transform,
    code: Vec<Instr>,
    names: Vec<String>,
    name_idx: HashMap<String, NameIdx>,
    slots: HashMap<String, Slot>,
    /// Number of named slots; only these can be mutated by host calls
    /// (temporaries above them are write-once).
    named_slots: u16,
    /// Value-temporary stack pointer (starts just past the named
    /// slots).
    temp_top: u16,
    temp_max: u16,
    /// Scalar-register stack pointer.
    reg_top: u16,
    reg_max: u16,
    /// Names definitely assigned at the current program point.
    assigned: HashSet<String>,
    /// Names assigned on *some* path only — reads of these bail out.
    maybe: HashSet<String>,
}

impl<'a> Compiler<'a> {
    fn new(program: &'a Program, transform: &'a Transform, rule: &'a Rule) -> Self {
        // Pre-pass: allocate one slot per name the rule ever binds, in
        // a stable order (aliases first, then body-locals as found).
        let mut slots = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut note = |name: &str| {
            if !slots.contains_key(name) {
                slots.insert(name.to_owned(), order.len() as Slot);
                order.push(name.to_owned());
            }
        };
        for b in rule.inputs.iter().chain(&rule.outputs) {
            note(&b.alias);
        }
        collect_bound_names(&rule.body, &mut |name| note(name));
        let named_slots = order.len() as u16;

        // Aliases are bound before the body runs.
        let assigned: HashSet<String> = rule
            .inputs
            .iter()
            .chain(&rule.outputs)
            .map(|b| b.alias.clone())
            .collect();

        Compiler {
            program,
            transform,
            code: Vec::new(),
            names: Vec::new(),
            name_idx: HashMap::new(),
            slots,
            named_slots,
            temp_top: named_slots,
            temp_max: named_slots,
            reg_top: 0,
            reg_max: 0,
            assigned,
            maybe: HashSet::new(),
        }
    }

    fn compile(mut self, rule: &Rule) -> Result<Chunk, CompileError> {
        self.block(&rule.body)?;
        let input_slots = rule.inputs.iter().map(|b| self.slots[&b.alias]).collect();
        let output_slots = rule.outputs.iter().map(|b| self.slots[&b.alias]).collect();
        let rule_idx = self
            .transform
            .rules
            .iter()
            .position(|r| std::ptr::eq(r, rule));
        let label = match rule_idx {
            Some(i) => format!("{}::r{i}", self.transform.name),
            None => format!("{}::r?", self.transform.name),
        };
        Ok(Chunk {
            label,
            code: self.code,
            names: self.names,
            n_regs: self.reg_max,
            n_slots: self.temp_max,
            input_slots,
            output_slots,
            opt: crate::opt::OptLevel::O0,
        })
    }

    // ---- machine-state helpers -------------------------------------

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfZero { target: t, .. }
            | Instr::JumpIfNonZero { target: t, .. }
            | Instr::JumpIfGe { target: t, .. } => *t = target,
            other => panic!("patching a non-jump instruction {other:?}"),
        }
    }

    fn intern(&mut self, name: &str) -> NameIdx {
        if let Some(&i) = self.name_idx.get(name) {
            return i;
        }
        let i = self.names.len() as NameIdx;
        self.names.push(name.to_owned());
        self.name_idx.insert(name.to_owned(), i);
        i
    }

    fn alloc_reg(&mut self) -> Result<Reg, CompileError> {
        if self.reg_top == u16::MAX {
            return bail("register bank exhausted");
        }
        let r = self.reg_top;
        self.reg_top += 1;
        self.reg_max = self.reg_max.max(self.reg_top);
        Ok(r)
    }

    fn alloc_temp(&mut self) -> Result<Slot, CompileError> {
        if self.temp_top == u16::MAX {
            return bail("slot bank exhausted");
        }
        let s = self.temp_top;
        self.temp_top += 1;
        self.temp_max = self.temp_max.max(self.temp_top);
        Ok(s)
    }

    // ---- statements ------------------------------------------------

    fn block(&mut self, block: &Block) -> Result<(), CompileError> {
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        // The interpreter charges one unit per executed statement.
        self.emit(Instr::Charge { amount: 1.0 });
        match stmt {
            Stmt::Let { name, value, .. }
            | Stmt::Assign {
                target: LValue::Var(name),
                value,
                ..
            } => {
                let save = (self.reg_top, self.temp_top);
                let src = self.expr_value(value)?;
                let slot = self.slots[name];
                match src {
                    Operand::Reg(r) => {
                        self.emit(Instr::StoreSlotNum { slot, src: r });
                    }
                    Operand::Slot(s) => {
                        self.emit(Instr::CopySlot { dst: slot, src: s });
                    }
                }
                (self.reg_top, self.temp_top) = save;
                self.assigned.insert(name.clone());
                Ok(())
            }
            Stmt::Assign {
                target: LValue::Index { name, indices },
                value,
                ..
            } => {
                let slot = self.read_slot(name)?;
                let save = (self.reg_top, self.temp_top);
                // Interpreter order: value first, then the indices.
                let src = self.expr_scalar(value)?;
                let idx: Vec<Reg> = indices
                    .iter()
                    .map(|e| self.expr_scalar(e))
                    .collect::<Result<_, _>>()?;
                match idx.as_slice() {
                    [i] => self.emit(Instr::StoreIdx1 { slot, idx: *i, src }),
                    [i, j] => self.emit(Instr::StoreIdx2 {
                        slot,
                        i: *i,
                        j: *j,
                        src,
                    }),
                    _ => return bail("index arity beyond 2-D"),
                };
                (self.reg_top, self.temp_top) = save;
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let save = (self.reg_top, self.temp_top);
                let c = self.expr_scalar(cond)?;
                (self.reg_top, self.temp_top) = save;
                let jz = self.emit(Instr::JumpIfZero { cond: c, target: 0 });

                let before = self.assigned.clone();
                self.block(then_block)?;
                let after_then = std::mem::replace(&mut self.assigned, before.clone());

                if let Some(else_block) = else_block {
                    let jend = self.emit(Instr::Jump { target: 0 });
                    let else_at = self.here();
                    self.patch(jz, else_at);
                    self.block(else_block)?;
                    let after_else = std::mem::replace(&mut self.assigned, before);
                    let end = self.here();
                    self.patch(jend, end);
                    self.merge_branch_states(&[after_then, after_else]);
                } else {
                    let end = self.here();
                    self.patch(jz, end);
                    self.merge_branch_states(&[after_then, before]);
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.loop_body_becomes_maybe(body, &[]);
                let save = (self.reg_top, self.temp_top);
                let guard = self.alloc_reg()?;
                self.emit(Instr::Const {
                    dst: guard,
                    val: 0.0,
                });
                let head = self.here();
                let csave = (self.reg_top, self.temp_top);
                let c = self.expr_scalar(cond)?;
                (self.reg_top, self.temp_top) = csave;
                let jz = self.emit(Instr::JumpIfZero { cond: c, target: 0 });
                let before = self.assigned.clone();
                self.block(body)?;
                // The body may run zero times: its bindings are only
                // maybe-assigned afterwards.
                self.assigned = before;
                self.emit(Instr::WhileGuard { counter: guard });
                self.emit(Instr::Jump { target: head });
                let end = self.here();
                self.patch(jz, end);
                (self.reg_top, self.temp_top) = save;
                Ok(())
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                self.loop_body_becomes_maybe(body, &[var]);
                let save = (self.reg_top, self.temp_top);
                let r_lo = {
                    let s = (self.reg_top, self.temp_top);
                    let r = self.expr_scalar(lo)?;
                    (self.reg_top, self.temp_top) = s;
                    let pin = self.alloc_reg()?;
                    self.emit(Instr::Move { dst: pin, src: r });
                    pin
                };
                let r_hi = {
                    let s = (self.reg_top, self.temp_top);
                    let r = self.expr_scalar(hi)?;
                    (self.reg_top, self.temp_top) = s;
                    let pin = self.alloc_reg()?;
                    self.emit(Instr::Move { dst: pin, src: r });
                    pin
                };
                self.emit(Instr::TruncPair { a: r_lo, b: r_hi });
                let var_slot = self.slots[var];
                // The loop variable is definitely bound inside the body.
                let var_was_definite = self.assigned.contains(var);
                self.assigned.insert(var.clone());
                let head = self.here();
                let jge = self.emit(Instr::JumpIfGe {
                    a: r_lo,
                    b: r_hi,
                    target: 0,
                });
                self.emit(Instr::StoreSlotNum {
                    slot: var_slot,
                    src: r_lo,
                });
                let before = self.assigned.clone();
                self.block(body)?;
                // The body may run zero times: its bindings are only
                // maybe-assigned afterwards.
                self.assigned = before;
                self.emit(Instr::AddImm {
                    dst: r_lo,
                    imm: 1.0,
                });
                self.emit(Instr::Jump { target: head });
                let end = self.here();
                self.patch(jge, end);
                (self.reg_top, self.temp_top) = save;
                if !var_was_definite {
                    // An empty range never binds the variable.
                    self.assigned.remove(var);
                    self.maybe.insert(var.clone());
                }
                Ok(())
            }
            Stmt::ForEnough { id, body, .. } => {
                self.loop_body_becomes_maybe(body, &[]);
                let name = self.intern(&format!("for_enough_{id}"));
                let save = (self.reg_top, self.temp_top);
                let iters = self.alloc_reg()?;
                self.emit(Instr::ForEnoughPrep { dst: iters, name });
                let counter = self.alloc_reg()?;
                self.emit(Instr::Const {
                    dst: counter,
                    val: 0.0,
                });
                let head = self.here();
                let jge = self.emit(Instr::JumpIfGe {
                    a: counter,
                    b: iters,
                    target: 0,
                });
                let before = self.assigned.clone();
                self.block(body)?;
                // `for_enough` may run zero iterations.
                self.assigned = before;
                self.emit(Instr::AddImm {
                    dst: counter,
                    imm: 1.0,
                });
                self.emit(Instr::Jump { target: head });
                let end = self.here();
                self.patch(jge, end);
                (self.reg_top, self.temp_top) = save;
                Ok(())
            }
            Stmt::Either { id, branches, .. } => {
                let name = self.intern(&format!("either_{id}"));
                let save = (self.reg_top, self.temp_top);
                let pick = self.alloc_reg()?;
                self.emit(Instr::Choice {
                    dst: pick,
                    name,
                    branches: branches.len() as u16,
                });
                let switch_at = self.emit(Instr::Switch {
                    src: pick,
                    targets: Vec::new(),
                });
                (self.reg_top, self.temp_top) = save;

                let before = self.assigned.clone();
                let mut targets = Vec::with_capacity(branches.len());
                let mut end_jumps = Vec::with_capacity(branches.len());
                let mut branch_states = Vec::with_capacity(branches.len());
                for branch in branches {
                    targets.push(self.here());
                    self.assigned = before.clone();
                    self.block(branch)?;
                    branch_states.push(std::mem::take(&mut self.assigned));
                    end_jumps.push(self.emit(Instr::Jump { target: 0 }));
                }
                let end = self.here();
                for j in end_jumps {
                    self.patch(j, end);
                }
                if let Instr::Switch { targets: t, .. } = &mut self.code[switch_at] {
                    *t = targets;
                }
                self.assigned = before;
                self.merge_branch_states(&branch_states);
                Ok(())
            }
            // Same as the interpreter: verification is disabled during
            // tuning; the checked path lives in `pb_runtime::guarantee`.
            Stmt::VerifyAccuracy { .. } => Ok(()),
            // The interpreter ignores any `return` value expression.
            Stmt::Return { .. } => {
                self.emit(Instr::Return);
                Ok(())
            }
            Stmt::Expr { expr, .. } => {
                let save = (self.reg_top, self.temp_top);
                self.expr_value(expr)?;
                (self.reg_top, self.temp_top) = save;
                Ok(())
            }
        }
    }

    /// After branching control flow, names assigned on *every* path
    /// stay definite; names assigned on only some become `maybe`.
    fn merge_branch_states(&mut self, states: &[HashSet<String>]) {
        let mut union: HashSet<String> = HashSet::new();
        let mut intersection: Option<HashSet<String>> = None;
        for s in states {
            union.extend(s.iter().cloned());
            intersection = Some(match intersection {
                None => s.clone(),
                Some(acc) => acc.intersection(s).cloned().collect(),
            });
        }
        let intersection = intersection.unwrap_or_default();
        for name in union {
            if intersection.contains(&name) {
                self.assigned.insert(name);
            } else if !self.assigned.contains(&name) {
                self.maybe.insert(name);
            }
        }
    }

    /// Zero-iteration loops leave body bindings unbound, so anything a
    /// loop body assigns (minus `always_bound` — the loop variable) is
    /// only maybe-assigned from the loop onward, including *within*
    /// the body before its own assignment runs.
    fn loop_body_becomes_maybe(&mut self, body: &Block, always_bound: &[&String]) {
        let mut bound = Vec::new();
        collect_bound_names(body, &mut |name| bound.push(name.to_owned()));
        for name in bound {
            if !self.assigned.contains(&name) && !always_bound.iter().any(|a| **a == name) {
                self.maybe.insert(name);
            }
        }
    }

    /// Resolves a name that must denote a bound local (array ops).
    fn read_slot(&mut self, name: &str) -> Result<Slot, CompileError> {
        if self.assigned.contains(name) {
            Ok(self.slots[name])
        } else {
            bail(format!("`{name}` is not definitely assigned here"))
        }
    }

    // ---- expressions -----------------------------------------------

    fn expr_scalar(&mut self, expr: &Expr) -> Result<Reg, CompileError> {
        match expr {
            Expr::Number(v, _) => {
                let dst = self.alloc_reg()?;
                self.emit(Instr::Const { dst, val: *v });
                Ok(dst)
            }
            Expr::Var(name, _) => {
                let dst = self.alloc_reg()?;
                if self.assigned.contains(name) {
                    let slot = self.slots[name];
                    self.emit(Instr::LoadSlotNum { dst, slot });
                } else if self.maybe.contains(name) {
                    return bail(format!("`{name}` is only conditionally assigned"));
                } else {
                    // The interpreter's fallback: a prefixed tunable.
                    let idx = self.intern(name);
                    self.emit(Instr::LoadParam { dst, name: idx });
                }
                Ok(dst)
            }
            Expr::Index { name, indices, .. } => {
                if self.maybe.contains(name) {
                    return bail(format!("array `{name}` is only conditionally assigned"));
                }
                let slot = self.read_slot(name)?;
                let save = self.reg_top;
                let idx: Vec<Reg> = indices
                    .iter()
                    .map(|e| self.expr_scalar(e))
                    .collect::<Result<_, _>>()?;
                self.reg_top = save;
                let dst = self.alloc_reg()?;
                match idx.as_slice() {
                    [i] => self.emit(Instr::LoadIdx1 { dst, slot, idx: *i }),
                    [i, j] => self.emit(Instr::LoadIdx2 {
                        dst,
                        slot,
                        i: *i,
                        j: *j,
                    }),
                    _ => return bail("index arity beyond 2-D"),
                };
                Ok(dst)
            }
            Expr::Unary { op, operand, .. } => {
                let save = self.reg_top;
                let src = self.expr_scalar(operand)?;
                self.reg_top = save;
                let dst = self.alloc_reg()?;
                match op {
                    UnOp::Neg => self.emit(Instr::Neg { dst, src }),
                    UnOp::Not => self.emit(Instr::Not { dst, src }),
                };
                Ok(dst)
            }
            Expr::Binary {
                op: op @ (BinOp::And | BinOp::Or),
                lhs,
                rhs,
                ..
            } => {
                // Short-circuit, preserving the interpreter's RNG and
                // side-effect order exactly.
                let save = self.reg_top;
                let a = self.expr_scalar(lhs)?;
                self.reg_top = save;
                let dst = self.alloc_reg()?;
                let skip = match op {
                    BinOp::And => self.emit(Instr::JumpIfZero { cond: a, target: 0 }),
                    _ => self.emit(Instr::JumpIfNonZero { cond: a, target: 0 }),
                };
                let save2 = self.reg_top;
                let b = self.expr_scalar(rhs)?;
                self.reg_top = save2;
                self.emit(Instr::TestNonZero { dst, src: b });
                let jend = self.emit(Instr::Jump { target: 0 });
                let short = self.here();
                self.patch(skip, short);
                self.emit(Instr::Const {
                    dst,
                    val: if *op == BinOp::And { 0.0 } else { 1.0 },
                });
                let end = self.here();
                self.patch(jend, end);
                Ok(dst)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let save = self.reg_top;
                let a = self.expr_scalar(lhs)?;
                let b = self.expr_scalar(rhs)?;
                self.reg_top = save;
                let dst = self.alloc_reg()?;
                self.emit(Instr::Bin { op: *op, dst, a, b });
                Ok(dst)
            }
            Expr::Call { .. } => match self.call(expr)? {
                Operand::Reg(r) => Ok(r),
                Operand::Slot(s) => {
                    let dst = self.alloc_reg()?;
                    self.emit(Instr::LoadSlotNum { dst, slot: s });
                    Ok(dst)
                }
            },
        }
    }

    fn expr_value(&mut self, expr: &Expr) -> Result<Operand, CompileError> {
        match expr {
            Expr::Var(name, _) if self.assigned.contains(name) => {
                Ok(Operand::Slot(self.slots[name]))
            }
            Expr::Call { .. } => self.call(expr),
            other => Ok(Operand::Reg(self.expr_scalar(other)?)),
        }
    }

    /// Call instructions read their slot operands when they execute,
    /// but the interpreter captures each argument *value* at its
    /// evaluation point. Those differ only when a later argument's
    /// code mutates a named slot (a nested host call). In that case,
    /// snapshot the slot into a write-once temporary here, at the
    /// evaluation point.
    fn snapshot_if_mutable_later(
        &mut self,
        op: Operand,
        later: &[Expr],
        also: &[Expr],
    ) -> Result<Operand, CompileError> {
        let Operand::Slot(s) = op else {
            return Ok(op);
        };
        if s >= self.named_slots {
            // Temporaries are write-once; no later code can change them.
            return Ok(op);
        }
        let vulnerable = later
            .iter()
            .chain(also)
            .any(|e| self.contains_mutating_call(e));
        if !vulnerable {
            return Ok(op);
        }
        let snap = self.alloc_temp()?;
        self.emit(Instr::CopySlot { dst: snap, src: s });
        Ok(Operand::Slot(snap))
    }

    /// Whether evaluating `expr` can mutate a named slot — i.e. it
    /// contains a host call anywhere (builtins are pure; sub-transform
    /// calls cannot touch the caller's scope, but their arguments are
    /// scanned recursively).
    fn contains_mutating_call(&self, expr: &Expr) -> bool {
        match expr {
            Expr::Call { name, args, .. } => {
                let builtin = matches!(
                    name.as_str(),
                    "sqrt"
                        | "abs"
                        | "floor"
                        | "ceil"
                        | "exp"
                        | "log"
                        | "min"
                        | "max"
                        | "pow"
                        | "rand"
                        | "len"
                        | "rows"
                        | "cols"
                );
                let sub_transform =
                    self.program.transform(name).is_some() && *name != self.transform.name;
                (!builtin && !sub_transform) || args.iter().any(|a| self.contains_mutating_call(a))
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.contains_mutating_call(lhs) || self.contains_mutating_call(rhs)
            }
            Expr::Unary { operand, .. } => self.contains_mutating_call(operand),
            Expr::Index { indices, .. } => indices.iter().any(|e| self.contains_mutating_call(e)),
            Expr::Number(..) | Expr::Var(..) => false,
        }
    }

    fn call(&mut self, expr: &Expr) -> Result<Operand, CompileError> {
        let Expr::Call { name, args, .. } = expr else {
            unreachable!("call() only receives Expr::Call");
        };

        // Builtins first, like the interpreter.
        let math1 = match name.as_str() {
            "sqrt" => Some(MathFn1::Sqrt),
            "abs" => Some(MathFn1::Abs),
            "floor" => Some(MathFn1::Floor),
            "ceil" => Some(MathFn1::Ceil),
            "exp" => Some(MathFn1::Exp),
            "log" => Some(MathFn1::Log),
            _ => None,
        };
        if let Some(f) = math1 {
            if args.is_empty() {
                return bail(format!("`{name}` needs an argument"));
            }
            let save = self.reg_top;
            let src = self.expr_scalar(&args[0])?;
            self.reg_top = save;
            let dst = self.alloc_reg()?;
            self.emit(Instr::Math1 { f, dst, src });
            return Ok(Operand::Reg(dst));
        }
        let math2 = match name.as_str() {
            "min" => Some(MathFn2::Min),
            "max" => Some(MathFn2::Max),
            "pow" => Some(MathFn2::Pow),
            _ => None,
        };
        if let Some(f) = math2 {
            if args.len() < 2 {
                return bail(format!("`{name}` needs two arguments"));
            }
            let save = self.reg_top;
            let a = self.expr_scalar(&args[0])?;
            let b = self.expr_scalar(&args[1])?;
            self.reg_top = save;
            let dst = self.alloc_reg()?;
            self.emit(Instr::Math2 { f, dst, a, b });
            return Ok(Operand::Reg(dst));
        }
        if name == "rand" {
            if args.len() < 2 {
                return bail("`rand` needs two arguments");
            }
            let save = self.reg_top;
            let lo = self.expr_scalar(&args[0])?;
            let hi = self.expr_scalar(&args[1])?;
            self.reg_top = save;
            let dst = self.alloc_reg()?;
            self.emit(Instr::Rand { dst, lo, hi });
            return Ok(Operand::Reg(dst));
        }
        if let Some(kind) = match name.as_str() {
            "len" => Some(ShapeKind::Len),
            "rows" => Some(ShapeKind::Rows),
            "cols" => Some(ShapeKind::Cols),
            _ => None,
        } {
            // Shape queries on anything but a bound local value are
            // rare and left to the interpreter.
            let Some(Expr::Var(arg, _)) = args.first() else {
                return bail(format!("`{name}` of a non-variable expression"));
            };
            if self.maybe.contains(arg) {
                return bail(format!("array `{arg}` is only conditionally assigned"));
            }
            let slot = self.read_slot(arg)?;
            let dst = self.alloc_reg()?;
            self.emit(Instr::Shape { kind, dst, slot });
            return Ok(Operand::Reg(dst));
        }

        // Sub-transform call.
        if self.program.transform(name).is_some() && *name != self.transform.name {
            let callee = self.program.transform(name).expect("looked up above");
            if callee.outputs.len() != 1 {
                return bail(format!("callee `{name}` must have exactly one output"));
            }
            if args.len() != callee.inputs.len() {
                return bail(format!("callee `{name}` arity mismatch"));
            }
            let save = (self.reg_top, self.temp_top);
            let mut ops = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                let op = self.expr_value(a)?;
                ops.push(self.snapshot_if_mutable_later(op, &args[i + 1..], &[])?);
            }
            (self.reg_top, self.temp_top) = save;
            let dst = self.alloc_temp()?;
            let name = self.intern(name);
            self.emit(Instr::CallTransform {
                name,
                args: ops,
                dst,
            });
            return Ok(Operand::Slot(dst));
        }

        // Host function (resolved by name at run time, so functions
        // registered after compilation still work — and unknown names
        // fail with the interpreter's error).
        if args.is_empty() {
            return bail(format!("host call `{name}` without arguments"));
        }
        let save = (self.reg_top, self.temp_top);
        // Interpreter order: rest arguments first, then the first.
        // (The first argument of a Var-named host call is cloned at
        // invocation time by the interpreter too, so only the rest
        // arguments need evaluation-point snapshots.)
        let anon_first: &[Expr] = match &args[0] {
            Expr::Var(..) => &[],
            other => std::slice::from_ref(other),
        };
        let mut rest = Vec::with_capacity(args.len() - 1);
        for (i, a) in args[1..].iter().enumerate() {
            let op = self.expr_value(a)?;
            rest.push(self.snapshot_if_mutable_later(op, &args[i + 2..], anon_first)?);
        }
        let first = match &args[0] {
            Expr::Var(n, _) => {
                if self.maybe.contains(n) {
                    return bail(format!("`{n}` is only conditionally assigned"));
                }
                if !self.assigned.contains(n) {
                    // The interpreter reports `unknown variable` here;
                    // keep that behavior on the fallback path.
                    return bail(format!("host call first argument `{n}` is unbound"));
                }
                FirstArg::Var(self.slots[n])
            }
            other => FirstArg::Anon(self.expr_value(other)?),
        };
        (self.reg_top, self.temp_top) = save;
        let dst = self.alloc_temp()?;
        let name = self.intern(name);
        self.emit(Instr::CallHost {
            name,
            first,
            rest,
            dst,
        });
        Ok(Operand::Slot(dst))
    }
}

/// Names bound by `let`, scalar assignment, or `for` loops anywhere in
/// a block (the set of body-local slots).
fn collect_bound_names(block: &Block, note: &mut impl FnMut(&str)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { name, .. } => note(name),
            Stmt::Assign {
                target: LValue::Var(name),
                ..
            } => note(name),
            Stmt::Assign { .. }
            | Stmt::VerifyAccuracy { .. }
            | Stmt::Return { .. }
            | Stmt::Expr { .. } => {}
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                collect_bound_names(then_block, note);
                if let Some(e) = else_block {
                    collect_bound_names(e, note);
                }
            }
            Stmt::While { body, .. } | Stmt::ForEnough { body, .. } => {
                collect_bound_names(body, note);
            }
            Stmt::For { var, body, .. } => {
                note(var);
                collect_bound_names(body, note);
            }
            Stmt::Either { branches, .. } => {
                for b in branches {
                    collect_bound_names(b, note);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile_first_rule(src: &str) -> Result<Chunk, CompileError> {
        let program = parse_program(src).unwrap();
        let t = &program.transforms[0];
        compile_rule(&program, t, &t.rules[0])
    }

    fn chunk(src: &str) -> Chunk {
        compile_first_rule(src).expect("rule should compile")
    }

    fn has(chunk: &Chunk, pred: impl Fn(&Instr) -> bool) -> bool {
        chunk.code.iter().any(pred)
    }

    #[test]
    fn lowers_let_assign_and_arithmetic() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    let x = 1 + 2 * a[0];
                    o[0] = x - 3;
                }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::LoadIdx1 { .. })));
        assert!(has(&c, |i| matches!(i, Instr::Bin { op: BinOp::Mul, .. })));
        assert!(has(&c, |i| matches!(i, Instr::StoreSlotNum { .. })));
        assert!(has(&c, |i| matches!(i, Instr::StoreIdx1 { .. })));
        // One charge per statement.
        assert_eq!(
            c.code
                .iter()
                .filter(|i| matches!(i, Instr::Charge { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn lowers_2d_indexing() {
        let c = chunk(
            r#"transform t from M[r, c] to Out[r, c] {
                to (Out o) from (M m) { o[1, 2] = m[0, 1]; }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::LoadIdx2 { .. })));
        assert!(has(&c, |i| matches!(i, Instr::StoreIdx2 { .. })));
    }

    #[test]
    fn lowers_control_flow() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for (i in 0 .. len(a)) {
                        if (a[i] > 0) { o[i] = 1; } else { o[i] = 0 - 1; }
                    }
                    let j = 0;
                    while (j < len(a)) { j = j + 1; }
                }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::TruncPair { .. })));
        assert!(has(&c, |i| matches!(i, Instr::JumpIfGe { .. })));
        assert!(has(&c, |i| matches!(i, Instr::JumpIfZero { .. })));
        assert!(has(&c, |i| matches!(i, Instr::WhileGuard { .. })));
        assert!(has(&c, |i| matches!(
            i,
            Instr::Shape {
                kind: ShapeKind::Len,
                ..
            }
        )));
    }

    #[test]
    fn lowers_choice_sites_and_accuracy_loops() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for_enough { either { o[0] = 1; } or { o[0] = 2; } }
                }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::ForEnoughPrep { .. })));
        assert!(has(&c, |i| matches!(i, Instr::Choice { branches: 2, .. })));
        assert!(has(&c, |i| matches!(i, Instr::Switch { .. })));
        assert!(c.names.iter().any(|n| n == "for_enough_0"));
        assert!(c.names.iter().any(|n| n == "either_0"));
    }

    #[test]
    fn lowers_builtins_and_rand() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    o[0] = sqrt(abs(a[0])) + min(a[1], 2) + pow(2, 3);
                    o[1] = rand(0, 10);
                }
            }"#,
        );
        assert!(has(&c, |i| matches!(
            i,
            Instr::Math1 {
                f: MathFn1::Sqrt,
                ..
            }
        )));
        assert!(has(&c, |i| matches!(
            i,
            Instr::Math1 {
                f: MathFn1::Abs,
                ..
            }
        )));
        assert!(has(&c, |i| matches!(
            i,
            Instr::Math2 {
                f: MathFn2::Min,
                ..
            }
        )));
        assert!(has(&c, |i| matches!(
            i,
            Instr::Math2 {
                f: MathFn2::Pow,
                ..
            }
        )));
        assert!(has(&c, |i| matches!(i, Instr::Rand { .. })));
    }

    #[test]
    fn lowers_short_circuit_logic_to_jumps() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    o[0] = a[0] > 0 && a[1] > 0;
                    o[1] = a[0] > 0 || a[1] > 0;
                }
            }"#,
        );
        // No Bin And/Or: both compile to jump structures.
        assert!(!has(&c, |i| matches!(
            i,
            Instr::Bin {
                op: BinOp::And | BinOp::Or,
                ..
            }
        )));
        assert!(has(&c, |i| matches!(i, Instr::JumpIfNonZero { .. })));
        assert!(has(&c, |i| matches!(i, Instr::TestNonZero { .. })));
    }

    #[test]
    fn lowers_host_and_sub_transform_calls() {
        let src = r#"
            transform outer from In[n] to Out[n] {
                to (Out o) from (In a) {
                    Fill(o, 1);
                    o[0] = inner(a) + 1;
                }
            }
            transform inner from X[n] to R {
                to (R r) from (X x) { r = x[0]; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let t = program.transform("outer").unwrap();
        let c = compile_rule(&program, t, &t.rules[0]).unwrap();
        assert!(has(&c, |i| matches!(
            i,
            Instr::CallHost {
                first: FirstArg::Var(_),
                ..
            }
        )));
        assert!(has(&c, |i| matches!(i, Instr::CallTransform { .. })));
        assert!(c.names.iter().any(|n| n == "Fill"));
        assert!(c.names.iter().any(|n| n == "inner"));
    }

    #[test]
    fn lowers_accuracy_variable_reads_to_param_loads() {
        let c = chunk(
            r#"transform t accuracy_variable k 1 64 from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = k; }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::LoadParam { .. })));
        assert!(c.names.iter().any(|n| n == "k"));
    }

    #[test]
    fn lowers_return_and_verify_accuracy() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    verify_accuracy;
                    return;
                    o[0] = 2;
                }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::Return)));
    }

    #[test]
    fn conditionally_assigned_reads_fall_back() {
        let err = compile_first_rule(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    if (a[0]) { let x = 1; }
                    o[0] = x;
                }
            }"#,
        )
        .unwrap_err();
        assert!(err.reason.contains("conditionally assigned"), "{err}");
    }

    #[test]
    fn variables_assigned_in_all_branches_stay_compilable() {
        let c = chunk(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    if (a[0]) { let x = 1; } else { let x = 2; }
                    o[0] = x;
                }
            }"#,
        );
        assert!(has(&c, |i| matches!(i, Instr::CopySlot { .. })
            || matches!(i, Instr::StoreSlotNum { .. })));
    }

    #[test]
    fn loop_local_reads_after_loop_fall_back() {
        let err = compile_first_rule(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for (i in 0 .. len(a)) { let y = a[i]; }
                    o[0] = y;
                }
            }"#,
        )
        .unwrap_err();
        assert!(err.reason.contains("conditionally assigned"), "{err}");
    }

    #[test]
    fn compile_program_reports_coverage() {
        let src = r#"
            transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = 1; }
                to (Out o) from (In a) {
                    if (a[0]) { let x = 1; }
                    o[0] = x;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let compiled = compile_program(&program);
        assert_eq!(compiled.coverage(), (1, 2));
        assert!(compiled.chunk("t", 0).is_some());
        assert!(compiled.chunk("t", 1).is_none());
        assert!(compiled.transform("t").unwrap().rules[1].is_err());
    }

    #[test]
    fn alias_slots_line_up_with_bindings() {
        let c = chunk(
            r#"transform t from A[n], B[n] to C[n] {
                to (C c) from (A a, B b) { c[0] = a[0] + b[0]; }
            }"#,
        );
        assert_eq!(c.input_slots.len(), 2);
        assert_eq!(c.output_slots.len(), 1);
        let mut all = c.input_slots.clone();
        all.extend(&c.output_slots);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 3, "distinct aliases get distinct slots");
    }
}
