//! The bytecode optimizer: a fixed pass pipeline between lowering
//! ([`crate::compile`]) and dispatch ([`crate::vm`]).
//!
//! Lowering is deliberately naive — it mirrors the interpreter's
//! evaluation order statement by statement, which makes it easy to
//! prove semantics-preserving but leaves obvious fat in the hot loops:
//! constants rematerialized every iteration, loop variables bounced
//! through their slots on every read, three dispatches for a scalar
//! accumulator update, one `Charge` dispatch per statement. This
//! module removes that fat while keeping execution *observably
//! identical* to the interpreter: same outputs bit for bit, same RNG
//! consumption order, same virtual-cost totals, same errors at the
//! same execution points.
//!
//! Pipeline (per [`Chunk`]):
//!
//! 1. **Local value tracking** — block-local constant folding, copy
//!    propagation, and slot-scalar aliasing (a `LoadSlotNum` from a
//!    slot that provably holds `Num(regs[r])` becomes a `Move` from
//!    `r`, which copy propagation then usually erases).
//! 2. **Superinstruction fusion** ([`OptLevel::O2`]) — the dominant
//!    dynamic sequences collapse into one dispatch:
//!    `Const`-operand arithmetic → [`Instr::BinRI`]/[`Instr::BinIR`];
//!    compare-then-branch → [`Instr::JumpCmp`]/[`Instr::JumpCmpImm`];
//!    `LoadSlotNum`+binop+`StoreSlotNum` →
//!    [`Instr::SlotUpdImm`]/[`Instr::SlotUpdReg`];
//!    binop+`StoreIdx1` → [`Instr::BinStoreIdx1`]; and the
//!    `AddImm`+`Jump` loop back-edge → [`Instr::AddImmJump`]. Fusion
//!    only fires when no jump lands inside the sequence and the
//!    absorbed registers are dead afterwards (per the liveness
//!    analysis).
//! 3. **Dead-code elimination** — pure instructions whose results are
//!    dead become `Nop`s. Instructions with side effects (stores, RNG,
//!    cost charges, anything that can error) are never removed, so
//!    error behavior is preserved exactly.
//! 4. **Charge folding** ([`OptLevel::O2`]) — consecutive `Charge`
//!    amounts within a straight-line region merge into the first one.
//!    Charges never move across control flow (block leaders or
//!    terminators), so totals on every *completed* execution are
//!    identical. The one sanctioned deviation: a region's merged
//!    charge lands at its first charge's position, so an execution
//!    aborted by an error mid-region has already been charged for the
//!    region's later statements — the error itself (message and
//!    point) is unchanged, and no completed run ever observes a
//!    different total.
//! 5. **Compaction + register coalescing** — `Nop`s are dropped (jump
//!    targets remapped), and surviving registers are renumbered
//!    densely, shrinking `n_regs` and with it the per-invocation frame
//!    reset cost.
//!
//! Constant folding computes with the same `f64` operations the VM
//! would execute, so folded results are bit-identical to runtime
//! evaluation (including NaN, signed zero, and the interpreter's
//! `i64`-truncation rules).

use crate::ast::BinOp;
use crate::compile::{Chunk, FirstArg, Instr, Operand, Reg};
use std::collections::HashMap;

mod specialize;

/// How much optimization to run between lowering and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// Straight-from-lowering bytecode (the pre-optimizer behavior).
    O0,
    /// Constant folding, copy propagation, dead-code elimination, and
    /// register coalescing.
    O1,
    /// Everything in [`OptLevel::O1`] plus superinstruction fusion and
    /// charge folding.
    O2,
    /// Everything in [`OptLevel::O2`] plus facts-directed
    /// specialization ([`crate::analysis::ChunkFacts`]): unchecked
    /// length-specialized indexing, loop-invariant `Shape` hoisting
    /// behind zero-trip guards, and (in the interpreter) precomputed
    /// per-callee binding plans.
    #[default]
    O3,
}

impl OptLevel {
    /// Every level, lowest to highest — benches and differential
    /// suites iterate this so new tiers appear automatically.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

/// A verifier violation attributed to the optimizer pass that
/// introduced it (or to `lowering` when the input chunk was already
/// malformed).
#[derive(Debug, Clone, PartialEq)]
pub struct PassViolation {
    /// Pass name: `lowering`, `local_value`, `dce`, `compact`, `fuse`,
    /// `fold_charges`, `specialize`, or `renumber_regs`.
    pub pass: &'static str,
    /// The chunk's label.
    pub label: String,
    /// The underlying violation.
    pub violation: crate::analysis::Violation,
}

impl std::fmt::Display for PassViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pass `{}` broke chunk `{}`: {}",
            self.pass, self.label, self.violation
        )
    }
}

impl std::error::Error for PassViolation {}

/// Whether the pipeline re-verifies after every pass by default:
/// `PB_VERIFY=1` forces it on, `PB_VERIFY=0` off, unset follows
/// `debug_assertions`.
pub fn verify_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| match std::env::var("PB_VERIFY") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Runs the pass pipeline over one chunk. [`OptLevel::O0`] returns the
/// chunk unchanged. Under `PB_VERIFY=1` (or in debug builds) the chunk
/// is re-verified after every pass; a violation panics with the name
/// of the pass that introduced it.
pub fn optimize(chunk: &Chunk, level: OptLevel) -> Chunk {
    match optimize_verified(chunk, level, verify_enabled()) {
        Ok(c) => c,
        Err(v) => panic!("optimizer bug: {v}"),
    }
}

/// [`optimize`] with entry-slot facts for the specializer (see
/// [`optimize_verified_with_entry`]).
pub fn optimize_with_entry(
    chunk: &Chunk,
    level: OptLevel,
    entry: Option<&[crate::analysis::AbsValue]>,
) -> Chunk {
    match optimize_verified_with_entry(chunk, level, verify_enabled(), entry) {
        Ok(c) => c,
        Err(v) => panic!("optimizer bug: {v}"),
    }
}

/// [`optimize`] with explicit control over pass-by-pass verification.
/// With `verify` off this is the plain pipeline (no per-pass cost);
/// with it on, [`crate::analysis::verify_code`] runs after every pass
/// and the per-region charge signature
/// ([`crate::analysis::charge_signature`]) is checked against the
/// input's, so the first pass to break an invariant — including
/// hoisting a `Charge` across control flow — is named in the error.
///
/// # Errors
///
/// Returns the [`PassViolation`] for the first pass whose output fails
/// verification (pass `lowering` if the input chunk is already bad).
pub fn optimize_verified(
    chunk: &Chunk,
    level: OptLevel,
    verify: bool,
) -> Result<Chunk, PassViolation> {
    optimize_verified_with_entry(chunk, level, verify, None)
}

/// [`optimize_verified`] with optional entry-slot facts (see
/// [`crate::analysis::entry_slots`]) feeding the [`OptLevel::O3`]
/// specializer. Without them the specializer still runs, but only the
/// rewrites that are safe from chunk-local inference alone fire —
/// `Shape` hoisting in particular needs the entry facts to prove a
/// hoisted read cannot introduce a new error point.
///
/// # Errors
///
/// Returns the [`PassViolation`] for the first pass whose output fails
/// verification (pass `lowering` if the input chunk is already bad).
pub fn optimize_verified_with_entry(
    chunk: &Chunk,
    level: OptLevel,
    verify: bool,
    entry: Option<&[crate::analysis::AbsValue]>,
) -> Result<Chunk, PassViolation> {
    use crate::analysis::{charge_signature, verify_code, Violation, ViolationKind};

    let n_names = chunk.names.len();
    let check = |pass: &'static str,
                 code: &[Instr],
                 n_regs: u16,
                 want_sig: Option<&[f64]>|
     -> Result<(), PassViolation> {
        let fail = |violation: Violation| PassViolation {
            pass,
            label: chunk.label.clone(),
            violation,
        };
        verify_code(
            code,
            n_regs,
            chunk.n_slots,
            n_names,
            &chunk.input_slots,
            &chunk.output_slots,
        )
        .map_err(fail)?;
        if let Some(want) = want_sig {
            let got = charge_signature(code);
            if got != want {
                return Err(fail(Violation {
                    kind: ViolationKind::ChargeMoved,
                    at: 0,
                    detail: format!("charge signature changed: {want:?} -> {got:?}"),
                }));
            }
        }
        Ok(())
    };

    let sig = if verify {
        check("lowering", &chunk.code, chunk.n_regs, None)?;
        Some(charge_signature(&chunk.code))
    } else {
        None
    };
    if level == OptLevel::O0 {
        return Ok(chunk.clone());
    }
    let mut code = chunk.code.clone();
    // The specializer allocates fresh registers, so the bank size is
    // tracked explicitly and every gate verifies against the current
    // count.
    let mut n_regs_cur = chunk.n_regs;
    let gate = |pass: &'static str, code: &[Instr], n_regs: u16| -> Result<(), PassViolation> {
        match &sig {
            Some(sig) => check(pass, code, n_regs, Some(sig)),
            None => Ok(()),
        }
    };

    // Value tracking and DCE cascade (a folded constant exposes a dead
    // `Const`, whose removal exposes nothing further), so two rounds
    // reach the fixpoint for the shapes lowering produces.
    for _ in 0..2 {
        local_value_pass(&mut code, level);
        gate("local_value", &code, n_regs_cur)?;
        dce(&mut code, &chunk.output_slots);
        gate("dce", &code, n_regs_cur)?;
        code = compact(code);
        gate("compact", &code, n_regs_cur)?;
    }
    if level >= OptLevel::O2 {
        fuse(&mut code);
        gate("fuse", &code, n_regs_cur)?;
        dce(&mut code, &chunk.output_slots);
        gate("dce", &code, n_regs_cur)?;
        fold_charges(&mut code);
        gate("fold_charges", &code, n_regs_cur)?;
        code = compact(code);
        gate("compact", &code, n_regs_cur)?;
    }
    if level >= OptLevel::O3 {
        // Facts for the specializer come from the code as it stands
        // now (the forms the earlier passes produced are what dispatch
        // will see), seeded with the caller's entry-slot facts.
        let interim = Chunk {
            label: chunk.label.clone(),
            code: code.clone(),
            names: chunk.names.clone(),
            n_regs: n_regs_cur,
            n_slots: chunk.n_slots,
            input_slots: chunk.input_slots.clone(),
            output_slots: chunk.output_slots.clone(),
            opt: OptLevel::O2,
        };
        let facts = crate::analysis::analyze_chunk(&interim, entry.unwrap_or(&[]));
        n_regs_cur = specialize::specialize(&mut code, n_regs_cur, &facts);
        gate("specialize", &code, n_regs_cur)?;
        if sig.is_some() {
            crate::analysis::verify_specialized(&code, &facts).map_err(|violation| {
                PassViolation {
                    pass: "specialize",
                    label: chunk.label.clone(),
                    violation,
                }
            })?;
        }
        // The hoist rewrite leaves `Move`s where the in-loop `Shape`s
        // were; one more cleanup round propagates and drops them.
        local_value_pass(&mut code, level);
        gate("local_value", &code, n_regs_cur)?;
        dce(&mut code, &chunk.output_slots);
        gate("dce", &code, n_regs_cur)?;
        code = compact(code);
        gate("compact", &code, n_regs_cur)?;
    }

    let (code, n_regs) = renumber_regs(code);
    if let Some(sig) = &sig {
        check("renumber_regs", &code, n_regs, Some(sig))?;
    }
    Ok(Chunk {
        label: chunk.label.clone(),
        code,
        names: chunk.names.clone(),
        n_regs,
        n_slots: chunk.n_slots,
        input_slots: chunk.input_slots.clone(),
        output_slots: chunk.output_slots.clone(),
        opt: level,
    })
}

// ---- instruction facts -------------------------------------------------

/// Registers an instruction reads (including the old value of
/// read-modify-write destinations).
pub(crate) fn for_each_use(instr: &Instr, mut f: impl FnMut(Reg)) {
    match instr {
        Instr::Move { src, .. }
        | Instr::Neg { src, .. }
        | Instr::Not { src, .. }
        | Instr::TestNonZero { src, .. }
        | Instr::Math1 { src, .. }
        | Instr::StoreSlotNum { src, .. } => f(*src),
        Instr::Bin { a, b, .. } | Instr::Math2 { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Instr::BinRI { a, .. } => f(*a),
        Instr::BinIR { b, .. } => f(*b),
        Instr::Rand { lo, hi, .. } => {
            f(*lo);
            f(*hi);
        }
        Instr::LoadIdx1 { idx, .. } | Instr::LoadIdx1U { idx, .. } => f(*idx),
        Instr::LoadIdx2 { i, j, .. } | Instr::LoadIdx2U { i, j, .. } => {
            f(*i);
            f(*j);
        }
        Instr::StoreIdx1 { idx, src, .. } | Instr::StoreIdx1U { idx, src, .. } => {
            f(*idx);
            f(*src);
        }
        Instr::BinStoreIdx1 { idx, a, b, .. } | Instr::BinStoreIdx1U { idx, a, b, .. } => {
            f(*idx);
            f(*a);
            f(*b);
        }
        Instr::StoreIdx2 { i, j, src, .. } | Instr::StoreIdx2U { i, j, src, .. } => {
            f(*i);
            f(*j);
            f(*src);
        }
        Instr::JumpIfZero { cond, .. } | Instr::JumpIfNonZero { cond, .. } => f(*cond),
        Instr::JumpIfGe { a, b, .. } | Instr::JumpCmp { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Instr::JumpCmpImm { a, .. } => f(*a),
        // Read-modify-write: the old value is consumed.
        Instr::AddImm { dst, .. } | Instr::AddImmJump { dst, .. } => f(*dst),
        Instr::TruncPair { a, b } => {
            f(*a);
            f(*b);
        }
        Instr::WhileGuard { counter } => f(*counter),
        Instr::Switch { src, .. } => f(*src),
        Instr::SlotUpdReg { b, .. } => f(*b),
        Instr::CallHost { first, rest, .. } => {
            if let FirstArg::Anon(Operand::Reg(r)) = first {
                f(*r);
            }
            for op in rest {
                if let Operand::Reg(r) = op {
                    f(*r);
                }
            }
        }
        Instr::CallTransform { args, .. } => {
            for op in args {
                if let Operand::Reg(r) = op {
                    f(*r);
                }
            }
        }
        Instr::Const { .. }
        | Instr::LoadSlotNum { .. }
        | Instr::CopySlot { .. }
        | Instr::LoadParam { .. }
        | Instr::Shape { .. }
        | Instr::ShapeHoisted { .. }
        | Instr::Jump { .. }
        | Instr::Charge { .. }
        | Instr::ForEnoughPrep { .. }
        | Instr::Choice { .. }
        | Instr::SlotUpdImm { .. }
        | Instr::Return
        | Instr::Nop => {}
    }
}

/// Registers an instruction writes.
pub(crate) fn for_each_def(instr: &Instr, mut f: impl FnMut(Reg)) {
    match instr {
        Instr::Const { dst, .. }
        | Instr::Move { dst, .. }
        | Instr::LoadSlotNum { dst, .. }
        | Instr::LoadParam { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::BinRI { dst, .. }
        | Instr::BinIR { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::TestNonZero { dst, .. }
        | Instr::Math1 { dst, .. }
        | Instr::Math2 { dst, .. }
        | Instr::Rand { dst, .. }
        | Instr::Shape { dst, .. }
        | Instr::ShapeHoisted { dst, .. }
        | Instr::LoadIdx1 { dst, .. }
        | Instr::LoadIdx1U { dst, .. }
        | Instr::LoadIdx2 { dst, .. }
        | Instr::LoadIdx2U { dst, .. }
        | Instr::AddImm { dst, .. }
        | Instr::AddImmJump { dst, .. }
        | Instr::ForEnoughPrep { dst, .. }
        | Instr::Choice { dst, .. } => f(*dst),
        Instr::TruncPair { a, b } => {
            f(*a);
            f(*b);
        }
        Instr::WhileGuard { counter } => f(*counter),
        _ => {}
    }
}

/// Whether the instruction is free of observable effects beyond its
/// register writes — removable when those writes are dead. Everything
/// that can error, consume RNG, charge cost, touch slots, or transfer
/// control stays.
fn is_pure(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Const { .. }
            | Instr::Move { .. }
            | Instr::Bin { .. }
            | Instr::BinRI { .. }
            | Instr::BinIR { .. }
            | Instr::Neg { .. }
            | Instr::Not { .. }
            | Instr::TestNonZero { .. }
            | Instr::Math1 { .. }
            | Instr::Math2 { .. }
            | Instr::AddImm { .. }
            | Instr::TruncPair { .. }
            | Instr::Nop
    )
}

/// Whether the instruction ends a straight-line region.
pub(crate) fn is_terminator(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Jump { .. }
            | Instr::AddImmJump { .. }
            | Instr::JumpIfZero { .. }
            | Instr::JumpIfNonZero { .. }
            | Instr::JumpIfGe { .. }
            | Instr::JumpCmp { .. }
            | Instr::JumpCmpImm { .. }
            | Instr::Switch { .. }
            | Instr::Return
    )
}

/// Indices that are jump targets (block leaders, minus index 0 and
/// fall-throughs, which the passes that need full leader sets add
/// themselves).
pub(crate) fn jump_targets(code: &[Instr]) -> Vec<bool> {
    let mut targets = vec![false; code.len() + 1];
    for instr in code {
        match instr {
            Instr::Jump { target }
            | Instr::AddImmJump { target, .. }
            | Instr::JumpIfZero { target, .. }
            | Instr::JumpIfNonZero { target, .. }
            | Instr::JumpIfGe { target, .. }
            | Instr::JumpCmp { target, .. }
            | Instr::JumpCmpImm { target, .. } => targets[*target] = true,
            Instr::Switch { targets: ts, .. } => {
                for t in ts {
                    targets[*t] = true;
                }
            }
            _ => {}
        }
    }
    targets
}

// ---- liveness ----------------------------------------------------------

/// A dense per-register bit set.
#[derive(Clone, PartialEq, Default)]
struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    fn with_capacity(n_regs: usize) -> RegSet {
        RegSet {
            words: vec![0; n_regs.div_ceil(64)],
        }
    }

    fn insert(&mut self, r: Reg) {
        let r = r as usize;
        if r / 64 >= self.words.len() {
            self.words.resize(r / 64 + 1, 0);
        }
        self.words[r / 64] |= 1 << (r % 64);
    }

    fn remove(&mut self, r: Reg) {
        let r = r as usize;
        if r / 64 < self.words.len() {
            self.words[r / 64] &= !(1 << (r % 64));
        }
    }

    fn contains(&self, r: Reg) -> bool {
        let r = r as usize;
        r / 64 < self.words.len() && self.words[r / 64] & (1 << (r % 64)) != 0
    }

    /// `self |= other`; returns whether anything changed.
    fn union_with(&mut self, other: &RegSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            let next = *dst | *src;
            changed |= next != *dst;
            *dst = next;
        }
        changed
    }
}

/// Per-instruction liveness: `live_after[i]` is the set of registers
/// whose values may still be read on some path after instruction `i`
/// executes.
fn live_after_sets(code: &[Instr]) -> Vec<RegSet> {
    let n = code.len();
    let mut max_reg = 0usize;
    for instr in code {
        for_each_use(instr, |r| max_reg = max_reg.max(r as usize + 1));
        for_each_def(instr, |r| max_reg = max_reg.max(r as usize + 1));
    }

    // Block structure.
    let targets = jump_targets(code);
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for i in 0..n {
        if targets[i] {
            leader[i] = true;
        }
        if is_terminator(&code[i]) && i + 1 < n {
            leader[i + 1] = true;
        }
    }
    let block_starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
    let block_of = {
        let mut map = vec![0usize; n];
        for (b, &start) in block_starts.iter().enumerate() {
            let end = block_starts.get(b + 1).copied().unwrap_or(n);
            for slot in map.iter_mut().take(end).skip(start) {
                *slot = b;
            }
        }
        map
    };
    let block_end = |b: usize| block_starts.get(b + 1).copied().unwrap_or(n);

    // Successor blocks of each block (via its final instruction).
    let successors = |b: usize| -> Vec<usize> {
        let last = block_end(b) - 1;
        let mut out = Vec::new();
        let mut push_target = |t: usize| {
            if t < n {
                out.push(block_of[t]);
            }
        };
        match &code[last] {
            Instr::Jump { target } | Instr::AddImmJump { target, .. } => push_target(*target),
            Instr::JumpIfZero { target, .. }
            | Instr::JumpIfNonZero { target, .. }
            | Instr::JumpIfGe { target, .. }
            | Instr::JumpCmp { target, .. }
            | Instr::JumpCmpImm { target, .. } => {
                push_target(*target);
                push_target(last + 1);
            }
            Instr::Switch { targets, .. } => {
                for t in targets {
                    push_target(*t);
                }
            }
            Instr::Return => {}
            _ => push_target(last + 1),
        }
        out
    };

    // Backward dataflow to a fixpoint over block live-in/live-out.
    let nb = block_starts.len();
    let mut live_in: Vec<RegSet> = vec![RegSet::with_capacity(max_reg); nb];
    let mut live_out: Vec<RegSet> = vec![RegSet::with_capacity(max_reg); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut out = RegSet::with_capacity(max_reg);
            for s in successors(b) {
                out.union_with(&live_in[s]);
            }
            let mut live = out.clone();
            for i in (block_starts[b]..block_end(b)).rev() {
                for_each_def(&code[i], |r| live.remove(r));
                for_each_use(&code[i], |r| live.insert(r));
            }
            changed |= live_out[b] != out || live_in[b] != live;
            live_out[b] = out;
            live_in[b] = live;
        }
    }

    // Final backward walk materializing per-instruction live-after.
    let mut after = vec![RegSet::default(); n];
    for b in 0..nb {
        let mut live = live_out[b].clone();
        for i in (block_starts[b]..block_end(b)).rev() {
            after[i] = live.clone();
            for_each_def(&code[i], |r| live.remove(r));
            for_each_use(&code[i], |r| live.insert(r));
        }
    }
    after
}

// ---- pass 1: local value tracking --------------------------------------

/// What a register is known to hold at the current program point.
#[derive(Clone, Copy, PartialEq)]
enum RegFact {
    Const(f64),
    /// Same value as another register (the fact is stored canonical:
    /// the referenced register is never itself a `Copy`).
    Copy(Reg),
}

/// Applies a binary operator with the VM's exact `f64` semantics.
/// `And`/`Or` never appear (lowering compiles them to jumps).
pub(crate) fn apply_bin(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        BinOp::Eq => (a == b) as i64 as f64,
        BinOp::Ne => (a != b) as i64 as f64,
        BinOp::Lt => (a < b) as i64 as f64,
        BinOp::Le => (a <= b) as i64 as f64,
        BinOp::Gt => (a > b) as i64 as f64,
        BinOp::Ge => (a >= b) as i64 as f64,
        BinOp::And | BinOp::Or => unreachable!("lowered to jumps"),
    }
}

/// Block-local constant folding, copy propagation, and slot-scalar
/// aliasing. Rewrites instructions in place (the code length never
/// changes, so jump targets stay valid).
fn local_value_pass(code: &mut [Instr], level: OptLevel) {
    let n = code.len();
    let targets = jump_targets(code);

    let mut facts: HashMap<Reg, RegFact> = HashMap::new();
    // `slots[s]` holds `Num` equal to the current value of a register.
    let mut slot_alias: HashMap<u16, Reg> = HashMap::new();
    // `slots[s]` holds `Num(imm)`.
    let mut slot_const: HashMap<u16, f64> = HashMap::new();

    for i in 0..n {
        if targets[i] {
            // Joining control flow invalidates everything local.
            facts.clear();
            slot_alias.clear();
            slot_const.clear();
        }

        // Kill facts that depend on a register this instruction writes
        // — done up front against the *pre*-instruction state; the
        // per-variant handling below then installs the new fact.
        let mut defs: Vec<Reg> = Vec::new();
        for_each_def(&code[i], |r| defs.push(r));

        // Resolve a register through the current copy facts.
        let canon = |facts: &HashMap<Reg, RegFact>, r: Reg| -> Reg {
            match facts.get(&r) {
                Some(RegFact::Copy(root)) => *root,
                _ => r,
            }
        };
        let known = |facts: &HashMap<Reg, RegFact>, r: Reg| -> Option<f64> {
            match facts.get(&r) {
                Some(RegFact::Const(v)) => Some(*v),
                _ => None,
            }
        };

        // Rewrite uses through copy facts (pure uses only; the
        // read-modify-write destinations of AddImm/TruncPair/WhileGuard
        // must stay in place).
        match &mut code[i] {
            Instr::Move { src, .. }
            | Instr::Neg { src, .. }
            | Instr::Not { src, .. }
            | Instr::TestNonZero { src, .. }
            | Instr::Math1 { src, .. }
            | Instr::StoreSlotNum { src, .. } => *src = canon(&facts, *src),
            Instr::Bin { a, b, .. } | Instr::Math2 { a, b, .. } => {
                *a = canon(&facts, *a);
                *b = canon(&facts, *b);
            }
            Instr::BinRI { a, .. } => *a = canon(&facts, *a),
            Instr::BinIR { b, .. } => *b = canon(&facts, *b),
            Instr::Rand { lo, hi, .. } => {
                *lo = canon(&facts, *lo);
                *hi = canon(&facts, *hi);
            }
            Instr::LoadIdx1 { idx, .. } | Instr::LoadIdx1U { idx, .. } => {
                *idx = canon(&facts, *idx)
            }
            Instr::LoadIdx2 { i: a, j: b, .. } | Instr::LoadIdx2U { i: a, j: b, .. } => {
                *a = canon(&facts, *a);
                *b = canon(&facts, *b);
            }
            Instr::StoreIdx1 { idx, src, .. } | Instr::StoreIdx1U { idx, src, .. } => {
                *idx = canon(&facts, *idx);
                *src = canon(&facts, *src);
            }
            Instr::BinStoreIdx1 { idx, a, b, .. } | Instr::BinStoreIdx1U { idx, a, b, .. } => {
                *idx = canon(&facts, *idx);
                *a = canon(&facts, *a);
                *b = canon(&facts, *b);
            }
            Instr::StoreIdx2 {
                i: a, j: b, src, ..
            }
            | Instr::StoreIdx2U {
                i: a, j: b, src, ..
            } => {
                *a = canon(&facts, *a);
                *b = canon(&facts, *b);
                *src = canon(&facts, *src);
            }
            Instr::JumpIfZero { cond, .. } | Instr::JumpIfNonZero { cond, .. } => {
                *cond = canon(&facts, *cond)
            }
            Instr::JumpIfGe { a, b, .. } | Instr::JumpCmp { a, b, .. } => {
                *a = canon(&facts, *a);
                *b = canon(&facts, *b);
            }
            Instr::JumpCmpImm { a, .. } => *a = canon(&facts, *a),
            Instr::Switch { src, .. } => *src = canon(&facts, *src),
            Instr::SlotUpdReg { b, .. } => *b = canon(&facts, *b),
            Instr::CallHost { first, rest, .. } => {
                if let FirstArg::Anon(Operand::Reg(r)) = first {
                    *r = canon(&facts, *r);
                }
                for op in rest.iter_mut() {
                    if let Operand::Reg(r) = op {
                        *r = canon(&facts, *r);
                    }
                }
            }
            Instr::CallTransform { args, .. } => {
                for op in args.iter_mut() {
                    if let Operand::Reg(r) = op {
                        *r = canon(&facts, *r);
                    }
                }
            }
            _ => {}
        }

        // Fold where operands are known, then install new facts.
        let new_instr: Option<Instr> = match &code[i] {
            Instr::Bin { op, dst, a, b } => match (known(&facts, *a), known(&facts, *b)) {
                (Some(va), Some(vb)) => Some(Instr::Const {
                    dst: *dst,
                    val: apply_bin(*op, va, vb),
                }),
                (Some(va), None) if level >= OptLevel::O2 => Some(Instr::BinIR {
                    op: *op,
                    dst: *dst,
                    imm: va,
                    b: *b,
                }),
                (None, Some(vb)) if level >= OptLevel::O2 => Some(Instr::BinRI {
                    op: *op,
                    dst: *dst,
                    a: *a,
                    imm: vb,
                }),
                _ => None,
            },
            Instr::BinRI { op, dst, a, imm } => known(&facts, *a).map(|va| Instr::Const {
                dst: *dst,
                val: apply_bin(*op, va, *imm),
            }),
            Instr::BinIR { op, dst, imm, b } => known(&facts, *b).map(|vb| Instr::Const {
                dst: *dst,
                val: apply_bin(*op, *imm, vb),
            }),
            Instr::Neg { dst, src } => {
                known(&facts, *src).map(|v| Instr::Const { dst: *dst, val: -v })
            }
            Instr::Not { dst, src } => known(&facts, *src).map(|v| Instr::Const {
                dst: *dst,
                val: if v == 0.0 { 1.0 } else { 0.0 },
            }),
            Instr::TestNonZero { dst, src } => known(&facts, *src).map(|v| Instr::Const {
                dst: *dst,
                val: (v != 0.0) as i64 as f64,
            }),
            Instr::Math1 { f, dst, src } => known(&facts, *src).map(|v| Instr::Const {
                dst: *dst,
                val: crate::vm::apply_math1(*f, v),
            }),
            Instr::Math2 { f, dst, a, b } => match (known(&facts, *a), known(&facts, *b)) {
                (Some(va), Some(vb)) => Some(Instr::Const {
                    dst: *dst,
                    val: crate::vm::apply_math2(*f, va, vb),
                }),
                _ => None,
            },
            Instr::AddImm { dst, imm } => known(&facts, *dst).map(|v| Instr::Const {
                dst: *dst,
                val: v + imm,
            }),
            // A load from a slot that provably holds `Num(regs[r])`
            // cannot fail and equals a register copy.
            Instr::LoadSlotNum { dst, slot } => match slot_alias.get(slot) {
                Some(&r) => Some(Instr::Move { dst: *dst, src: r }),
                None => slot_const
                    .get(slot)
                    .map(|&v| Instr::Const { dst: *dst, val: v }),
            },
            _ => None,
        };
        if let Some(instr) = new_instr {
            code[i] = instr;
        }

        // Register writes invalidate dependent facts.
        for &d in &defs {
            facts.remove(&d);
            facts.retain(|_, f| !matches!(f, RegFact::Copy(r) if *r == d));
            slot_alias.retain(|_, r| *r != d);
        }

        // Install the post-instruction facts.
        match &code[i] {
            Instr::Const { dst, val } => {
                facts.insert(*dst, RegFact::Const(*val));
            }
            Instr::Move { dst, src } => {
                let fact = match facts.get(src) {
                    Some(RegFact::Const(v)) => RegFact::Const(*v),
                    _ => RegFact::Copy(*src),
                };
                facts.insert(*dst, fact);
            }
            // Read-modify-write instructions (TruncPair, WhileGuard,
            // AddImmJump): the defs-kill above already dropped their
            // registers' facts, leaving them Unknown — fine, since
            // loop-carried counters never stay constant anyway.
            Instr::StoreSlotNum { slot, src } => {
                slot_alias.remove(slot);
                slot_const.remove(slot);
                match facts.get(src) {
                    Some(RegFact::Const(v)) => {
                        slot_const.insert(*slot, *v);
                    }
                    _ => {
                        slot_alias.insert(*slot, *src);
                    }
                }
            }
            Instr::SlotUpdImm { dst, .. } | Instr::SlotUpdReg { dst, .. } => {
                slot_alias.remove(dst);
                slot_const.remove(dst);
            }
            Instr::CopySlot { dst, src } => {
                match (slot_alias.get(src).copied(), slot_const.get(src).copied()) {
                    (Some(r), _) => {
                        slot_const.remove(dst);
                        slot_alias.insert(*dst, r);
                    }
                    (None, Some(v)) => {
                        slot_alias.remove(dst);
                        slot_const.insert(*dst, v);
                    }
                    (None, None) => {
                        slot_alias.remove(dst);
                        slot_const.remove(dst);
                    }
                }
            }
            Instr::CallHost { first, dst, .. } => {
                if let FirstArg::Var(s) = first {
                    slot_alias.remove(s);
                    slot_const.remove(s);
                }
                slot_alias.remove(dst);
                slot_const.remove(dst);
            }
            Instr::CallTransform { dst, .. } => {
                slot_alias.remove(dst);
                slot_const.remove(dst);
            }
            _ => {}
        }

        if is_terminator(&code[i]) {
            facts.clear();
            slot_alias.clear();
            slot_const.clear();
        }
    }
}

// ---- pass 2: superinstruction fusion -----------------------------------

/// Flips a comparison so `imm op b` can be expressed as `b op' imm`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other, // Eq / Ne are symmetric.
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

/// Collapses the dominant adjacent sequences into superinstructions.
/// A sequence fuses only when no jump lands inside it and the absorbed
/// intermediate registers are dead afterwards.
fn fuse(code: &mut [Instr]) {
    let n = code.len();
    let targets = jump_targets(code);
    let live = live_after_sets(code);

    // LoadSlotNum + binop + StoreSlotNum → SlotUpd*.
    for i in 0..n.saturating_sub(2) {
        if targets[i + 1] || targets[i + 2] {
            continue;
        }
        let Instr::LoadSlotNum { dst: r1, slot: src } = code[i] else {
            continue;
        };
        let Instr::StoreSlotNum { slot: dst, src: r2 } = code[i + 2] else {
            continue;
        };
        if live[i + 2].contains(r1) || live[i + 2].contains(r2) {
            continue;
        }
        let fused = match code[i + 1] {
            Instr::Bin { op, dst: d, a, b } if d == r2 && a == r1 && b != r1 => {
                Some(Instr::SlotUpdReg { op, dst, src, b })
            }
            Instr::BinRI { op, dst: d, a, imm } if d == r2 && a == r1 => Some(Instr::SlotUpdImm {
                op,
                dst,
                src,
                imm,
                imm_on_left: false,
            }),
            Instr::BinIR { op, dst: d, imm, b } if d == r2 && b == r1 => Some(Instr::SlotUpdImm {
                op,
                dst,
                src,
                imm,
                imm_on_left: true,
            }),
            _ => None,
        };
        if let Some(fused) = fused {
            code[i] = fused;
            code[i + 1] = Instr::Nop;
            code[i + 2] = Instr::Nop;
        }
    }

    // arithmetic + element store → BinStoreIdx1. The index register
    // must not be the arithmetic result (the fused form reads it
    // directly, so it has to carry its pre-`Bin` value — which it
    // does whenever it is a distinct register).
    for i in 0..n.saturating_sub(1) {
        if targets[i + 1] {
            continue;
        }
        let Instr::Bin { op, dst, a, b } = code[i] else {
            continue;
        };
        let Instr::StoreIdx1 { slot, idx, src } = code[i + 1] else {
            continue;
        };
        if src != dst || idx == dst || live[i + 1].contains(dst) {
            continue;
        }
        code[i] = Instr::BinStoreIdx1 {
            op,
            slot,
            idx,
            a,
            b,
        };
        code[i + 1] = Instr::Nop;
    }

    // counter increment + loop back-edge → AddImmJump (no deadness
    // requirement: both effects are kept, in one dispatch).
    for i in 0..n.saturating_sub(1) {
        if targets[i + 1] {
            continue;
        }
        let Instr::AddImm { dst, imm } = code[i] else {
            continue;
        };
        let Instr::Jump { target } = code[i + 1] else {
            continue;
        };
        code[i] = Instr::AddImmJump { dst, imm, target };
        code[i + 1] = Instr::Nop;
    }

    // compare + conditional branch → JumpCmp / JumpCmpImm.
    for i in 0..n.saturating_sub(1) {
        if targets[i + 1] {
            continue;
        }
        let (cond, jump_if, target) = match code[i + 1] {
            Instr::JumpIfZero { cond, target } => (cond, false, target),
            Instr::JumpIfNonZero { cond, target } => (cond, true, target),
            _ => continue,
        };
        if live[i + 1].contains(cond) {
            continue;
        }
        let fused = match code[i] {
            Instr::Bin { op, dst, a, b } if dst == cond && is_cmp(op) => Some(Instr::JumpCmp {
                op,
                a,
                b,
                jump_if,
                target,
            }),
            Instr::BinRI { op, dst, a, imm } if dst == cond && is_cmp(op) => {
                Some(Instr::JumpCmpImm {
                    op,
                    a,
                    imm,
                    jump_if,
                    target,
                })
            }
            Instr::BinIR { op, dst, imm, b } if dst == cond && is_cmp(op) => {
                Some(Instr::JumpCmpImm {
                    op: flip_cmp(op),
                    a: b,
                    imm,
                    jump_if,
                    target,
                })
            }
            _ => None,
        };
        if let Some(fused) = fused {
            code[i] = Instr::Nop;
            code[i + 1] = fused;
        }
    }
}

// ---- pass 3: dead-code elimination -------------------------------------

/// Slots an instruction reads (a write to a slot no instruction — and
/// no output binding — ever reads is unobservable).
fn for_each_slot_use(instr: &Instr, mut f: impl FnMut(u16)) {
    match instr {
        Instr::LoadSlotNum { slot, .. }
        | Instr::Shape { slot, .. }
        | Instr::ShapeHoisted { slot, .. } => f(*slot),
        Instr::CopySlot { src, .. } => f(*src),
        // Indexed stores read-modify the slot's array in place.
        Instr::LoadIdx1 { slot, .. }
        | Instr::LoadIdx1U { slot, .. }
        | Instr::LoadIdx2 { slot, .. }
        | Instr::LoadIdx2U { slot, .. }
        | Instr::StoreIdx1 { slot, .. }
        | Instr::StoreIdx1U { slot, .. }
        | Instr::StoreIdx2 { slot, .. }
        | Instr::StoreIdx2U { slot, .. }
        | Instr::BinStoreIdx1 { slot, .. }
        | Instr::BinStoreIdx1U { slot, .. } => f(*slot),
        Instr::SlotUpdImm { src, .. } => f(*src),
        Instr::SlotUpdReg { src, .. } => f(*src),
        Instr::CallHost { first, rest, .. } => {
            match first {
                FirstArg::Var(s) => f(*s),
                FirstArg::Anon(Operand::Slot(s)) => f(*s),
                FirstArg::Anon(Operand::Reg(_)) => {}
            }
            for op in rest {
                if let Operand::Slot(s) = op {
                    f(*s);
                }
            }
        }
        Instr::CallTransform { args, .. } => {
            for op in args {
                if let Operand::Slot(s) = op {
                    f(*s);
                }
            }
        }
        _ => {}
    }
}

/// Replaces instructions with no observable effect with `Nop`s: pure
/// instructions whose result registers are dead, self-moves, and
/// never-erroring stores to slots nothing reads.
fn dce(code: &mut [Instr], output_slots: &[crate::compile::Slot]) {
    loop {
        let live = live_after_sets(code);
        // Flow-insensitive slot read set: a slot is observable if any
        // instruction may read it or it carries a rule output.
        let mut read_slots: Vec<bool> = Vec::new();
        let mut note = |s: u16| {
            let s = s as usize;
            if s >= read_slots.len() {
                read_slots.resize(s + 1, false);
            }
            read_slots[s] = true;
        };
        for instr in code.iter() {
            for_each_slot_use(instr, &mut note);
        }
        for &s in output_slots {
            note(s);
        }
        let slot_read = |s: u16| read_slots.get(s as usize).copied().unwrap_or(false);

        let mut changed = false;
        for i in 0..code.len() {
            let dead = match &code[i] {
                Instr::Nop => false,
                Instr::Move { dst, src } if dst == src => true,
                // These two slot writes cannot error; dropping them is
                // unobservable when nothing reads the slot.
                Instr::StoreSlotNum { slot, .. } => !slot_read(*slot),
                Instr::CopySlot { dst, .. } => !slot_read(*dst),
                instr if is_pure(instr) => {
                    let mut any_live = false;
                    for_each_def(instr, |r| any_live |= live[i].contains(r));
                    let mut has_def = false;
                    for_each_def(instr, |_| has_def = true);
                    has_def && !any_live
                }
                _ => false,
            };
            if dead {
                code[i] = Instr::Nop;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

// ---- pass 4: charge folding --------------------------------------------

/// Merges consecutive `Charge` amounts within a straight-line region
/// into the region's first `Charge`. Never moves cost across control
/// flow, so totals on completed executions are unchanged; an execution
/// that errors mid-region has pre-paid the region's later charges (see
/// the module docs — errors themselves are unaffected, and nothing
/// observes the cost of an aborted run).
fn fold_charges(code: &mut [Instr]) {
    let n = code.len();
    let targets = jump_targets(code);
    let mut pending: f64 = 0.0;
    let mut first: Option<usize> = None;
    let flush = |code: &mut [Instr], pending: &mut f64, first: &mut Option<usize>| {
        if let Some(at) = first.take() {
            code[at] = Instr::Charge { amount: *pending };
            *pending = 0.0;
        }
    };
    for i in 0..n {
        if targets[i] {
            flush(code, &mut pending, &mut first);
        }
        match &code[i] {
            Instr::Charge { amount } => {
                if first.is_none() {
                    first = Some(i);
                    pending = *amount;
                } else {
                    pending += *amount;
                    code[i] = Instr::Nop;
                }
            }
            instr if is_terminator(instr) => flush(code, &mut pending, &mut first),
            _ => {}
        }
    }
    flush(code, &mut pending, &mut first);
}

// ---- pass 5: compaction + register coalescing --------------------------

/// Drops `Nop`s, remapping every jump target.
fn compact(code: Vec<Instr>) -> Vec<Instr> {
    let n = code.len();
    // map[i] = new index of the first surviving instruction at or
    // after i (end-of-code targets map to the new length).
    let mut map = vec![0usize; n + 1];
    let mut next = code.iter().filter(|i| !matches!(i, Instr::Nop)).count();
    map[n] = next;
    for i in (0..n).rev() {
        if !matches!(code[i], Instr::Nop) {
            next -= 1;
        }
        map[i] = next;
    }
    let mut out = Vec::with_capacity(map[n]);
    for (i, mut instr) in code.into_iter().enumerate() {
        if matches!(instr, Instr::Nop) {
            continue;
        }
        debug_assert_eq!(map[i], out.len());
        match &mut instr {
            Instr::Jump { target }
            | Instr::AddImmJump { target, .. }
            | Instr::JumpIfZero { target, .. }
            | Instr::JumpIfNonZero { target, .. }
            | Instr::JumpIfGe { target, .. }
            | Instr::JumpCmp { target, .. }
            | Instr::JumpCmpImm { target, .. } => *target = map[*target],
            Instr::Switch { targets, .. } => {
                for t in targets.iter_mut() {
                    *t = map[*t];
                }
            }
            _ => {}
        }
        out.push(instr);
    }
    out
}

/// Renumbers surviving registers densely (coalescing the bank) and
/// returns the new register count.
fn renumber_regs(mut code: Vec<Instr>) -> (Vec<Instr>, u16) {
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let mut next: Reg = 0;
    for instr in &code {
        let mut note = |r: Reg| {
            map.entry(r).or_insert_with(|| {
                let n = next;
                next += 1;
                n
            });
        };
        for_each_use(instr, &mut note);
        for_each_def(instr, &mut note);
    }
    for instr in &mut code {
        remap_regs(instr, &map);
    }
    (code, next)
}

/// Rewrites every register reference through `map`.
fn remap_regs(instr: &mut Instr, map: &HashMap<Reg, Reg>) {
    let m = |r: &mut Reg| *r = map[r];
    match instr {
        Instr::Const { dst, .. }
        | Instr::LoadSlotNum { dst, .. }
        | Instr::LoadParam { dst, .. }
        | Instr::AddImm { dst, .. }
        | Instr::AddImmJump { dst, .. }
        | Instr::ForEnoughPrep { dst, .. }
        | Instr::Choice { dst, .. } => m(dst),
        Instr::Move { dst, src }
        | Instr::Neg { dst, src }
        | Instr::Not { dst, src }
        | Instr::TestNonZero { dst, src }
        | Instr::Math1 { dst, src, .. } => {
            m(dst);
            m(src);
        }
        Instr::StoreSlotNum { src, .. } => m(src),
        Instr::Bin { dst, a, b, .. } | Instr::Math2 { dst, a, b, .. } => {
            m(dst);
            m(a);
            m(b);
        }
        Instr::BinRI { dst, a, .. } => {
            m(dst);
            m(a);
        }
        Instr::BinIR { dst, b, .. } => {
            m(dst);
            m(b);
        }
        Instr::Rand { dst, lo, hi } => {
            m(dst);
            m(lo);
            m(hi);
        }
        Instr::Shape { dst, .. } | Instr::ShapeHoisted { dst, .. } => m(dst),
        Instr::LoadIdx1 { dst, idx, .. } | Instr::LoadIdx1U { dst, idx, .. } => {
            m(dst);
            m(idx);
        }
        Instr::LoadIdx2 { dst, i, j, .. } | Instr::LoadIdx2U { dst, i, j, .. } => {
            m(dst);
            m(i);
            m(j);
        }
        Instr::StoreIdx1 { idx, src, .. } | Instr::StoreIdx1U { idx, src, .. } => {
            m(idx);
            m(src);
        }
        Instr::BinStoreIdx1 { idx, a, b, .. } | Instr::BinStoreIdx1U { idx, a, b, .. } => {
            m(idx);
            m(a);
            m(b);
        }
        Instr::StoreIdx2 { i, j, src, .. } | Instr::StoreIdx2U { i, j, src, .. } => {
            m(i);
            m(j);
            m(src);
        }
        Instr::JumpIfZero { cond, .. } | Instr::JumpIfNonZero { cond, .. } => m(cond),
        Instr::JumpIfGe { a, b, .. } | Instr::JumpCmp { a, b, .. } => {
            m(a);
            m(b);
        }
        Instr::JumpCmpImm { a, .. } => m(a),
        Instr::TruncPair { a, b } => {
            m(a);
            m(b);
        }
        Instr::WhileGuard { counter } => m(counter),
        Instr::Switch { src, .. } => m(src),
        Instr::SlotUpdReg { b, .. } => m(b),
        Instr::CallHost { first, rest, .. } => {
            if let FirstArg::Anon(Operand::Reg(r)) = first {
                m(r);
            }
            for op in rest.iter_mut() {
                if let Operand::Reg(r) = op {
                    m(r);
                }
            }
        }
        Instr::CallTransform { args, .. } => {
            for op in args.iter_mut() {
                if let Operand::Reg(r) = op {
                    m(r);
                }
            }
        }
        Instr::CopySlot { .. }
        | Instr::SlotUpdImm { .. }
        | Instr::Jump { .. }
        | Instr::Charge { .. }
        | Instr::Return
        | Instr::Nop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_rule;
    use crate::parser::parse_program;

    fn chunks(src: &str) -> (Chunk, Chunk) {
        let program = parse_program(src).unwrap();
        let t = &program.transforms[0];
        let raw = compile_rule(&program, t, &t.rules[0]).expect("compiles");
        let opt = optimize(&raw, OptLevel::O2);
        (raw, opt)
    }

    fn count(code: &[Instr], pred: impl Fn(&Instr) -> bool) -> usize {
        code.iter().filter(|i| pred(i)).count()
    }

    #[test]
    fn o0_is_identity() {
        let program = parse_program(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = a[0] + 1; }
            }"#,
        )
        .unwrap();
        let t = &program.transforms[0];
        let raw = compile_rule(&program, t, &t.rules[0]).unwrap();
        assert_eq!(optimize(&raw, OptLevel::O0), raw);
    }

    #[test]
    fn constants_fold_and_dead_consts_vanish() {
        let (raw, opt) = chunks(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) { o[0] = 1 + 2 * 3; }
            }"#,
        );
        assert!(count(&raw.code, |i| matches!(i, Instr::Bin { .. })) >= 2);
        assert_eq!(count(&opt.code, |i| matches!(i, Instr::Bin { .. })), 0);
        assert!(opt
            .code
            .iter()
            .any(|i| matches!(i, Instr::Const { val, .. } if *val == 7.0)));
        assert!(opt.n_regs < raw.n_regs, "coalescing shrinks the bank");
    }

    #[test]
    fn accumulator_updates_fuse_to_slot_superinstructions() {
        let (_, opt) = chunks(
            r#"transform t from In[n] to Out[n], W {
                to (Out o, W w) from (In a) {
                    for_enough { w = w + 1; }
                }
            }"#,
        );
        assert!(
            opt.code
                .iter()
                .any(|i| matches!(i, Instr::SlotUpdImm { op: BinOp::Add, imm, .. } if *imm == 1.0)),
            "w = w + 1 should fuse: {:?}",
            opt.code
        );
        assert_eq!(
            count(&opt.code, |i| matches!(i, Instr::LoadSlotNum { .. })),
            0,
            "the accumulator load is absorbed"
        );
    }

    #[test]
    fn compare_branches_fuse() {
        let (_, opt) = chunks(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    let j = 0;
                    while (j < len(a)) { j = j + 1; }
                }
            }"#,
        );
        assert!(
            opt.code
                .iter()
                .any(|i| matches!(i, Instr::JumpCmp { .. } | Instr::JumpCmpImm { .. })),
            "loop condition should fuse: {:?}",
            opt.code
        );
        assert_eq!(
            count(&opt.code, |i| matches!(i, Instr::JumpIfZero { .. })),
            0
        );
    }

    #[test]
    fn charges_fold_within_straight_line_runs() {
        let (raw, opt) = chunks(
            r#"transform t from In[n] to Out[n], W {
                to (Out o, W w) from (In a) {
                    w = 1;
                    w = w + 1;
                    w = w + 2;
                }
            }"#,
        );
        let raw_total: f64 = raw
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::Charge { amount } => Some(*amount),
                _ => None,
            })
            .sum();
        let opt_charges: Vec<f64> = opt
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::Charge { amount } => Some(*amount),
                _ => None,
            })
            .collect();
        assert_eq!(opt_charges.iter().sum::<f64>(), raw_total);
        assert!(
            opt_charges.len() < 3,
            "straight-line charges merge: {opt_charges:?}"
        );
    }

    #[test]
    fn array_update_loops_fuse_arithmetic_into_the_store() {
        let (_, opt) = chunks(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for (i in 0 .. len(a)) { o[i] = a[i] + i; }
                }
            }"#,
        );
        assert!(
            opt.code
                .iter()
                .any(|i| matches!(i, Instr::BinStoreIdx1 { .. })),
            "o[i] = a[i] + i should fuse the add into the store: {:?}",
            opt.code
        );
        assert!(
            opt.code
                .iter()
                .any(|i| matches!(i, Instr::AddImmJump { .. })),
            "the loop back-edge should fuse"
        );
    }

    #[test]
    fn loop_variable_loads_become_register_moves() {
        let (raw, opt) = chunks(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    for (i in 0 .. len(a)) { o[i] = a[i]; }
                }
            }"#,
        );
        // The body reads `i` twice; lowering loads the slot each time,
        // the optimizer routes both reads through the counter register.
        assert!(count(&raw.code, |i| matches!(i, Instr::LoadSlotNum { .. })) >= 2);
        assert_eq!(
            count(&opt.code, |i| matches!(i, Instr::LoadSlotNum { .. })),
            0,
            "loop-variable loads should vanish: {:?}",
            opt.code
        );
    }

    #[test]
    fn fusion_preserves_jump_targets() {
        // A branch over an else keeps a target that lands after fused
        // and deleted instructions; compaction must remap it.
        let (_, opt) = chunks(
            r#"transform t from In[n] to Out[n], W {
                to (Out o, W w) from (In a) {
                    if (a[0] > 0) { w = 1 + 1; } else { w = 2 + 2; }
                    w = w + 1;
                }
            }"#,
        );
        for instr in &opt.code {
            match instr {
                Instr::Jump { target }
                | Instr::JumpIfZero { target, .. }
                | Instr::JumpIfNonZero { target, .. }
                | Instr::JumpIfGe { target, .. }
                | Instr::JumpCmp { target, .. }
                | Instr::JumpCmpImm { target, .. } => assert!(*target <= opt.code.len()),
                Instr::Switch { targets, .. } => {
                    assert!(targets.iter().all(|t| *t <= opt.code.len()));
                }
                _ => {}
            }
        }
        assert!(!opt.code.iter().any(|i| matches!(i, Instr::Nop)));
    }

    #[test]
    fn side_effects_survive_dce() {
        let (_, opt) = chunks(
            r#"transform t from In[n] to Out[n] {
                to (Out o) from (In a) {
                    rand(0, 1);
                    o[0] = 1;
                }
            }"#,
        );
        // The discarded rand(0,1) still consumes one RNG draw.
        assert_eq!(count(&opt.code, |i| matches!(i, Instr::Rand { .. })), 1);
    }
}
