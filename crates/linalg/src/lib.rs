//! Dense and banded linear algebra substrate.
//!
//! The paper's benchmarks lean on LAPACK: `DPBSV` (banded Cholesky
//! solve) for the Poisson direct solver (§6.1.5), and the symmetric
//! eigensolver family — QR iteration, bisection, and divide-and-conquer
//! — for SVD-based image compression (§6.1.4). This crate reimplements
//! those routines from scratch so the reproduction has no external
//! numeric dependencies and the autotuner faces the same algorithmic
//! menu as in the paper:
//!
//! * [`Matrix`] — row-major dense matrices with the usual operations.
//! * [`cholesky`] — dense Cholesky factorization/solve for SPD systems.
//! * [`banded`] — symmetric banded storage and band Cholesky (the
//!   `DPBSV` equivalent).
//! * [`tridiag`] — Householder reduction of a symmetric matrix to
//!   tridiagonal form.
//! * [`eigen_qr`] — implicit-shift QL/QR eigensolver for symmetric
//!   tridiagonal matrices (all eigenpairs).
//! * [`eigen_bisect`] — Sturm-sequence bisection for selected
//!   eigenvalues plus inverse iteration for their eigenvectors.
//! * [`eigen_dc`] — Cuppen-style divide-and-conquer eigensolver.
//! * [`svd`] — singular value decomposition (via the symmetric
//!   eigenproblem) and best rank-k approximation.

// Index loops mirror the textbook formulations of these kernels;
// iterator rewrites would obscure the banded/packed index algebra.
#![allow(clippy::needless_range_loop)]

pub mod banded;
pub mod cholesky;
pub mod eigen_bisect;
pub mod eigen_dc;
pub mod eigen_qr;
pub mod matrix;
pub mod svd;
pub mod tridiag;

pub use banded::SymmetricBanded;
pub use eigen_qr::SymmetricEigen;
pub use matrix::Matrix;
pub use svd::Svd;
pub use tridiag::SymmetricTridiagonal;
