//! Row-major dense matrices.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, stored row-major.
///
/// # Examples
///
/// ```
/// use pb_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or there are no rows.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// A matrix with entries drawn uniformly from `[0, 1)` — the image
    /// model used by the compression benchmark (§6.1.4: "generated from
    /// a uniform distribution on (0,1)").
    pub fn random_uniform(rows: usize, cols: usize, rng: &mut SmallRng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen::<f64>())
    }

    /// A random symmetric matrix with entries in `[-1, 1]`.
    pub fn random_symmetric(n: usize, rng: &mut SmallRng) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.gen_range(-1.0..1.0);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// A random symmetric positive-definite matrix (`B·Bᵀ + n·I`).
    pub fn random_spd(n: usize, rng: &mut SmallRng) -> Self {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut m = b.matmul(&b.transpose());
        for i in 0..n {
            m[(i, i)] += n as f64;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree for matmul"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&other.data) {
            *o -= b;
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&other.data) {
            *o += b;
        }
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Root-mean-square of the entries (the error measure used by the
    /// paper's PDE and compression accuracy metrics).
    pub fn rms(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            (self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64).sqrt()
        }
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Whether the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..i {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a vector.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_is_matmul_neutral() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Matrix::random_uniform(4, 4, &mut rng);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Matrix::random_uniform(3, 5, &mut rng);
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let y = a.matvec(&x);
        let xm = Matrix::from_fn(5, 1, |i, _| x[i]);
        let ym = a.matmul(&xm);
        for i in 0..3 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Matrix::random_uniform(3, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 7);
    }

    #[test]
    fn symmetric_and_spd_generators() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = Matrix::random_symmetric(6, &mut rng);
        assert!(s.is_symmetric(0.0));
        let spd = Matrix::random_spd(6, &mut rng);
        assert!(spd.is_symmetric(1e-12));
        // Diagonal dominance from the +n*I shift implies positive
        // diagonal entries at minimum.
        for i in 0..6 {
            assert!(spd[(i, i)] > 0.0);
        }
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.rms() - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a:?}").is_empty());
    }
}
