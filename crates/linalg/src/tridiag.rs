//! Symmetric tridiagonal matrices and Householder reduction.
//!
//! All three eigensolvers (QR iteration, bisection,
//! divide-and-conquer) operate on symmetric tridiagonal matrices; a
//! dense symmetric matrix is first reduced with Householder reflections
//! (the classic `tred2` reduction), accumulating the orthogonal
//! transformation so eigenvectors can be mapped back.

use crate::matrix::Matrix;

/// A symmetric tridiagonal matrix: `diag` of length `n` and `offdiag`
/// of length `n - 1` (`offdiag[i] = A[i+1][i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricTridiagonal {
    /// Main diagonal.
    pub diag: Vec<f64>,
    /// Sub/super diagonal.
    pub offdiag: Vec<f64>,
}

impl SymmetricTridiagonal {
    /// Creates a tridiagonal matrix.
    ///
    /// # Panics
    ///
    /// Panics if `offdiag.len() + 1 != diag.len()` or `diag` is empty.
    pub fn new(diag: Vec<f64>, offdiag: Vec<f64>) -> Self {
        assert!(!diag.is_empty(), "empty tridiagonal matrix");
        assert_eq!(
            offdiag.len() + 1,
            diag.len(),
            "off-diagonal must be one shorter than the diagonal"
        );
        SymmetricTridiagonal { diag, offdiag }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Densifies (tests / small solves).
    pub fn to_dense(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                self.diag[i]
            } else if i.abs_diff(j) == 1 {
                self.offdiag[i.min(j)]
            } else {
                0.0
            }
        })
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(x.len(), n, "vector length mismatch");
        (0..n)
            .map(|i| {
                let mut v = self.diag[i] * x[i];
                if i > 0 {
                    v += self.offdiag[i - 1] * x[i - 1];
                }
                if i + 1 < n {
                    v += self.offdiag[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    /// Gershgorin bounds `[lo, hi]` containing every eigenvalue.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let n = self.dim();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let mut r = 0.0;
            if i > 0 {
                r += self.offdiag[i - 1].abs();
            }
            if i + 1 < n {
                r += self.offdiag[i].abs();
            }
            lo = lo.min(self.diag[i] - r);
            hi = hi.max(self.diag[i] + r);
        }
        (lo, hi)
    }
}

/// Result of Householder tridiagonalization: `A = Q · T · Qᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonalization {
    /// The tridiagonal matrix `T`.
    pub tridiag: SymmetricTridiagonal,
    /// The accumulated orthogonal transform `Q`.
    pub q: Matrix,
}

/// Householder reduction of a symmetric matrix to tridiagonal form
/// (the `tred2` algorithm), accumulating `Q`.
///
/// # Panics
///
/// Panics if `a` is not square (symmetry of the lower triangle is
/// assumed; only the lower triangle is read).
///
/// # Examples
///
/// ```
/// use pb_linalg::tridiag::householder_tridiagonalize;
/// use pb_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[
///     &[4.0, 1.0, -2.0],
///     &[1.0, 2.0, 0.0],
///     &[-2.0, 0.0, 3.0],
/// ]);
/// let t = householder_tridiagonalize(&a);
/// // Q·T·Qᵀ reconstructs A.
/// let back = t.q.matmul(&t.tridiag.to_dense()).matmul(&t.q.transpose());
/// assert!(a.sub(&back).max_abs() < 1e-10);
/// ```
pub fn householder_tridiagonalize(a: &Matrix) -> Tridiagonalization {
    assert!(a.is_square(), "tridiagonalization requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut q = Matrix::identity(n);

    for k in 0..n.saturating_sub(2) {
        // Build the Householder vector for column k below the diagonal.
        let mut alpha: f64 = 0.0;
        for i in k + 1..n {
            alpha += m[(i, k)] * m[(i, k)];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if m[(k + 1, k)] > 0.0 {
            alpha = -alpha;
        }
        let r = (0.5 * (alpha * alpha - m[(k + 1, k)] * alpha)).sqrt();
        if r == 0.0 {
            continue;
        }
        let mut v = vec![0.0; n];
        v[k + 1] = (m[(k + 1, k)] - alpha) / (2.0 * r);
        for i in k + 2..n {
            v[i] = m[(i, k)] / (2.0 * r);
        }

        // m <- H m H with H = I - 2 v vᵀ.
        // w = m v.
        let w = m.matvec(&v);
        let vw = crate::matrix::dot(&v, &w);
        // m <- m - 2 v wᵀ - 2 w vᵀ + 4 (vᵀ w) v vᵀ.
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] += -2.0 * v[i] * w[j] - 2.0 * w[i] * v[j] + 4.0 * vw * v[i] * v[j];
            }
        }
        // q <- q H (accumulate from the right).
        for i in 0..n {
            let mut qv = 0.0;
            for j in 0..n {
                qv += q[(i, j)] * v[j];
            }
            for j in 0..n {
                q[(i, j)] -= 2.0 * qv * v[j];
            }
        }
    }

    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    let offdiag: Vec<f64> = (0..n.saturating_sub(1)).map(|i| m[(i + 1, i)]).collect();
    Tridiagonalization {
        tridiag: SymmetricTridiagonal::new(diag, offdiag),
        q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tridiagonal_accessors() {
        let t = SymmetricTridiagonal::new(vec![2.0, 2.0, 2.0], vec![-1.0, -1.0]);
        assert_eq!(t.dim(), 3);
        let d = t.to_dense();
        assert_eq!(d[(0, 1)], -1.0);
        assert_eq!(d[(1, 0)], -1.0);
        assert_eq!(d[(0, 2)], 0.0);
        let y = t.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn gershgorin_contains_known_spectrum() {
        // tridiag(-1,2,-1) has eigenvalues in (0, 4).
        let n = 8;
        let t = SymmetricTridiagonal::new(vec![2.0; n], vec![-1.0; n - 1]);
        let (lo, hi) = t.gershgorin_bounds();
        assert!(lo <= 0.0 && hi >= 4.0);
    }

    #[test]
    fn householder_preserves_spectrum_shape() {
        let mut rng = SmallRng::seed_from_u64(33);
        for n in [2, 3, 5, 10, 20] {
            let a = Matrix::random_symmetric(n, &mut rng);
            let t = householder_tridiagonalize(&a);
            // Orthogonality of Q.
            let qtq = t.q.transpose().matmul(&t.q);
            assert!(
                qtq.sub(&Matrix::identity(n)).max_abs() < 1e-10,
                "Q not orthogonal for n={n}"
            );
            // Reconstruction.
            let back = t.q.matmul(&t.tridiag.to_dense()).matmul(&t.q.transpose());
            assert!(a.sub(&back).max_abs() < 1e-9, "reconstruction failed n={n}");
        }
    }

    #[test]
    fn already_tridiagonal_is_fixed_point_up_to_signs() {
        let t0 = SymmetricTridiagonal::new(vec![1.0, 2.0, 3.0], vec![0.5, 0.25]);
        let t = householder_tridiagonalize(&t0.to_dense());
        for (a, b) in t.tridiag.diag.iter().zip(&t0.diag) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in t.tridiag.offdiag.iter().zip(&t0.offdiag) {
            assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[5.0]]);
        let t = householder_tridiagonalize(&a);
        assert_eq!(t.tridiag.diag, vec![5.0]);
        assert!(t.tridiag.offdiag.is_empty());
    }
}
