//! Implicit-shift QL/QR eigensolver for symmetric matrices.
//!
//! The workhorse "compute every eigenpair" routine (LAPACK's
//! `DSTEQR`-style algorithm, the `tqli` formulation): implicit QL with
//! Wilkinson shifts on the tridiagonal form, accumulating the rotations
//! into the eigenvector matrix. Cost is `O(n³)` including eigenvectors,
//! which is what makes bisection-for-k attractive at low accuracy in
//! the image-compression benchmark (§6.1.4).

use crate::matrix::Matrix;
use crate::tridiag::{householder_tridiagonalize, SymmetricTridiagonal};

/// An eigendecomposition `A = V · diag(λ) · Vᵀ` with eigenvalues
/// ascending and eigenvectors in the matching columns of `V`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Sorts eigenpairs ascending by eigenvalue (in place).
    pub(crate) fn sort_ascending(&mut self) {
        let n = self.values.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.values[a]
                .partial_cmp(&self.values[b])
                .expect("eigenvalues are finite")
        });
        let values = order.iter().map(|&i| self.values[i]).collect();
        let vectors = Matrix::from_fn(self.vectors.rows(), n, |r, c| self.vectors[(r, order[c])]);
        self.values = values;
        self.vectors = vectors;
    }
}

/// Error for QL iteration failing to converge (essentially impossible
/// for real symmetric input, but surfaced rather than looping forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EigenDidNotConverge;

impl std::fmt::Display for EigenDidNotConverge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QL iteration exceeded its iteration budget")
    }
}

impl std::error::Error for EigenDidNotConverge {}

/// Eigendecomposition of a symmetric tridiagonal matrix by implicit QL
/// with shifts, accumulating rotations into `q0` (pass the Householder
/// `Q` to get eigenvectors of the original dense matrix, or `None` for
/// eigenvectors of the tridiagonal matrix itself).
///
/// # Errors
///
/// Returns [`EigenDidNotConverge`] if any eigenvalue needs more than 50
/// QL sweeps.
pub fn eigen_tridiagonal(
    t: &SymmetricTridiagonal,
    q0: Option<&Matrix>,
) -> Result<SymmetricEigen, EigenDidNotConverge> {
    let n = t.dim();
    let mut d = t.diag.clone();
    // e is offset by one versus the textbook: e[i] couples d[i], d[i+1].
    let mut e = t.offdiag.clone();
    e.push(0.0);
    let mut z = match q0 {
        Some(q) => {
            assert_eq!(q.cols(), n, "q0 must have n columns");
            q.clone()
        }
        None => Matrix::identity(n),
    };
    let rows = z.rows();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Look for a negligible off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(EigenDidNotConverge);
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut i = m;
            while i > l {
                i -= 1;
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..rows {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && i > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    let mut eig = SymmetricEigen {
        values: d,
        vectors: z,
    };
    eig.sort_ascending();
    Ok(eig)
}

/// Full eigendecomposition of a dense symmetric matrix: Householder
/// reduction followed by implicit QL.
///
/// # Errors
///
/// Returns [`EigenDidNotConverge`] if QL fails (see
/// [`eigen_tridiagonal`]).
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use pb_linalg::eigen_qr::eigen_symmetric;
/// use pb_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = eigen_symmetric(&a).unwrap();
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 3.0).abs() < 1e-10);
/// ```
pub fn eigen_symmetric(a: &Matrix) -> Result<SymmetricEigen, EigenDidNotConverge> {
    let reduction = householder_tridiagonalize(a);
    eigen_tridiagonal(&reduction.tridiag, Some(&reduction.q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_decomposition(a: &Matrix, eig: &SymmetricEigen, tol: f64) {
        let n = a.rows();
        // A v = λ v for every pair.
        for j in 0..n {
            let v = eig.vectors.col(j);
            let av = a.matvec(&v);
            for i in 0..n {
                assert!(
                    (av[i] - eig.values[j] * v[i]).abs() < tol,
                    "pair {j} residual too large"
                );
            }
        }
        // V orthonormal.
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        assert!(vtv.sub(&Matrix::identity(n)).max_abs() < tol);
        // Ascending order.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + tol);
        }
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = eigen_symmetric(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn poisson_tridiagonal_spectrum() {
        // tridiag(-1,2,-1) of size n has eigenvalues
        // 2 - 2 cos(k·π/(n+1)), k = 1..n.
        let n = 12;
        let t = SymmetricTridiagonal::new(vec![2.0; n], vec![-1.0; n - 1]);
        let eig = eigen_tridiagonal(&t, None).unwrap();
        for (k, &lambda) in eig.values.iter().enumerate() {
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((lambda - expect).abs() < 1e-10, "k={k}");
        }
        check_decomposition(&t.to_dense(), &eig, 1e-9);
    }

    #[test]
    fn random_symmetric_matrices() {
        let mut rng = SmallRng::seed_from_u64(44);
        for n in [1, 2, 3, 8, 25] {
            let a = Matrix::random_symmetric(n, &mut rng);
            let eig = eigen_symmetric(&a).unwrap();
            check_decomposition(&a, &eig, 1e-8);
            // Trace is preserved.
            let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
            let sum: f64 = eig.values.iter().sum();
            assert!((trace - sum).abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn diagonal_matrix_is_immediate() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let eig = eigen_symmetric(&a).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-14);
        assert!((eig.values[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn repeated_eigenvalues() {
        // 2·I has eigenvalue 2 with multiplicity 3.
        let a = Matrix::identity(3).scale(2.0);
        let eig = eigen_symmetric(&a).unwrap();
        for &v in &eig.values {
            assert!((v - 2.0).abs() < 1e-14);
        }
        check_decomposition(&a, &eig, 1e-12);
    }
}
