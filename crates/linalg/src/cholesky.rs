//! Dense Cholesky factorization for symmetric positive-definite
//! systems.
//!
//! Used as the "ideal direct solver" at the bottom of multigrid
//! recursions (§6.4: at size 8 and 9 orders of magnitude of required
//! accuracy, the tuned Helmholtz algorithm "abandons the use of
//! recursion completely, opting instead to solve the problem with the
//! ideal direct solver").

use crate::matrix::Matrix;

/// Error returned when a matrix is not positive definite (or not
/// square/symmetric enough to factor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not symmetric positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// The lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if a non-positive pivot appears.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    ///
    /// # Examples
    ///
    /// ```
    /// use pb_linalg::cholesky::Cholesky;
    /// use pb_linalg::Matrix;
    ///
    /// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
    /// let chol = Cholesky::factor(&a).unwrap();
    /// let x = chol.solve(&[8.0, 7.0]);
    /// let ax = a.matvec(&x);
    /// assert!((ax[0] - 8.0).abs() < 1e-12 && (ax[1] - 7.0).abs() < 1e-12);
    /// ```
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert!(a.is_square(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` by forward/back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "right-hand side has wrong length");
        // Forward: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn factor_reconstructs_matrix() {
        let mut rng = SmallRng::seed_from_u64(10);
        let a = Matrix::random_spd(8, &mut rng);
        let chol = Cholesky::factor(&a).unwrap();
        let back = chol.l().matmul(&chol.l().transpose());
        assert!(a.sub(&back).max_abs() < 1e-10);
    }

    #[test]
    fn solve_random_spd_system() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in [1, 2, 5, 16] {
            let a = Matrix::random_spd(n, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b = a.matvec(&x_true);
            let x = Cholesky::factor(&a).unwrap().solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert_eq!(Cholesky::factor(&a), Err(NotPositiveDefinite));
        let neg = Matrix::from_rows(&[&[-1.0]]);
        assert_eq!(Cholesky::factor(&neg), Err(NotPositiveDefinite));
    }
}
