//! Bisection eigensolver: selected eigenvalues via Sturm sequences,
//! eigenvectors via inverse iteration.
//!
//! When only `k` of `n` eigenpairs are needed — the image-compression
//! benchmark's "Bisection method for only k eigenvalues and
//! eigenvectors" choice (§6.1.4) — bisection costs `O(k·n)` per
//! bisection step instead of the `O(n³)` full QR decomposition. The
//! autotuner discovers the crossover between the two.

use crate::eigen_qr::SymmetricEigen;
use crate::matrix::{norm2, Matrix};
use crate::tridiag::SymmetricTridiagonal;

/// Number of eigenvalues of `t` strictly less than `x`, computed with
/// the Sturm sequence of leading principal minors.
///
/// # Examples
///
/// ```
/// use pb_linalg::eigen_bisect::sturm_count;
/// use pb_linalg::SymmetricTridiagonal;
///
/// // diag(1, 2, 3): one eigenvalue below 1.5, two below 2.5.
/// let t = SymmetricTridiagonal::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0]);
/// assert_eq!(sturm_count(&t, 1.5), 1);
/// assert_eq!(sturm_count(&t, 2.5), 2);
/// ```
pub fn sturm_count(t: &SymmetricTridiagonal, x: f64) -> usize {
    let n = t.dim();
    let mut count = 0;
    let mut q = t.diag[0] - x;
    if q < 0.0 {
        count += 1;
    }
    for i in 1..n {
        let e2 = t.offdiag[i - 1] * t.offdiag[i - 1];
        let denom = if q != 0.0 {
            q
        } else {
            // Standard guard: treat an exactly zero pivot as a tiny
            // value of the sign convention that keeps counts correct.
            f64::EPSILON * (t.offdiag[i - 1].abs() + f64::MIN_POSITIVE)
        };
        q = t.diag[i] - x - e2 / denom;
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// The `k`-th smallest eigenvalue (0-based) by bisection to absolute
/// tolerance `tol`.
///
/// # Panics
///
/// Panics if `k >= t.dim()` or `tol <= 0`.
pub fn eigenvalue_k(t: &SymmetricTridiagonal, k: usize, tol: f64) -> f64 {
    assert!(k < t.dim(), "eigenvalue index out of range");
    assert!(tol > 0.0, "tolerance must be positive");
    let (mut lo, mut hi) = t.gershgorin_bounds();
    // Widen marginally so strict comparisons behave at the endpoints.
    let pad = (hi - lo).abs().max(1.0) * 1e-12;
    lo -= pad;
    hi += pad;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if sturm_count(t, mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Solves `(T - λI)·x = b` by Gaussian elimination with partial
/// pivoting on the tridiagonal band (the inner step of inverse
/// iteration). Singular pivots are perturbed, which is the standard
/// trick since inverse iteration *wants* a nearly singular system.
fn solve_shifted(t: &SymmetricTridiagonal, lambda: f64, b: &[f64]) -> Vec<f64> {
    let n = t.dim();
    // Band storage after elimination: d (diagonal), du (first super),
    // du2 (second super, created by row swaps). For the symmetric input
    // the sub- and super-diagonals start out equal.
    let mut d: Vec<f64> = t.diag.iter().map(|&v| v - lambda).collect();
    let mut du: Vec<f64> = t.offdiag.clone();
    du.push(0.0);
    let mut du2 = vec![0.0; n];
    let mut x = b.to_vec();

    let tiny = f64::EPSILON
        * t.diag
            .iter()
            .chain(t.offdiag.iter())
            .fold(1.0f64, |m, v| m.max(v.abs()))
        + f64::MIN_POSITIVE;

    for i in 0..n.saturating_sub(1) {
        let dl = t.offdiag[i]; // subdiagonal entry coupling rows i, i+1
        if d[i].abs() >= dl.abs() {
            // No swap. Eliminate the subdiagonal with row i.
            let pivot = if d[i].abs() < tiny { tiny } else { d[i] };
            let fact = dl / pivot;
            d[i + 1] -= fact * du[i];
            x[i + 1] -= fact * x[i];
        } else {
            // Swap rows i and i+1, then eliminate.
            let fact = d[i] / dl;
            let old_d1 = d[i + 1];
            let old_du1 = du[i + 1]; // zero when i + 2 == n
            d[i] = dl;
            d[i + 1] = du[i] - fact * old_d1;
            du[i] = old_d1;
            du2[i] = old_du1;
            du[i + 1] = -fact * old_du1;
            let old_xi = x[i];
            x[i] = x[i + 1];
            x[i + 1] = old_xi - fact * x[i];
        }
    }
    // Back substitution over (d, du, du2).
    for i in (0..n).rev() {
        let mut sum = x[i];
        if i + 1 < n {
            sum -= du[i] * x[i + 1];
        }
        if i + 2 < n {
            sum -= du2[i] * x[i + 2];
        }
        let pivot = if d[i].abs() < tiny { tiny } else { d[i] };
        x[i] = sum / pivot;
    }
    x
}

/// Eigenvector for an approximate eigenvalue by inverse iteration,
/// orthogonalized against `previous` vectors (needed for clustered
/// eigenvalues).
fn inverse_iteration(t: &SymmetricTridiagonal, lambda: f64, previous: &[Vec<f64>]) -> Vec<f64> {
    let n = t.dim();
    // Deterministic, non-degenerate starting vector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + 0.5 * ((i * 2654435761usize) % 1000) as f64 / 1000.0)
        .collect();
    normalize(&mut v);
    for _ in 0..4 {
        let mut w = solve_shifted(t, lambda, &v);
        // Orthogonalize against already-found vectors of the cluster.
        for p in previous {
            let proj = crate::matrix::dot(&w, p);
            for (wi, pi) in w.iter_mut().zip(p) {
                *wi -= proj * pi;
            }
        }
        if normalize(&mut w) == 0.0 {
            break;
        }
        v = w;
    }
    v
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = norm2(v);
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// The `k` smallest eigenpairs of a symmetric tridiagonal matrix by
/// bisection + inverse iteration.
///
/// # Panics
///
/// Panics if `k == 0` or `k > t.dim()`.
///
/// # Examples
///
/// ```
/// use pb_linalg::eigen_bisect::smallest_eigenpairs;
/// use pb_linalg::SymmetricTridiagonal;
///
/// let t = SymmetricTridiagonal::new(vec![2.0; 6], vec![-1.0; 5]);
/// let eig = smallest_eigenpairs(&t, 2);
/// assert_eq!(eig.values.len(), 2);
/// assert!(eig.values[0] < eig.values[1]);
/// ```
pub fn smallest_eigenpairs(t: &SymmetricTridiagonal, k: usize) -> SymmetricEigen {
    selected_eigenpairs(t, 0, k)
}

/// The `k` largest eigenpairs (ascending order within the result).
///
/// # Panics
///
/// Panics if `k == 0` or `k > t.dim()`.
pub fn largest_eigenpairs(t: &SymmetricTridiagonal, k: usize) -> SymmetricEigen {
    selected_eigenpairs(t, t.dim() - k, k)
}

/// Eigenpairs `first..first + count` (by ascending eigenvalue index).
///
/// # Panics
///
/// Panics if the range is empty or exceeds the dimension.
pub fn selected_eigenpairs(t: &SymmetricTridiagonal, first: usize, count: usize) -> SymmetricEigen {
    let n = t.dim();
    assert!(count > 0, "must request at least one eigenpair");
    assert!(first + count <= n, "eigenpair range out of bounds");
    let (lo, hi) = t.gershgorin_bounds();
    let tol = (hi - lo).abs().max(1.0) * 1e-13;

    let values: Vec<f64> = (first..first + count)
        .map(|k| eigenvalue_k(t, k, tol))
        .collect();

    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(count);
    for (i, &lambda) in values.iter().enumerate() {
        // Vectors already computed for eigenvalues within a cluster
        // must be orthogonalized away.
        let cluster_tol = tol.max(1e-10 * lambda.abs().max(1.0));
        let cluster: Vec<Vec<f64>> = values[..i]
            .iter()
            .zip(&vectors)
            .filter(|(&prev, _)| (prev - lambda).abs() < cluster_tol * 1e3)
            .map(|(_, v)| v.clone())
            .collect();
        vectors.push(inverse_iteration(t, lambda, &cluster));
    }

    let vmat = Matrix::from_fn(n, count, |r, c| vectors[c][r]);
    SymmetricEigen {
        values,
        vectors: vmat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen_qr::eigen_tridiagonal;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn poisson_t(n: usize) -> SymmetricTridiagonal {
        SymmetricTridiagonal::new(vec![2.0; n], vec![-1.0; n - 1])
    }

    #[test]
    fn sturm_count_diagonal_matrix() {
        let t = SymmetricTridiagonal::new(vec![1.0, 5.0, 9.0], vec![0.0, 0.0]);
        assert_eq!(sturm_count(&t, 0.0), 0);
        assert_eq!(sturm_count(&t, 2.0), 1);
        assert_eq!(sturm_count(&t, 6.0), 2);
        assert_eq!(sturm_count(&t, 100.0), 3);
    }

    #[test]
    fn bisection_matches_analytic_poisson_spectrum() {
        let n = 16;
        let t = poisson_t(n);
        for k in [0, 1, 7, 15] {
            let lambda = eigenvalue_k(&t, k, 1e-12);
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((lambda - expect).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn bisection_matches_qr_on_random_matrices() {
        let mut rng = SmallRng::seed_from_u64(55);
        for n in [3, 8, 20] {
            let diag: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let off: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let t = SymmetricTridiagonal::new(diag, off);
            let full = eigen_tridiagonal(&t, None).unwrap();
            for k in 0..n {
                let lambda = eigenvalue_k(&t, k, 1e-12);
                assert!(
                    (lambda - full.values[k]).abs() < 1e-8,
                    "n={n} k={k}: {lambda} vs {}",
                    full.values[k]
                );
            }
        }
    }

    #[test]
    fn eigenvectors_satisfy_residual() {
        let n = 12;
        let t = poisson_t(n);
        let eig = smallest_eigenpairs(&t, 4);
        for j in 0..4 {
            let v = eig.vectors.col(j);
            let tv = t.matvec(&v);
            for i in 0..n {
                assert!(
                    (tv[i] - eig.values[j] * v[i]).abs() < 1e-7,
                    "pair {j} residual"
                );
            }
            assert!((norm2(&v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn largest_eigenpairs_take_top_of_spectrum() {
        let n = 10;
        let t = poisson_t(n);
        let top = largest_eigenpairs(&t, 3);
        let full = eigen_tridiagonal(&t, None).unwrap();
        for (a, b) in top.values.iter().zip(&full.values[n - 3..]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn clustered_eigenvalues_get_orthogonal_vectors() {
        // diag(1, 1, 5): eigenvalue 1 has multiplicity 2.
        let t = SymmetricTridiagonal::new(vec![1.0, 1.0, 5.0], vec![0.0, 0.0]);
        let eig = smallest_eigenpairs(&t, 2);
        let v0 = eig.vectors.col(0);
        let v1 = eig.vectors.col(1);
        assert!(crate::matrix::dot(&v0, &v1).abs() < 1e-6);
    }
}
