//! Singular value decomposition and best rank-k approximation.
//!
//! The image-compression benchmark (§6.1.4) stores the first `k`
//! singular triplets of an image matrix: `A_k = Σᵢ σᵢ·uᵢ·vᵢᵀ` is the
//! best rank-`k` approximation. The SVD is computed through the
//! symmetric eigenproblem — either all triplets at once (QR or
//! divide-and-conquer on `AᵀA`) or only the top `k` (bisection), which
//! is the algorithmic menu the autotuner chooses from.

use crate::eigen_bisect;
use crate::eigen_dc::eigen_dc_tridiagonal;
use crate::eigen_qr::{eigen_tridiagonal, EigenDidNotConverge};
use crate::matrix::Matrix;
use crate::tridiag::householder_tridiagonalize;

/// Which eigensolver backs the SVD computation — the algorithmic
/// choice exposed to the autotuner in the image-compression benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SvdMethod {
    /// Full spectrum by implicit QL/QR iteration.
    Qr,
    /// Full spectrum by divide and conquer.
    DivideAndConquer,
    /// Only the top `k` singular values by Sturm bisection + inverse
    /// iteration.
    Bisection,
}

/// A (possibly truncated) singular value decomposition
/// `A ≈ U·diag(σ)·Vᵀ` with singular values descending.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors (columns), `m × k`.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub sigma: Vec<f64>,
    /// Right singular vectors (columns), `n × k`.
    pub v: Matrix,
}

impl Svd {
    /// Number of retained triplets.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs the rank-`k` approximation `U·diag(σ)·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let k = self.rank();
        let mut out = Matrix::zeros(m, n);
        for t in 0..k {
            let s = self.sigma[t];
            for i in 0..m {
                let us = self.u[(i, t)] * s;
                if us == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += us * self.v[(j, t)];
                }
            }
        }
        out
    }

    /// Truncates to the top `k` triplets (no-op if `k >= rank`).
    pub fn truncate(&mut self, k: usize) {
        if k >= self.rank() {
            return;
        }
        self.sigma.truncate(k);
        self.u = Matrix::from_fn(self.u.rows(), k, |i, j| self.u[(i, j)]);
        self.v = Matrix::from_fn(self.v.rows(), k, |i, j| self.v[(i, j)]);
    }
}

/// Computes the top-`k` SVD of `a` with the selected eigensolver.
///
/// `k` is clamped to `min(m, n)`. The decomposition is computed through
/// the Gram matrix `AᵀA` (whose eigenvalues are `σ²` and eigenvectors
/// are the right singular vectors); left vectors follow from
/// `uᵢ = A·vᵢ/σᵢ`. Zero singular values get zero left vectors.
///
/// # Errors
///
/// Returns [`EigenDidNotConverge`] if the underlying QL iteration
/// fails.
///
/// # Examples
///
/// ```
/// use pb_linalg::svd::{svd_top_k, SvdMethod};
/// use pb_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
/// let svd = svd_top_k(&a, 2, SvdMethod::Qr).unwrap();
/// assert!((svd.sigma[0] - 3.0).abs() < 1e-10);
/// assert!((svd.sigma[1] - 2.0).abs() < 1e-10);
/// ```
pub fn svd_top_k(a: &Matrix, k: usize, method: SvdMethod) -> Result<Svd, EigenDidNotConverge> {
    let m = a.rows();
    let n = a.cols();
    let k = k.min(m.min(n)).max(1);

    // Gram matrix AᵀA (n × n), reduced to tridiagonal form.
    let gram = a.transpose().matmul(a);
    let reduction = householder_tridiagonalize(&gram);

    // Eigenpairs of the tridiagonal form, largest k.
    let (mut values, tri_vectors) = match method {
        SvdMethod::Qr => {
            let eig = eigen_tridiagonal(&reduction.tridiag, None)?;
            take_top_k(eig.values, eig.vectors, k)
        }
        SvdMethod::DivideAndConquer => {
            let eig = eigen_dc_tridiagonal(&reduction.tridiag)?;
            take_top_k(eig.values, eig.vectors, k)
        }
        SvdMethod::Bisection => {
            let eig = eigen_bisect::largest_eigenpairs(&reduction.tridiag, k);
            // `largest_eigenpairs` returns ascending; flip to
            // descending.
            let p = eig.values.len();
            let values: Vec<f64> = eig.values.iter().rev().copied().collect();
            let vectors =
                Matrix::from_fn(eig.vectors.rows(), p, |i, j| eig.vectors[(i, p - 1 - j)]);
            (values, vectors)
        }
    };

    // Map tridiagonal eigenvectors back to right singular vectors.
    let v = reduction.q.matmul(&tri_vectors);
    // σ = sqrt(max(λ, 0)); tiny negatives from roundoff clamp to 0.
    for val in &mut values {
        *val = val.max(0.0);
    }
    let sigma: Vec<f64> = values.iter().map(|&l| l.sqrt()).collect();

    // u_i = A v_i / σ_i.
    let mut u = Matrix::zeros(m, k);
    for j in 0..k {
        let vj = v.col(j);
        let avj = a.matvec(&vj);
        if sigma[j] > f64::EPSILON * sigma.first().copied().unwrap_or(1.0).max(1.0) {
            for i in 0..m {
                u[(i, j)] = avj[i] / sigma[j];
            }
        }
    }

    Ok(Svd { u, sigma, v })
}

/// Selects the top `k` eigenpairs from an ascending decomposition,
/// returning them descending.
fn take_top_k(values: Vec<f64>, vectors: Matrix, k: usize) -> (Vec<f64>, Matrix) {
    let n = values.len();
    let k = k.min(n);
    let top_values: Vec<f64> = values[n - k..].iter().rev().copied().collect();
    let top_vectors = Matrix::from_fn(vectors.rows(), k, |i, j| vectors[(i, n - 1 - j)]);
    (top_values, top_vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const METHODS: [SvdMethod; 3] = [
        SvdMethod::Qr,
        SvdMethod::DivideAndConquer,
        SvdMethod::Bisection,
    ];

    #[test]
    fn diagonal_matrix_sigma_exact() {
        let a = Matrix::from_rows(&[&[0.0, 4.0], &[1.0, 0.0]]);
        for method in METHODS {
            let svd = svd_top_k(&a, 2, method).unwrap();
            assert!((svd.sigma[0] - 4.0).abs() < 1e-9, "{method:?}");
            assert!((svd.sigma[1] - 1.0).abs() < 1e-9, "{method:?}");
        }
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let mut rng = SmallRng::seed_from_u64(77);
        let a = Matrix::random_uniform(8, 8, &mut rng);
        for method in METHODS {
            let svd = svd_top_k(&a, 8, method).unwrap();
            let err = a.sub(&svd.reconstruct()).max_abs();
            assert!(err < 1e-6, "{method:?}: reconstruction error {err}");
        }
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        let mut rng = SmallRng::seed_from_u64(78);
        let a = Matrix::random_uniform(12, 12, &mut rng);
        let mut last_err = f64::INFINITY;
        for k in [1, 3, 6, 12] {
            let svd = svd_top_k(&a, k, SvdMethod::Qr).unwrap();
            let err = a.sub(&svd.reconstruct()).frobenius_norm();
            assert!(err <= last_err + 1e-9, "rank {k} error {err} > {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-6, "full rank is exact");
    }

    #[test]
    fn eckart_young_error_matches_tail_singular_values() {
        // ‖A − A_k‖_F² = Σ_{i>k} σᵢ².
        let mut rng = SmallRng::seed_from_u64(79);
        let a = Matrix::random_uniform(10, 10, &mut rng);
        let full = svd_top_k(&a, 10, SvdMethod::Qr).unwrap();
        let k = 4;
        let trunc = svd_top_k(&a, k, SvdMethod::Qr).unwrap();
        let err = a.sub(&trunc.reconstruct()).frobenius_norm();
        let tail: f64 = full.sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - tail).abs() < 1e-6, "err {err} vs tail {tail}");
    }

    #[test]
    fn methods_agree_on_top_singular_values() {
        let mut rng = SmallRng::seed_from_u64(80);
        let a = Matrix::random_uniform(15, 15, &mut rng);
        let qr = svd_top_k(&a, 5, SvdMethod::Qr).unwrap();
        let dc = svd_top_k(&a, 5, SvdMethod::DivideAndConquer).unwrap();
        let bi = svd_top_k(&a, 5, SvdMethod::Bisection).unwrap();
        for i in 0..5 {
            assert!((qr.sigma[i] - dc.sigma[i]).abs() < 1e-7, "i={i}");
            assert!((qr.sigma[i] - bi.sigma[i]).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn rectangular_matrices() {
        let mut rng = SmallRng::seed_from_u64(81);
        let a = Matrix::random_uniform(9, 5, &mut rng);
        let svd = svd_top_k(&a, 5, SvdMethod::Qr).unwrap();
        assert_eq!(svd.u.rows(), 9);
        assert_eq!(svd.v.rows(), 5);
        let err = a.sub(&svd.reconstruct()).max_abs();
        assert!(err < 1e-6);
    }

    #[test]
    fn truncate_shrinks_factors() {
        let mut rng = SmallRng::seed_from_u64(82);
        let a = Matrix::random_uniform(6, 6, &mut rng);
        let mut svd = svd_top_k(&a, 6, SvdMethod::Qr).unwrap();
        svd.truncate(2);
        assert_eq!(svd.rank(), 2);
        assert_eq!(svd.u.cols(), 2);
        assert_eq!(svd.v.cols(), 2);
    }

    #[test]
    fn singular_values_are_descending() {
        let mut rng = SmallRng::seed_from_u64(83);
        let a = Matrix::random_uniform(7, 7, &mut rng);
        for method in METHODS {
            let svd = svd_top_k(&a, 7, method).unwrap();
            for w in svd.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "{method:?}");
            }
        }
    }
}
