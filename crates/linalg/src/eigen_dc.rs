//! Cuppen divide-and-conquer eigensolver for symmetric tridiagonal
//! matrices.
//!
//! The third member of the hybrid eigensolver menu in the
//! image-compression benchmark (§6.1.4: "a hybrid algorithm for finding
//! all eigenvalues and eigenvectors, which combines Divide and Conquer,
//! QR Iteration and Bisection"). The matrix is split as
//!
//! ```text
//! T = [T₁ 0; 0 T₂] + β·v·vᵀ
//! ```
//!
//! halves are solved recursively, and the rank-one update
//! `D + ρ·z·zᵀ` is diagonalized by solving the *secular equation*
//! `1 + ρ·Σ zᵢ²/(dᵢ − λ) = 0` with interval bisection, with tiny-`z`
//! and equal-`d` deflation and the Gu–Eisenstat `z`-vector
//! recomputation for numerically orthogonal eigenvectors.

use crate::eigen_qr::{eigen_tridiagonal, EigenDidNotConverge, SymmetricEigen};
use crate::matrix::{norm2, Matrix};
use crate::tridiag::SymmetricTridiagonal;

/// Subproblems at or below this size are solved directly with QL.
const BASE_CASE: usize = 32;

/// Full eigendecomposition by divide and conquer.
///
/// # Errors
///
/// Returns [`EigenDidNotConverge`] only if a QL base case fails.
///
/// # Examples
///
/// ```
/// use pb_linalg::eigen_dc::eigen_dc_tridiagonal;
/// use pb_linalg::SymmetricTridiagonal;
///
/// let t = SymmetricTridiagonal::new(vec![2.0; 40], vec![-1.0; 39]);
/// let eig = eigen_dc_tridiagonal(&t).unwrap();
/// assert_eq!(eig.values.len(), 40);
/// assert!(eig.values.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn eigen_dc_tridiagonal(
    t: &SymmetricTridiagonal,
) -> Result<SymmetricEigen, EigenDidNotConverge> {
    let n = t.dim();
    if n <= BASE_CASE {
        return eigen_tridiagonal(t, None);
    }
    let m = n / 2;
    let beta = t.offdiag[m - 1];
    if beta == 0.0 {
        // Already decoupled: solve the blocks independently.
        let t1 = SymmetricTridiagonal::new(t.diag[..m].to_vec(), t.offdiag[..m - 1].to_vec());
        let t2 = SymmetricTridiagonal::new(t.diag[m..].to_vec(), t.offdiag[m..].to_vec());
        let e1 = eigen_dc_tridiagonal(&t1)?;
        let e2 = eigen_dc_tridiagonal(&t2)?;
        return Ok(merge_block_diagonal(e1, e2));
    }

    // Split with the rank-one correction β·v·vᵀ, v = e_m + e_{m+1}.
    let mut diag1 = t.diag[..m].to_vec();
    let mut diag2 = t.diag[m..].to_vec();
    diag1[m - 1] -= beta;
    diag2[0] -= beta;
    let t1 = SymmetricTridiagonal::new(diag1, t.offdiag[..m - 1].to_vec());
    let t2 = SymmetricTridiagonal::new(diag2, t.offdiag[m..].to_vec());
    let e1 = eigen_dc_tridiagonal(&t1)?;
    let e2 = eigen_dc_tridiagonal(&t2)?;

    // z = blkdiag(Q₁, Q₂)ᵀ · v: last row of Q₁ stacked on first row of
    // Q₂.
    let mut d = Vec::with_capacity(n);
    d.extend_from_slice(&e1.values);
    d.extend_from_slice(&e2.values);
    let mut z = Vec::with_capacity(n);
    for j in 0..m {
        z.push(e1.vectors[(m - 1, j)]);
    }
    for j in 0..n - m {
        z.push(e2.vectors[(0, j)]);
    }

    let update = rank_one_update(&d, &z, beta);

    // Map eigenvectors back through the block-diagonal Q.
    let mut vectors = Matrix::zeros(n, n);
    for col in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..m {
                acc += e1.vectors[(i, j)] * update.vectors[(j, col)];
            }
            vectors[(i, col)] = acc;
        }
        for i in 0..n - m {
            let mut acc = 0.0;
            for j in 0..n - m {
                acc += e2.vectors[(i, j)] * update.vectors[(m + j, col)];
            }
            vectors[(m + i, col)] = acc;
        }
    }
    let mut out = SymmetricEigen {
        values: update.values,
        vectors,
    };
    out.sort_ascending();
    Ok(out)
}

/// Concatenates two independent eigendecompositions into a
/// block-diagonal one (sorted ascending).
fn merge_block_diagonal(e1: SymmetricEigen, e2: SymmetricEigen) -> SymmetricEigen {
    let m = e1.values.len();
    let n = m + e2.values.len();
    let mut vectors = Matrix::zeros(n, n);
    for j in 0..m {
        for i in 0..m {
            vectors[(i, j)] = e1.vectors[(i, j)];
        }
    }
    for j in 0..n - m {
        for i in 0..n - m {
            vectors[(m + i, m + j)] = e2.vectors[(i, j)];
        }
    }
    let mut values = e1.values;
    values.extend_from_slice(&e2.values);
    let mut out = SymmetricEigen { values, vectors };
    out.sort_ascending();
    out
}

/// Secular function `f(λ) = 1 + ρ·Σ zᵢ²/(dᵢ − λ)`.
fn secular(d: &[f64], z: &[f64], rho: f64, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for (&di, &zi) in d.iter().zip(z) {
        sum += zi * zi / (di - lambda);
    }
    1.0 + rho * sum
}

/// Eigendecomposition of `D + ρ·z·zᵀ` (public for testing and for the
/// image-compression benchmark's internal use).
///
/// # Panics
///
/// Panics if lengths differ or the input is empty.
pub fn rank_one_update(d: &[f64], z: &[f64], rho: f64) -> SymmetricEigen {
    assert_eq!(d.len(), z.len(), "d and z must have equal length");
    let n = d.len();
    assert!(n > 0, "empty rank-one update");

    // Sort by d ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite diagonal"));
    let ds: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut zs: Vec<f64> = order.iter().map(|&i| z[i]).collect();

    let znorm2 = crate::matrix::dot(&zs, &zs);
    let spread = (ds[n - 1] - ds[0]).abs().max(rho.abs() * znorm2).max(1.0);
    let tol = f64::EPSILON * spread * (n as f64);

    // Deflation step 1: Givens-rotate (nearly) equal diagonal pairs so
    // only one keeps a nonzero z component. The rotations are
    // accumulated and applied to the eigenvector matrix afterwards.
    let mut rotations: Vec<(usize, usize, f64, f64)> = Vec::new();
    for i in 0..n - 1 {
        if zs[i].abs() <= tol {
            continue;
        }
        for j in i + 1..n {
            if (ds[j] - ds[i]).abs() > tol {
                break;
            }
            if zs[j].abs() <= tol {
                continue;
            }
            let r = zs[i].hypot(zs[j]);
            let c = zs[j] / r;
            let s = zs[i] / r;
            zs[j] = r;
            zs[i] = 0.0;
            rotations.push((i, j, c, s));
        }
    }

    // Deflation step 2: partition into deflated (z ≈ 0) and active.
    let mut active: Vec<usize> = Vec::new();
    let mut deflated: Vec<usize> = Vec::new();
    for i in 0..n {
        if zs[i].abs() <= tol {
            deflated.push(i);
        } else {
            active.push(i);
        }
    }

    let mut values = vec![0.0; n];
    let mut vectors = Matrix::zeros(n, n);

    for &i in &deflated {
        values[i] = ds[i];
        vectors[(i, i)] = 1.0;
    }

    if !active.is_empty() {
        let da: Vec<f64> = active.iter().map(|&i| ds[i]).collect();
        let za: Vec<f64> = active.iter().map(|&i| zs[i]).collect();
        let (lam, zhat) = solve_secular(&da, &za, rho);
        // Eigenvectors of the active subproblem:
        // u_k[j] = ẑ_j / (d_j − λ_k), normalized.
        for (k, &lambda) in lam.iter().enumerate() {
            let col = active[k];
            values[col] = lambda;
            let mut u: Vec<f64> = da
                .iter()
                .zip(&zhat)
                .map(|(&dj, &zj)| zj / (dj - lambda))
                .collect();
            // A root indistinguishable from its pole at f64 resolution
            // (dⱼ − λ = 0 ⇒ ±∞ above) means the eigenvector is, to
            // machine precision, the unit vector at that pole.
            if let Some(j) = u.iter().position(|x| !x.is_finite()) {
                u.iter_mut().for_each(|x| *x = 0.0);
                u[j] = 1.0;
            }
            let norm = norm2(&u);
            if norm > 0.0 {
                for x in &mut u {
                    *x /= norm;
                }
            } else {
                // ẑ degenerated to zero: fall back to the nearest pole's
                // unit vector so the column is never empty.
                let j = da
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        (*a - lambda)
                            .abs()
                            .partial_cmp(&(*b - lambda).abs())
                            .expect("finite")
                    })
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                u[j] = 1.0;
            }
            for (j, &row) in active.iter().enumerate() {
                vectors[(row, col)] = u[j];
            }
        }
    }

    // Undo the deflation rotations. The rotation G (with z′ = G·z)
    // transformed the problem as D + ρzzᵀ = Gᵀ(GDGᵀ + ρz′z′ᵀ)G, so the
    // original problem's eigenvectors are Gᵀ times the rotated ones:
    // x_i ← c·x_i + s·x_j, x_j ← −s·x_i + c·x_j.
    for &(i, j, c, s) in rotations.iter().rev() {
        for col in 0..n {
            let xi = vectors[(i, col)];
            let xj = vectors[(j, col)];
            vectors[(i, col)] = c * xi + s * xj;
            vectors[(j, col)] = -s * xi + c * xj;
        }
    }

    // Undo the sorting permutation on rows.
    let mut unsorted = Matrix::zeros(n, n);
    for (sorted_row, &orig_row) in order.iter().enumerate() {
        for col in 0..n {
            unsorted[(orig_row, col)] = vectors[(sorted_row, col)];
        }
    }

    let mut out = SymmetricEigen {
        values,
        vectors: unsorted,
    };
    out.sort_ascending();
    out
}

/// Solves the secular equation for sorted distinct `d` with all-nonzero
/// `z`, returning the roots and the Gu–Eisenstat recomputed `ẑ`.
fn solve_secular(d: &[f64], z: &[f64], rho: f64) -> (Vec<f64>, Vec<f64>) {
    let p = d.len();
    let zz = crate::matrix::dot(z, z);
    let mut roots = Vec::with_capacity(p);
    for k in 0..p {
        let (lo, hi) = if rho > 0.0 {
            if k + 1 < p {
                (d[k], d[k + 1])
            } else {
                (d[p - 1], d[p - 1] + rho * zz)
            }
        } else if k == 0 {
            (d[0] + rho * zz, d[0])
        } else {
            (d[k - 1], d[k])
        };
        roots.push(bisect_secular(d, z, rho, lo, hi));
    }

    // Gu–Eisenstat: recompute ẑ from the computed roots so the
    // eigenvector formula is exact for a nearby problem:
    //   ẑ_j² = Π_i (λ_i − d_j) / (ρ · Π_{i≠j} (d_i − d_j)).
    let mut zhat = Vec::with_capacity(p);
    for j in 0..p {
        let mut prod = (roots[j] - d[j]) / rho;
        for i in 0..p {
            if i == j {
                continue;
            }
            prod *= (roots[i] - d[j]) / (d[i] - d[j]);
        }
        let mag = prod.abs().sqrt();
        zhat.push(mag.copysign(z[j]));
    }
    (roots, zhat)
}

/// Bisection for the unique root of the secular function in the open
/// interval `(lo, hi)`.
fn bisect_secular(d: &[f64], z: &[f64], rho: f64, lo: f64, hi: f64) -> f64 {
    let mut lo = lo;
    let mut hi = hi;
    // f is monotone increasing on the interval when rho > 0 (−∞ → +∞)
    // and monotone decreasing when rho < 0 (+∞ → −∞).
    for _ in 0..140 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // interval exhausted at f64 resolution
        }
        let f = secular(d, z, rho, mid);
        let go_right = if rho > 0.0 { f < 0.0 } else { f > 0.0 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn check(t: &SymmetricTridiagonal, eig: &SymmetricEigen, tol: f64) {
        let n = t.dim();
        for j in 0..n {
            let v = eig.vectors.col(j);
            let tv = t.matvec(&v);
            for i in 0..n {
                assert!(
                    (tv[i] - eig.values[j] * v[i]).abs() < tol,
                    "pair {j} residual {} (n={n})",
                    (tv[i] - eig.values[j] * v[i]).abs()
                );
            }
        }
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        let orth = vtv.sub(&Matrix::identity(n)).max_abs();
        assert!(orth < tol, "orthogonality defect {orth}");
    }

    #[test]
    fn rank_one_update_simple() {
        // D = diag(1, 2), z = (1, 1), rho = 1:
        // A = [[2, 1], [1, 3]], eigenvalues (5 ± sqrt(5))/2.
        let eig = rank_one_update(&[1.0, 2.0], &[1.0, 1.0], 1.0);
        let expect_lo = (5.0 - 5.0f64.sqrt()) / 2.0;
        let expect_hi = (5.0 + 5.0f64.sqrt()) / 2.0;
        assert!((eig.values[0] - expect_lo).abs() < 1e-10);
        assert!((eig.values[1] - expect_hi).abs() < 1e-10);
    }

    #[test]
    fn rank_one_update_negative_rho() {
        // A = diag(1,2) - z zᵀ with z=(1,1): [[0, -1], [-1, 1]],
        // eigenvalues (1 ± sqrt(5))/2.
        let eig = rank_one_update(&[1.0, 2.0], &[1.0, 1.0], -1.0);
        let expect_lo = (1.0 - 5.0f64.sqrt()) / 2.0;
        let expect_hi = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!(
            (eig.values[0] - expect_lo).abs() < 1e-10,
            "{:?}",
            eig.values
        );
        assert!((eig.values[1] - expect_hi).abs() < 1e-10);
    }

    #[test]
    fn rank_one_update_with_deflation() {
        // z has zero entries: those diagonal entries are eigenvalues.
        let eig = rank_one_update(&[1.0, 3.0, 5.0], &[0.0, 1.0, 0.0], 2.0);
        assert!(eig.values.iter().any(|&v| (v - 1.0).abs() < 1e-12));
        assert!(eig.values.iter().any(|&v| (v - 5.0).abs() < 1e-12));
        // Middle becomes 3 + 2 = 5? No: 3 + rho·z² = 5 exactly.
        assert!(eig.values.iter().any(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    fn rank_one_update_equal_diagonals() {
        // Repeated d forces the Givens deflation path.
        let eig = rank_one_update(&[2.0, 2.0, 2.0], &[1.0, 1.0, 1.0], 1.0);
        // Eigenvalues: 2 (twice) and 2 + 3 = 5.
        let mut close_to_2 = 0;
        let mut close_to_5 = 0;
        for &v in &eig.values {
            if (v - 2.0).abs() < 1e-9 {
                close_to_2 += 1;
            }
            if (v - 5.0).abs() < 1e-9 {
                close_to_5 += 1;
            }
        }
        assert_eq!(close_to_2, 2);
        assert_eq!(close_to_5, 1);
        // Orthogonality through the rotation-undo path.
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        assert!(vtv.sub(&Matrix::identity(3)).max_abs() < 1e-9);
    }

    #[test]
    fn dc_matches_qr_on_poisson() {
        let n = 64;
        let t = SymmetricTridiagonal::new(vec![2.0; n], vec![-1.0; n - 1]);
        let dc = eigen_dc_tridiagonal(&t).unwrap();
        let qr = eigen_tridiagonal(&t, None).unwrap();
        for (a, b) in dc.values.iter().zip(&qr.values) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        check(&t, &dc, 1e-7);
    }

    #[test]
    fn dc_random_tridiagonals() {
        let mut rng = SmallRng::seed_from_u64(66);
        for n in [33, 50, 100] {
            let diag: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let off: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let t = SymmetricTridiagonal::new(diag, off);
            let dc = eigen_dc_tridiagonal(&t).unwrap();
            let qr = eigen_tridiagonal(&t, None).unwrap();
            for (a, b) in dc.values.iter().zip(&qr.values) {
                assert!((a - b).abs() < 1e-7, "n={n}: {a} vs {b}");
            }
            check(&t, &dc, 1e-6);
        }
    }

    #[test]
    fn dc_with_zero_coupling_decouples() {
        // offdiag has an exact zero at the split point.
        let n = 40;
        let mut off = vec![1.0; n - 1];
        off[n / 2 - 1] = 0.0;
        let t = SymmetricTridiagonal::new((0..n).map(|i| i as f64).collect(), off);
        let dc = eigen_dc_tridiagonal(&t).unwrap();
        let qr = eigen_tridiagonal(&t, None).unwrap();
        for (a, b) in dc.values.iter().zip(&qr.values) {
            assert!((a - b).abs() < 1e-8);
        }
        check(&t, &dc, 1e-7);
    }
}
