//! Symmetric banded matrices and band Cholesky — the `DPBSV`
//! equivalent.
//!
//! The paper's Poisson benchmark uses "one direct (band Cholesky
//! factorization through LAPACK's DPBSV routine)" building block
//! (§6.1.5). The discretized 2D Laplacian on an `n × n` grid is
//! symmetric positive definite with bandwidth `n`, so band Cholesky
//! solves it in `O(n² · bandwidth²)` — asymptotically better than dense
//! factorization but worse than multigrid, which is exactly the
//! trade-off the autotuner explores.

use crate::matrix::Matrix;

/// A symmetric banded matrix stored by diagonals (lower part).
///
/// `band(d)[i]` holds `A[i + d][i]` for `d = 0..=bandwidth`.
///
/// # Examples
///
/// ```
/// use pb_linalg::SymmetricBanded;
///
/// // The 1D Poisson operator tridiag(-1, 2, -1) of size 4.
/// let a = SymmetricBanded::poisson_1d(4);
/// let chol = a.cholesky().unwrap();
/// let x = chol.solve(&[1.0, 0.0, 0.0, 1.0]);
/// let ax = a.matvec(&x);
/// for (got, want) in ax.iter().zip([1.0, 0.0, 0.0, 1.0]) {
///     assert!((got - want).abs() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricBanded {
    n: usize,
    bandwidth: usize,
    /// `bands[d][i] = A[i + d][i]`, `d` in `0..=bandwidth`,
    /// `i` in `0..n - d`.
    bands: Vec<Vec<f64>>,
}

impl SymmetricBanded {
    /// A zero matrix of size `n` with the given (lower) bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth >= n` and `n > 0` (such a matrix should be
    /// dense instead) — except that `n == 0` is rejected outright.
    pub fn zeros(n: usize, bandwidth: usize) -> Self {
        assert!(n > 0, "empty banded matrix");
        assert!(bandwidth < n, "bandwidth must be below the dimension");
        SymmetricBanded {
            n,
            bandwidth,
            bands: (0..=bandwidth).map(|d| vec![0.0; n - d]).collect(),
        }
    }

    /// The 1D Poisson operator `tridiag(-1, 2, -1)` of size `n`.
    pub fn poisson_1d(n: usize) -> Self {
        let mut a = SymmetricBanded::zeros(n, 1.min(n - 1));
        for i in 0..n {
            a.set(i, i, 2.0);
        }
        for i in 0..n.saturating_sub(1) {
            a.set(i + 1, i, -1.0);
        }
        a
    }

    /// The 2D Poisson 5-point operator on an `m × m` interior grid
    /// (dimension `m²`, bandwidth `m`) — the system the paper's Poisson
    /// and preconditioner benchmarks solve (§6.1.5, §6.1.6).
    pub fn poisson_2d(m: usize) -> Self {
        assert!(m > 0, "grid must be non-empty");
        let n = m * m;
        let bw = if n == 1 { 0 } else { m };
        let mut a = SymmetricBanded::zeros(n, bw);
        for row in 0..m {
            for col in 0..m {
                let idx = row * m + col;
                a.set(idx, idx, 4.0);
                if col + 1 < m {
                    a.set(idx + 1, idx, -1.0);
                }
                if row + 1 < m {
                    a.set(idx + m, idx, -1.0);
                }
            }
        }
        a
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The (lower) bandwidth.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Entry `A[i][j]` (0 outside the band).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if d > self.bandwidth {
            0.0
        } else {
            self.bands[d][lo]
        }
    }

    /// Sets `A[i][j]` (and its mirror).
    ///
    /// # Panics
    ///
    /// Panics if the entry lies outside the band or out of range.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        assert!(d <= self.bandwidth, "entry outside the band");
        self.bands[d][lo] = value;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = i.saturating_sub(self.bandwidth);
            let hi = (i + self.bandwidth + 1).min(self.n);
            let mut acc = 0.0;
            for j in lo..hi {
                acc += self.get(i, j) * x[j];
            }
            *yi = acc;
        }
        y
    }

    /// Densifies (for tests and small direct solves).
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Band Cholesky factorization (`DPBTRF` equivalent).
    ///
    /// # Errors
    ///
    /// Returns [`crate::cholesky::NotPositiveDefinite`] on a
    /// non-positive pivot.
    pub fn cholesky(&self) -> Result<BandedCholesky, crate::cholesky::NotPositiveDefinite> {
        let n = self.n;
        let kd = self.bandwidth;
        let mut l = self.bands.clone();
        for j in 0..n {
            // Diagonal pivot.
            let mut sum = l[0][j];
            let kmin = j.saturating_sub(kd);
            for k in kmin..j {
                let v = l[j - k][k];
                sum -= v * v;
            }
            if sum <= 0.0 {
                return Err(crate::cholesky::NotPositiveDefinite);
            }
            let pivot = sum.sqrt();
            l[0][j] = pivot;
            // Column below the pivot.
            for i in j + 1..(j + kd + 1).min(n) {
                let mut sum = l[i - j][j];
                let kmin = i.saturating_sub(kd);
                for k in kmin..j {
                    // L[i][k] and L[j][k] both exist only within band.
                    if i - k <= kd && j - k <= kd {
                        sum -= l[i - k][k] * l[j - k][k];
                    }
                }
                l[i - j][j] = sum / pivot;
            }
        }
        Ok(BandedCholesky {
            n,
            bandwidth: kd,
            l,
        })
    }

    /// Factor-and-solve in one call — the `DPBSV` entry point.
    ///
    /// # Errors
    ///
    /// Returns [`crate::cholesky::NotPositiveDefinite`] if the matrix is
    /// not SPD.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, crate::cholesky::NotPositiveDefinite> {
        Ok(self.cholesky()?.solve(b))
    }
}

/// The banded Cholesky factor.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedCholesky {
    n: usize,
    bandwidth: usize,
    /// Lower factor in band storage: `l[d][j] = L[j + d][j]`.
    l: Vec<Vec<f64>>,
}

impl BandedCholesky {
    /// Solves `A·x = b` with the factored matrix.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` mismatches the dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let kd = self.bandwidth;
        assert_eq!(b.len(), n, "right-hand side has wrong length");
        // Forward: L·y = b.
        let mut y = b.to_vec();
        for j in 0..n {
            y[j] /= self.l[0][j];
            let yj = y[j];
            for i in j + 1..(j + kd + 1).min(n) {
                y[i] -= self.l[i - j][j] * yj;
            }
        }
        // Back: Lᵀ·x = y.
        let mut x = y;
        for j in (0..n).rev() {
            let mut sum = x[j];
            for i in j + 1..(j + kd + 1).min(n) {
                sum -= self.l[i - j][j] * x[i];
            }
            x[j] = sum / self.l[0][j];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_spd_banded(n: usize, kd: usize, rng: &mut SmallRng) -> SymmetricBanded {
        let mut a = SymmetricBanded::zeros(n, kd);
        for d in 1..=kd {
            for i in 0..n - d {
                a.bands[d][i] = rng.gen_range(-1.0..1.0);
            }
        }
        // Diagonal dominance guarantees positive definiteness.
        for i in 0..n {
            a.bands[0][i] = 2.0 * (kd as f64 + 1.0) + rng.gen_range(0.0..1.0);
        }
        a
    }

    #[test]
    fn get_set_respects_symmetry_and_band() {
        let mut a = SymmetricBanded::zeros(5, 2);
        a.set(3, 1, 7.0);
        assert_eq!(a.get(3, 1), 7.0);
        assert_eq!(a.get(1, 3), 7.0);
        assert_eq!(a.get(0, 4), 0.0, "outside band reads zero");
    }

    #[test]
    #[should_panic(expected = "outside the band")]
    fn set_outside_band_panics() {
        let mut a = SymmetricBanded::zeros(5, 1);
        a.set(0, 4, 1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = SmallRng::seed_from_u64(20);
        let a = random_spd_banded(9, 3, &mut rng);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let banded = a.matvec(&x);
        let dense = a.to_dense().matvec(&x);
        for (b, d) in banded.iter().zip(&dense) {
            assert!((b - d).abs() < 1e-12);
        }
    }

    #[test]
    fn band_cholesky_matches_dense_cholesky_solve() {
        let mut rng = SmallRng::seed_from_u64(21);
        for (n, kd) in [(4, 1), (8, 2), (16, 5), (25, 5)] {
            let a = random_spd_banded(n, kd, &mut rng);
            let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 1.0).collect();
            let x_band = a.solve(&b).unwrap();
            let x_dense = Cholesky::factor(&a.to_dense()).unwrap().solve(&b);
            for (xb, xd) in x_band.iter().zip(&x_dense) {
                assert!((xb - xd).abs() < 1e-8, "n={n} kd={kd}");
            }
        }
    }

    #[test]
    fn poisson_1d_solution_is_linear_for_constant_rhs_ends() {
        // tridiag(-1,2,-1)·x = e_1 has known solution x_i = (n-i)/(n+1).
        let n = 10;
        let a = SymmetricBanded::poisson_1d(n);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let x = a.solve(&b).unwrap();
        for (i, xi) in x.iter().enumerate() {
            let expect = (n - i) as f64 / (n + 1) as f64;
            assert!((xi - expect).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn poisson_2d_is_spd_and_solvable() {
        let a = SymmetricBanded::poisson_2d(6);
        assert_eq!(a.dim(), 36);
        assert_eq!(a.bandwidth(), 6);
        let b = vec![1.0; 36];
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
        // Solution of -Δu = 1 with zero boundary is positive inside.
        assert!(x.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn poisson_2d_size_one() {
        let a = SymmetricBanded::poisson_2d(1);
        assert_eq!(a.dim(), 1);
        let x = a.solve(&[2.0]).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
    }
}
