//! 2D Poisson multigrid benchmark (§6.1.5).
//!
//! Three building blocks — direct (band Cholesky), iterative
//! (Red-Black SOR), and recursive (multigrid) — with the autotuner
//! choosing, *at every recursion level*, whether to recurse further,
//! iterate, or solve directly, and how many relaxations to apply before
//! and after the coarse-grid correction. "It is this kind of trade-offs
//! that our variable accuracy auto-tuner excels at exploring."
//!
//! Accuracy metric: `log₁₀` of the ratio between the RMS residual of
//! the initial guess and of the final guess (the paper's accuracy
//! levels 10¹…10⁹ are these orders of magnitude).

use pb_config::Schema;
use pb_multigrid::{poisson2d, Grid2d};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;

/// Maximum recursion depth with dedicated tunables; deeper levels
/// reuse the deepest set.
pub const MAX_LEVELS: usize = 8;

/// Per-level action choices.
pub const ACTION_NAMES: [&str; 3] = ["recurse", "sor_solve", "direct"];

/// The Poisson right-hand side (the unknown starts at zero).
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonInput {
    /// Right-hand side grid (size `2^k − 1`).
    pub b: Grid2d,
}

/// Builds the per-level tunable schema shared by this benchmark and
/// the Helmholtz one.
fn add_level_tunables(s: &mut Schema) {
    for d in 0..MAX_LEVELS {
        s.add_choice_site(format!("level{d}_action"), ACTION_NAMES.len());
        s.add_accuracy_variable_with_default(format!("level{d}_pre"), 0, 6, 2);
        s.add_accuracy_variable_with_default(format!("level{d}_post"), 0, 6, 2);
        s.add_accuracy_variable_with_default(format!("level{d}_sor_iters"), 1, 200, 10);
    }
    s.add_accuracy_variable_with_default("cycles", 1, 64, 2);
    s.add_float_param("omega", 0.8, 1.95);
}

/// The 2D Poisson variable-accuracy transform.
#[derive(Debug, Clone, Copy, Default)]
pub struct Poisson2d;

impl Poisson2d {
    fn solve_level(&self, b: &Grid2d, depth: usize, ctx: &mut ExecCtx<'_>) -> Grid2d {
        let n = b.n();
        let d = depth.min(MAX_LEVELS - 1);
        let omega = ctx.float_param("omega").expect("schema declares omega");
        ctx.enter(format!("n{n}"));

        // Tiny grids always go direct; grids that cannot be coarsened
        // cannot recurse.
        let action = if n <= 3 {
            2
        } else {
            ctx.with_size(n as u64, |ctx| {
                ctx.choice(&format!("level{d}_action")).expect("schema")
            })
        };

        let out = match action {
            2 => {
                // Direct band Cholesky: O(n² · bandwidth²) = O(n⁴).
                ctx.charge((n as f64).powi(4));
                ctx.event("direct");
                poisson2d::direct_solve(b)
            }
            1 => {
                let iters = ctx
                    .for_enough(&format!("level{d}_sor_iters"))
                    .expect("schema");
                let mut u = Grid2d::zeros(n);
                for _ in 0..iters {
                    poisson2d::sor_sweep(&mut u, b, omega);
                    ctx.charge((n * n) as f64 * 5.0);
                    ctx.event("relax");
                }
                u
            }
            _ => {
                let pre = ctx.for_enough(&format!("level{d}_pre")).expect("schema");
                let post = ctx.for_enough(&format!("level{d}_post")).expect("schema");
                let mut u = Grid2d::zeros(n);
                for _ in 0..pre {
                    poisson2d::sor_sweep(&mut u, b, omega);
                    ctx.charge((n * n) as f64 * 5.0);
                    ctx.event("relax");
                }
                let r = poisson2d::residual(&u, b);
                ctx.charge((n * n) as f64 * 6.0);
                let mut rc = poisson2d::restrict(&r);
                for v in rc.as_mut_slice() {
                    *v *= 4.0; // coarse-grid h² rescaling
                }
                let ec = self.solve_level(&rc, depth + 1, ctx);
                let ef = poisson2d::prolong(&ec);
                ctx.charge((n * n) as f64 * 2.0);
                poisson2d::add_correction(&mut u, &ef);
                for _ in 0..post {
                    poisson2d::sor_sweep(&mut u, b, omega);
                    ctx.charge((n * n) as f64 * 5.0);
                    ctx.event("relax");
                }
                u
            }
        };
        ctx.exit();
        out
    }
}

impl Transform for Poisson2d {
    type Input = PoissonInput;
    type Output = Grid2d;

    fn name(&self) -> &str {
        "poisson2d"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("poisson2d");
        add_level_tunables(&mut s);
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> PoissonInput {
        let size = Grid2d::round_up_size(n.max(1) as usize);
        PoissonInput {
            b: Grid2d::random_uniform(size, -1.0, 1.0, rng),
        }
    }

    fn execute(&self, input: &PoissonInput, ctx: &mut ExecCtx<'_>) -> Grid2d {
        let cycles = ctx.for_enough("cycles").expect("schema declares cycles");
        let n = input.b.n();
        let mut u = Grid2d::zeros(n);
        for _ in 0..cycles {
            // Each "cycle" solves the residual equation and corrects,
            // so repeated cycles compound the per-cycle reduction.
            let r = poisson2d::residual(&u, &input.b);
            ctx.charge((n * n) as f64 * 6.0);
            let e = self.solve_level(&r, 0, ctx);
            poisson2d::add_correction(&mut u, &e);
        }
        u
    }

    fn accuracy(&self, input: &PoissonInput, output: &Grid2d) -> f64 {
        let initial = input.b.rms().max(f64::MIN_POSITIVE);
        let after = poisson2d::residual(output, &input.b).rms();
        if after <= 0.0 {
            return 16.0; // solved to the bits: better than any bin
        }
        (initial / after).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Config, DecisionTree, Value};

    fn config_with(schema: &Schema, edits: &[(&str, Value)]) -> Config {
        let mut c = schema.default_config();
        for (name, v) in edits {
            c.set_by_name(schema, name, v.clone()).unwrap();
        }
        c
    }

    fn accuracy_of(config: &Config, schema: &Schema, n: u64, seed: u64) -> f64 {
        let t = Poisson2d;
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(seed)
        };
        let input = t.generate_input(n, &mut rng);
        let mut ctx = ExecCtx::new(schema, config, n, seed);
        let out = t.execute(&input, &mut ctx);
        t.accuracy(&input, &out)
    }

    #[test]
    fn direct_everywhere_solves_exactly() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut edits: Vec<(String, Value)> = Vec::new();
        for d in 0..MAX_LEVELS {
            edits.push((
                format!("level{d}_action"),
                Value::Tree(DecisionTree::single(2)),
            ));
        }
        let edits_ref: Vec<(&str, Value)> =
            edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let config = config_with(&schema, &edits_ref);
        let acc = accuracy_of(&config, &schema, 15, 1);
        assert!(acc > 9.0, "direct solve reaches machine precision: {acc}");
    }

    #[test]
    fn more_cycles_give_more_accuracy() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut base: Vec<(String, Value)> = Vec::new();
        for d in 0..MAX_LEVELS {
            base.push((format!("level{d}_pre"), Value::Int(2)));
            base.push((format!("level{d}_post"), Value::Int(2)));
        }
        for (cycles, min_acc) in [(1, 0.5), (4, 2.0)] {
            let mut edits = base.clone();
            edits.push(("cycles".to_string(), Value::Int(cycles)));
            let edits_ref: Vec<(&str, Value)> =
                edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            let config = config_with(&schema, &edits_ref);
            let acc = accuracy_of(&config, &schema, 31, 2);
            assert!(acc > min_acc, "cycles={cycles}: accuracy {acc}");
        }
    }

    #[test]
    fn sor_only_is_weaker_than_multigrid_for_same_budget() {
        let t = Poisson2d;
        let schema = t.schema();
        // SOR-only at the top level: 30 sweeps.
        let sor = config_with(
            &schema,
            &[
                ("level0_action", Value::Tree(DecisionTree::single(1))),
                ("level0_sor_iters", Value::Int(30)),
            ],
        );
        // One V-cycle with 2+2 sweeps per level.
        let mut edits: Vec<(String, Value)> = Vec::new();
        for d in 0..MAX_LEVELS {
            edits.push((format!("level{d}_pre"), Value::Int(2)));
            edits.push((format!("level{d}_post"), Value::Int(2)));
        }
        let edits_ref: Vec<(&str, Value)> =
            edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mg = config_with(&schema, &edits_ref);
        let acc_sor = accuracy_of(&sor, &schema, 31, 3);
        let acc_mg = accuracy_of(&mg, &schema, 31, 3);
        assert!(
            acc_mg > acc_sor,
            "multigrid ({acc_mg}) should beat plain SOR ({acc_sor})"
        );
    }

    #[test]
    fn trace_records_cycle_shape() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut edits: Vec<(String, Value)> = vec![("cycles".to_string(), Value::Int(1))];
        for d in 0..MAX_LEVELS {
            edits.push((format!("level{d}_pre"), Value::Int(1)));
            edits.push((format!("level{d}_post"), Value::Int(1)));
        }
        let edits_ref: Vec<(&str, Value)> =
            edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let config = config_with(&schema, &edits_ref);
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(4)
        };
        let input = t.generate_input(15, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 15, 0);
        ctx.enable_trace();
        let _ = t.execute(&input, &mut ctx);
        let tree = ctx.trace_tree();
        // Levels n15 -> n7 -> n3 (direct).
        assert_eq!(tree.depth(), 3);
        assert!(tree.count_points("relax") >= 4);
        assert_eq!(tree.count_points("direct"), 1);
    }

    #[test]
    fn input_sizes_round_up_to_multigrid_sizes() {
        let t = Poisson2d;
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(5)
        };
        assert_eq!(t.generate_input(9, &mut rng).b.n(), 15);
        assert_eq!(t.generate_input(15, &mut rng).b.n(), 15);
        assert_eq!(t.generate_input(1, &mut rng).b.n(), 1);
    }
}
